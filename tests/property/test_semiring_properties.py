"""Property-based tests for the provenance semirings and polynomials."""

from hypothesis import given, settings, strategies as st

from repro.provenance.polynomial import Polynomial
from repro.provenance.semirings import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    TropicalSemiring,
    WhySemiring,
)

TOKENS = st.sampled_from(["x", "y", "z", "u", "v"])


@st.composite
def polynomials(draw, max_terms=4, max_factors=3):
    """Random provenance polynomials built from a small token pool."""
    terms = draw(st.integers(min_value=0, max_value=max_terms))
    result = Polynomial.zero()
    for _ in range(terms):
        factors = draw(st.integers(min_value=1, max_value=max_factors))
        monomial = Polynomial.one()
        for _ in range(factors):
            monomial = monomial * Polynomial.variable(draw(TOKENS))
        result = result + monomial
    return result


class TestPolynomialSemiringLaws:
    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=60, deadline=None)
    def test_associativity_and_commutativity(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert (a * b) * c == a * (b * c)
        assert a + b == b + a
        assert a * b == b * a

    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=60, deadline=None)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(polynomials())
    @settings(max_examples=30, deadline=None)
    def test_identities(self, a):
        assert a + Polynomial.zero() == a
        assert a * Polynomial.one() == a
        assert (a * Polynomial.zero()).is_zero()


class TestUniversality:
    @given(polynomials(), polynomials(), st.dictionaries(TOKENS, st.integers(0, 5), min_size=5))
    @settings(max_examples=60, deadline=None)
    def test_evaluation_is_a_homomorphism_into_counting(self, a, b, valuation):
        semiring = CountingSemiring()
        valuation = {token: valuation.get(token, 1) for token in ["x", "y", "z", "u", "v"]}
        assert (a + b).evaluate(semiring, valuation) == semiring.plus(
            a.evaluate(semiring, valuation), b.evaluate(semiring, valuation)
        )
        assert (a * b).evaluate(semiring, valuation) == semiring.times(
            a.evaluate(semiring, valuation), b.evaluate(semiring, valuation)
        )

    @given(polynomials(), st.dictionaries(TOKENS, st.booleans(), min_size=5))
    @settings(max_examples=40, deadline=None)
    def test_boolean_evaluation_matches_counting_positivity(self, a, valuation):
        booleans = {token: valuation.get(token, False) for token in ["x", "y", "z", "u", "v"]}
        counts = {token: (1 if value else 0) for token, value in booleans.items()}
        as_bool = a.evaluate(BooleanSemiring(), booleans)
        as_count = a.evaluate(CountingSemiring(), counts)
        assert as_bool == (as_count > 0)


def _elements(semiring, draw_values):
    return st.sampled_from(draw_values)


class TestConcreteSemiringLaws:
    @given(
        st.sampled_from([0.0, 1.0, 2.5, 7.0, float("inf")]),
        st.sampled_from([0.0, 1.0, 2.5, 7.0, float("inf")]),
        st.sampled_from([0.0, 1.0, 2.5, 7.0, float("inf")]),
    )
    def test_tropical_distributivity(self, a, b, c):
        semiring = TropicalSemiring()
        assert semiring.times(a, semiring.plus(b, c)) == semiring.plus(
            semiring.times(a, b), semiring.times(a, c)
        )

    @given(
        st.frozensets(st.sampled_from(["t1", "t2", "t3"])),
        st.frozensets(st.sampled_from(["t1", "t2", "t3"])),
        st.frozensets(st.sampled_from(["t1", "t2", "t3"])),
    )
    def test_lineage_distributivity(self, a, b, c):
        semiring = LineageSemiring()
        assert semiring.times(a, semiring.plus(b, c)) == semiring.plus(
            semiring.times(a, b), semiring.times(a, c)
        )

    @given(
        st.frozensets(st.frozensets(st.sampled_from(["t1", "t2"])), max_size=3),
        st.frozensets(st.frozensets(st.sampled_from(["t1", "t2"])), max_size=3),
    )
    def test_why_commutativity(self, a, b):
        semiring = WhySemiring()
        assert semiring.times(a, b) == semiring.times(b, a)
        assert semiring.plus(a, b) == semiring.plus(b, a)
