"""Property: sharded parallel evaluation is indistinguishable from serial.

For every generated conjunctive query — acyclic, cyclic, self-joining, with
view extras — and every generated instance, the differential harness checks

    parallel (sharded) == program == reduced == brute-force reference

for answers *and* per-tuple binding sets, through parameterized evaluation,
and again after the database drifts between evaluations of one long-lived
evaluator (exercising the cached shard partitions against changed data).
Every evaluator here runs with ``verify_partitions=True``, so each fresh
partition also passes the I008 verifier (exact multiset cover, hash-correct
routing) as a side effect of the property run.
"""

from hypothesis import given, settings, strategies as st

from strategies import (
    acyclic_queries,
    brute_force,
    cyclic_queries,
    drift_sequences,
    apply_drift,
    parameterized_queries,
    random_instances,
    random_queries,
    self_join_queries,
)

from repro.query.ast import Constant
from repro.query.evaluator import QueryEvaluator

#: The serial baselines sharded runs are compared against.
SERIAL_KNOBS = ("program", "reduced")

#: Worker count for the sharded side: more than one shard, small enough that
#: tiny generated instances still exercise the empty-shard paths.
WORKERS = 3


def _evaluator(database, extra, strategy, use_indexes=True):
    return QueryEvaluator(
        database,
        extra_relations=extra,
        use_indexes=use_indexes,
        strategy=strategy,
        workers=WORKERS,
        verify_partitions=True,
    )


def _parallel_answers(database, extra, query, use_indexes=True):
    evaluator = _evaluator(database, extra, "parallel", use_indexes)
    try:
        return evaluator.evaluate(query).rows
    finally:
        evaluator.close()


class TestShardEquivalence:
    @given(random_queries(), random_instances())
    @settings(max_examples=60, deadline=None)
    def test_sharded_matches_serial_and_brute_force(self, query, instance):
        database, extra = instance
        reference = brute_force(query, database, extra)
        assert _parallel_answers(database, extra, query) == reference
        for strategy in SERIAL_KNOBS:
            evaluator = _evaluator(database, extra, strategy)
            assert evaluator.evaluate(query).rows == reference

    @given(acyclic_queries(), random_instances())
    @settings(max_examples=50, deadline=None)
    def test_acyclic_sharded_agrees(self, query, instance):
        """The reduced executor behind a shared prepared prelude stays exact."""
        database, extra = instance
        assert _parallel_answers(database, extra, query) == brute_force(
            query, database, extra
        )

    @given(cyclic_queries(), random_instances())
    @settings(max_examples=30, deadline=None)
    def test_cyclic_sharded_agrees(self, query, instance):
        database, extra = instance
        assert _parallel_answers(database, extra, query) == brute_force(
            query, database, extra
        )

    @given(self_join_queries(), random_instances())
    @settings(max_examples=30, deadline=None)
    def test_self_join_sharded_agrees(self, query, instance):
        """Sharding the driving atom of a self-join must not lose frames:
        downstream steps probe the *full* relation, only depth 0 is sliced."""
        database, extra = instance
        assert _parallel_answers(database, extra, query) == brute_force(
            query, database, extra
        )

    @given(random_queries(), random_instances())
    @settings(max_examples=40, deadline=None)
    def test_sharded_without_indexes_agrees(self, query, instance):
        database, extra = instance
        assert _parallel_answers(database, extra, query, use_indexes=False) == (
            brute_force(query, database, extra)
        )

    @given(random_queries(), random_instances())
    @settings(max_examples=40, deadline=None)
    def test_binding_sets_agree_between_sharded_and_serial(self, query, instance):
        """Merged per-shard frames carry the same multiplicity-free binding
        sets as a serial run — Definition 2.2 citations depend on them."""
        database, extra = instance
        serial = _evaluator(database, extra, "program")
        sharded = _evaluator(database, extra, "parallel")
        try:
            left = serial.evaluate_with_bindings(query)
            right = sharded.evaluate_with_bindings(query)
        finally:
            sharded.close()
        assert set(left) == set(right)
        as_sets = lambda bindings: {frozenset(b.items()) for b in bindings}
        for row in left:
            assert as_sets(left[row]) == as_sets(right[row])

    @given(parameterized_queries(), random_instances())
    @settings(max_examples=40, deadline=None)
    def test_parameterized_sharded_agrees(self, query_and_values, instance):
        query, valuation = query_and_values
        database, extra = instance
        substituted = query.substitute(
            {param: Constant(valuation[param.name]) for param in query.parameters}
        )
        reference = brute_force(substituted, database, extra)
        evaluator = _evaluator(database, extra, "parallel")
        try:
            assert evaluator.evaluate_parameterized(query, valuation).rows == reference
        finally:
            evaluator.close()

    @given(random_queries(), random_instances(), drift_sequences())
    @settings(max_examples=50, deadline=None)
    def test_sharded_reevaluation_after_drift(self, query, instance, ops):
        """Cached shard partitions are version-stamped: inserts and deletes
        through either invalidation channel (database generation, extra
        relation version) must repartition, never serve stale slices."""
        database, extra = instance
        evaluator = _evaluator(database, extra, "parallel")
        try:
            assert evaluator.evaluate(query).rows == brute_force(
                query, database, extra
            )
            apply_drift(database, extra, ops)
            assert evaluator.evaluate(query).rows == brute_force(
                query, database, extra
            )
        finally:
            evaluator.close()
