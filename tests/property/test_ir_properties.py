"""Property: everything the compiler emits passes the IR verifier.

The generators in ``tests/strategies.py`` cover cyclic shapes, constants,
self-joins and repeated variables — every program, reduction and (warmed)
prelude compiled from them must verify with zero diagnostics, and a family
of deterministic hand-seeded mutations must each be rejected with its
specific I-code.  Together the two halves pin the verifier's precision:
no false positives on real output, no false negatives on the fault classes
it exists to catch.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings

from strategies import (
    acyclic_queries,
    random_instances,
    random_queries,
    self_join_queries,
)

from repro.analysis.ir import verify_prelude, verify_program, verify_reduced
from repro.query.compiler import StepReduction
from repro.query.evaluator import QueryEvaluator


def _verify_everything(database, extra, query):
    evaluator = QueryEvaluator(database, extra_relations=extra)
    program = evaluator.compile(query)
    report = verify_program(program)
    assert not list(report), f"{query}: {report.to_text()}"
    reduced = evaluator.reduction_of(query, program)
    report = verify_reduced(reduced)
    assert not list(report), f"{query}: {report.to_text()}"
    # Warm the prelude through real evaluations (second pass caches the
    # bucket plan) and verify the warm state too.
    evaluator.evaluate(query, strategy="reduced")
    evaluator.evaluate(query, strategy="reduced")
    prelude = evaluator.prelude_for(query, reduced)
    report = verify_prelude(prelude)
    assert not list(report), f"{query}: {report.to_text()}"


class TestCompiledArtifactsVerifyClean:
    @settings(max_examples=60)
    @given(random_queries(max_atoms=3), random_instances(max_rows=6))
    def test_random_queries(self, query, instance):
        database, extra = instance
        _verify_everything(database, extra, query)

    @settings(max_examples=40)
    @given(acyclic_queries(max_atoms=4), random_instances(max_rows=6))
    def test_acyclic_queries(self, query, instance):
        database, extra = instance
        _verify_everything(database, extra, query)

    @settings(max_examples=30)
    @given(self_join_queries(), random_instances(max_rows=6))
    def test_self_join_queries(self, query, instance):
        database, extra = instance
        _verify_everything(database, extra, query)


class TestSeededMutationsAreCaught:
    """Each mutation class must surface its own code on generated programs."""

    @settings(max_examples=25)
    @given(acyclic_queries(max_atoms=3), random_instances(max_rows=4))
    def test_out_of_range_slots_raise_i003(self, query, instance):
        database, extra = instance
        evaluator = QueryEvaluator(database, extra_relations=extra)
        program = evaluator.compile(query)
        step = program.steps[-1]
        mutated = dataclasses.replace(
            program,
            steps=(
                *program.steps[:-1],
                dataclasses.replace(
                    step,
                    writes=tuple((pos, slot + 100) for pos, slot in step.writes),
                ),
            ),
        )
        if not step.writes:
            return  # nothing to corrupt in this example
        assert any(d.code == "I003" for d in verify_program(mutated))

    @settings(max_examples=25)
    @given(acyclic_queries(max_atoms=3), random_instances(max_rows=4))
    def test_emptied_reductions_raise_i006(self, query, instance):
        database, extra = instance
        evaluator = QueryEvaluator(database, extra_relations=extra)
        program = evaluator.compile(query)
        reduced = evaluator.reduction_of(query, program)
        empty = StepReduction((), (), (), ())
        targets = [
            index
            for index, reduction in enumerate(reduced.reductions)
            if reduction != empty
        ]
        if not targets:
            return  # a reduction-free program has nothing to drop
        reductions = list(reduced.reductions)
        reductions[targets[0]] = empty
        mutated = dataclasses.replace(reduced, reductions=tuple(reductions))
        report = verify_reduced(mutated)
        assert any(d.code == "I006" for d in report)

    @settings(max_examples=25)
    @given(acyclic_queries(max_atoms=3), random_instances(max_rows=4))
    def test_flipped_acyclicity_raises_i005(self, query, instance):
        database, extra = instance
        evaluator = QueryEvaluator(database, extra_relations=extra)
        reduced = evaluator.reduce(query)
        mutated = dataclasses.replace(reduced, acyclic=not reduced.acyclic)
        assert any(d.code == "I005" for d in verify_reduced(mutated))
