"""Property: all evaluation strategies agree on random conjunctive queries.

Three independent answers are compared on randomly generated queries and
instances (generators shared via :mod:`strategies`), including self-joins
(the same predicate twice) and view-backed ``extra_relations``:

* the compiled evaluator probing hash indexes,
* the compiled evaluator restricted to scans (``use_indexes=False``),
* a brute-force reference that enumerates the full cartesian product of the
  body atoms' relations and filters by the term constraints — no join
  ordering, no slots, no indexes, just the textbook semantics.

The semi-join-reduction strategies get the same treatment in
``test_strategy_equivalence.py``.
"""

from hypothesis import given, settings

from strategies import brute_force, random_instances, random_queries, self_join_queries

from repro.query.evaluator import QueryEvaluator


class TestEvaluatorEquivalence:
    @given(random_queries(), random_instances())
    @settings(max_examples=80, deadline=None)
    def test_indexed_scan_and_brute_force_agree(self, query, instance):
        database, extra = instance
        indexed = QueryEvaluator(database, extra_relations=extra, use_indexes=True)
        scanning = QueryEvaluator(database, extra_relations=extra, use_indexes=False)
        reference = brute_force(query, database, extra)
        assert indexed.evaluate(query).rows == reference
        assert scanning.evaluate(query).rows == reference

    @given(random_queries(), random_instances())
    @settings(max_examples=60, deadline=None)
    def test_binding_sets_agree_between_indexed_and_scan(self, query, instance):
        database, extra = instance
        indexed = QueryEvaluator(database, extra_relations=extra, use_indexes=True)
        scanning = QueryEvaluator(database, extra_relations=extra, use_indexes=False)
        left = indexed.evaluate_with_bindings(query)
        right = scanning.evaluate_with_bindings(query)
        assert set(left) == set(right)
        for row in left:
            as_sets = lambda bindings: {
                frozenset(b.items()) for b in bindings
            }
            assert as_sets(left[row]) == as_sets(right[row])

    @given(self_join_queries(), random_instances())
    @settings(max_examples=40, deadline=None)
    def test_generated_self_joins(self, query, instance):
        database, extra = instance
        evaluator = QueryEvaluator(database, extra_relations=extra)
        assert evaluator.evaluate(query).rows == brute_force(query, database, extra)

    @given(random_instances())
    @settings(max_examples=30, deadline=None)
    def test_explicit_self_join(self, instance):
        from repro.query.ast import Atom, ConjunctiveQuery, Variable

        database, extra = instance
        query = ConjunctiveQuery(
            Atom("Q", (Variable("X"), Variable("Z"))),
            (
                Atom("R", (Variable("X"), Variable("Y"))),
                Atom("R", (Variable("Y"), Variable("Z"))),
            ),
        )
        evaluator = QueryEvaluator(database, extra_relations=extra)
        assert evaluator.evaluate(query).rows == brute_force(query, database, extra)
