"""Property: all evaluation strategies agree on random conjunctive queries.

Three independent answers are compared on randomly generated queries and
instances, including self-joins (the same predicate twice) and view-backed
``extra_relations``:

* the compiled evaluator probing hash indexes,
* the compiled evaluator restricted to scans (``use_indexes=False``),
* a brute-force reference that enumerates the full cartesian product of the
  body atoms' relations and filters by the term constraints — no join
  ordering, no slots, no indexes, just the textbook semantics.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.query.ast import Atom, ConjunctiveQuery, Constant, Variable
from repro.query.evaluator import QueryEvaluator
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

_SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("S", [Attribute("a", int), Attribute("b", int)]),
    ]
)

_VIEW_SCHEMA = RelationSchema("V", [Attribute("a", int), Attribute("b", int)])

_VARIABLES = ["X", "Y", "Z", "W"]


@st.composite
def random_queries(draw):
    """Safe conjunctive queries over R, S and the view V, with constants."""
    atom_count = draw(st.integers(min_value=1, max_value=3))
    body = []
    for _ in range(atom_count):
        predicate = draw(st.sampled_from(["R", "S", "V"]))
        terms = []
        for _position in range(2):
            if draw(st.booleans()):
                terms.append(Variable(draw(st.sampled_from(_VARIABLES))))
            else:
                terms.append(Constant(draw(st.integers(0, 3))))
        body.append(Atom(predicate, tuple(terms)))
    body_vars = sorted({v.name for atom in body for v in atom.variables()})
    if not body_vars:
        body.append(Atom("R", (Variable("X"), Variable("Y"))))
        body_vars = ["X", "Y"]
    head_size = draw(st.integers(min_value=1, max_value=len(body_vars)))
    head_vars = tuple(Variable(name) for name in body_vars[:head_size])
    return ConjunctiveQuery(Atom("Q", head_vars), body)


def _rows():
    return st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=0, max_size=8
    )


@st.composite
def random_instances(draw):
    """A small R/S database plus a view-like extra relation V."""
    database = Database(_SCHEMA)
    for relation in ("R", "S"):
        database.insert_many(relation, draw(_rows()))
    view = Relation(_VIEW_SCHEMA, draw(_rows()))
    return database, {"V": view}


def brute_force(query: ConjunctiveQuery, database, extra) -> set[tuple]:
    """Reference semantics: filter the cartesian product of the body relations."""

    def relation_rows(predicate):
        if predicate in extra:
            return list(extra[predicate])
        return list(database.relation(predicate))

    answers = set()
    pools = [relation_rows(atom.predicate) for atom in query.body]
    seed = {eq.variable: eq.constant.value for eq in query.equalities}
    for combination in itertools.product(*pools):
        binding = dict(seed)
        consistent = True
        for atom, row in zip(query.body, combination):
            for term, value in zip(atom.terms, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                elif term in binding:
                    if binding[term] != value:
                        consistent = False
                else:
                    binding[term] = value
            if not consistent:
                break
        if consistent:
            answers.add(
                tuple(
                    term.value if isinstance(term, Constant) else binding[term]
                    for term in query.head_terms
                )
            )
    return answers


class TestEvaluatorEquivalence:
    @given(random_queries(), random_instances())
    @settings(max_examples=80, deadline=None)
    def test_indexed_scan_and_brute_force_agree(self, query, instance):
        database, extra = instance
        indexed = QueryEvaluator(database, extra_relations=extra, use_indexes=True)
        scanning = QueryEvaluator(database, extra_relations=extra, use_indexes=False)
        reference = brute_force(query, database, extra)
        assert indexed.evaluate(query).rows == reference
        assert scanning.evaluate(query).rows == reference

    @given(random_queries(), random_instances())
    @settings(max_examples=60, deadline=None)
    def test_binding_sets_agree_between_indexed_and_scan(self, query, instance):
        database, extra = instance
        indexed = QueryEvaluator(database, extra_relations=extra, use_indexes=True)
        scanning = QueryEvaluator(database, extra_relations=extra, use_indexes=False)
        left = indexed.evaluate_with_bindings(query)
        right = scanning.evaluate_with_bindings(query)
        assert set(left) == set(right)
        for row in left:
            as_sets = lambda bindings: {
                frozenset(b.items()) for b in bindings
            }
            assert as_sets(left[row]) == as_sets(right[row])

    @given(random_instances())
    @settings(max_examples=30, deadline=None)
    def test_explicit_self_join(self, instance):
        database, extra = instance
        query = ConjunctiveQuery(
            Atom("Q", (Variable("X"), Variable("Z"))),
            (
                Atom("R", (Variable("X"), Variable("Y"))),
                Atom("R", (Variable("Y"), Variable("Z"))),
            ),
        )
        evaluator = QueryEvaluator(database, extra_relations=extra)
        assert evaluator.evaluate(query).rows == brute_force(query, database, extra)
