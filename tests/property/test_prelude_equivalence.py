"""Property: warm-prelude evaluation is indistinguishable from cold.

A long-lived evaluator re-evaluating one query accumulates warm
:class:`~repro.query.compiler.PreludeCache` state — full snapshots on
unchanged data, partially refreshed candidates after drift (only drifted
steps recompute, untouched subtrees' semi-joined key sets are reused).  For
every generated query, instance and interleaved insert/delete sequence the
harness checks, after **each** drift step,

    warm prelude == cold reduction == brute force

so no memoization path can ever serve a stale candidate list.  Drift covers
both invalidation channels: database relations mutate through the
``Database`` update path, the view-like extra relation ``V`` is mutated
directly (only its ``Relation.version`` moves).
"""

from hypothesis import given, settings

from strategies import (
    acyclic_queries,
    apply_drift,
    brute_force,
    drift_sequences,
    random_instances,
    random_queries,
    self_join_queries,
)

from repro.query.evaluator import QueryEvaluator


def _cold_answers(database, extra, query):
    return QueryEvaluator(
        database, extra_relations=extra, strategy="reduced"
    ).evaluate(query).rows


class TestWarmPreludeEquivalence:
    @given(acyclic_queries(max_atoms=3), random_instances(max_rows=6), drift_sequences())
    @settings(max_examples=50, deadline=None)
    def test_acyclic_warm_equals_cold_equals_brute_force_under_drift(
        self, query, instance, ops
    ):
        database, extra = instance
        warm = QueryEvaluator(database, extra_relations=extra, strategy="reduced")
        assert warm.evaluate(query).rows == brute_force(query, database, extra)
        for op in ops:
            apply_drift(database, extra, [op])
            reference = brute_force(query, database, extra)
            assert warm.evaluate(query).rows == reference  # partial refresh
            assert _cold_answers(database, extra, query) == reference

    @given(random_queries(), random_instances(max_rows=6), drift_sequences())
    @settings(max_examples=40, deadline=None)
    def test_any_shape_warm_equals_cold_under_drift(self, query, instance, ops):
        # Cyclic queries cache their SIP-only prelude the same way.
        database, extra = instance
        warm = QueryEvaluator(database, extra_relations=extra, strategy="reduced")
        warm.evaluate(query)
        apply_drift(database, extra, ops)
        reference = brute_force(query, database, extra)
        assert warm.evaluate(query).rows == reference
        assert _cold_answers(database, extra, query) == reference

    @given(self_join_queries(), random_instances(max_rows=6), drift_sequences())
    @settings(max_examples=30, deadline=None)
    def test_self_joins_share_one_drift_stamp_per_relation(
        self, query, instance, ops
    ):
        # Steps repeating one predicate stamp the same relation: a drift of R
        # must invalidate every R step at once.
        database, extra = instance
        warm = QueryEvaluator(database, extra_relations=extra, strategy="reduced")
        warm.evaluate(query)
        apply_drift(database, extra, ops)
        assert warm.evaluate(query).rows == brute_force(query, database, extra)

    @given(acyclic_queries(max_atoms=3), random_instances(max_rows=6))
    @settings(max_examples=30, deadline=None)
    def test_unchanged_data_always_hits(self, query, instance):
        database, extra = instance
        evaluator = QueryEvaluator(database, extra_relations=extra, strategy="reduced")
        first = evaluator.evaluate(query).rows
        second = evaluator.evaluate(query).rows
        assert first == second
        prelude = evaluator._preludes[query]
        assert prelude.hits >= 1
        assert prelude.misses == 1

    @given(random_queries(), random_instances(max_rows=6), drift_sequences())
    @settings(max_examples=30, deadline=None)
    def test_auto_matches_brute_force_under_drift(self, query, instance, ops):
        # The cost model may flip its pick as the data drifts; whatever it
        # runs must stay exact.
        database, extra = instance
        auto = QueryEvaluator(database, extra_relations=extra)
        auto.evaluate(query)
        apply_drift(database, extra, ops)
        assert auto.evaluate(query).rows == brute_force(query, database, extra)
