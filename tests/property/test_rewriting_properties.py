"""Property-based tests for the rewriting algorithms.

The decisive correctness property for answering-queries-using-views is that
every *equivalent* rewriting returned by an algorithm really is equivalent:
evaluating the rewriting over the materialised views gives exactly the same
answers as evaluating the original query over the base data — on any
instance.  We check that on random chain/star view configurations and random
database instances, for both Bucket and MiniCon.
"""

from hypothesis import given, settings, strategies as st

from repro.query.evaluator import QueryEvaluator
from repro.rewriting.bucket import BucketRewriter
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.view import materialize_views
from repro.workloads.query_workload import (
    chain_database,
    chain_query,
    chain_views,
    star_database,
    star_query,
    star_views,
)


def _check_rewritings(rewriter_factory, views, query, database):
    base_answers = QueryEvaluator(database).evaluate(query).rows
    relations = materialize_views(views, database)
    evaluator = QueryEvaluator(database, extra_relations=relations)
    rewriter = rewriter_factory(views)
    for rewriting in rewriter.rewrite(query):
        assert evaluator.evaluate(rewriting.query).rows == base_answers


class TestChainWorkloads:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=10, max_value=60),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_minicon_rewritings_are_equivalent_on_instances(self, length, rows, seed):
        views = [cv.view for cv in chain_views(length, window=1)]
        query = chain_query(length)
        database = chain_database(length, rows_per_relation=rows, seed=seed)
        _check_rewritings(MiniConRewriter, views, query, database)

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=10, max_value=60),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_bucket_rewritings_are_equivalent_on_instances(self, length, rows, seed):
        views = [cv.view for cv in chain_views(length, window=1)]
        query = chain_query(length)
        database = chain_database(length, rows_per_relation=rows, seed=seed)
        _check_rewritings(BucketRewriter, views, query, database)

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_wide_window_minicon_rewritings_are_equivalent(self, length, seed):
        views = [cv.view for cv in chain_views(length, window=2)]
        query = chain_query(length)
        database = chain_database(length, rows_per_relation=40, seed=seed)
        _check_rewritings(MiniConRewriter, views, query, database)


class TestStarWorkloads:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=10, max_value=60),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_star_rewritings_are_equivalent_on_instances(self, arms, rows, seed):
        views = [cv.view for cv in star_views(arms)]
        query = star_query(arms)
        database = star_database(arms, rows_per_relation=rows, seed=seed)
        _check_rewritings(MiniConRewriter, views, query, database)

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=15, deadline=None)
    def test_bucket_and_minicon_find_the_same_view_sets(self, arms, seed):
        views = [cv.view for cv in star_views(arms)]
        query = star_query(arms)
        bucket_sets = {
            frozenset(a.predicate for a in r.query.body)
            for r in BucketRewriter(views).rewrite(query)
        }
        minicon_sets = {
            frozenset(a.predicate for a in r.query.body)
            for r in MiniConRewriter(views).rewrite(query)
        }
        assert bucket_sets == minicon_sets
        assert seed >= 0  # seed only randomises the (unused) data generation here
