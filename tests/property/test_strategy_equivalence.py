"""Property: the semi-join-reduced strategy is indistinguishable from the rest.

For every generated conjunctive query — acyclic, cyclic, self-joining, with
view extras — and every generated instance, the differential harness checks

    reduced == program == brute-force reference

for answers *and* per-tuple binding sets, with and without indexes, through
parameterized evaluation, and again after the database drifts (inserts and
deletes between evaluations of one long-lived evaluator, exercising the
cached programs against changed data).  The brute-force reference is the
textbook cartesian-product semantics from :mod:`strategies`.
"""

from hypothesis import given, settings, strategies as st

from strategies import (
    acyclic_queries,
    brute_force,
    cyclic_queries,
    parameterized_queries,
    random_instances,
    random_queries,
    rows,
    self_join_queries,
)

from repro.query.ast import Constant
from repro.query.compiler import is_acyclic
from repro.query.evaluator import QueryEvaluator

STRATEGY_KNOBS = ("program", "reduced", "auto", "cost")


def _answers(database, extra, query, strategy, use_indexes=True):
    evaluator = QueryEvaluator(
        database,
        extra_relations=extra,
        use_indexes=use_indexes,
        strategy=strategy,
    )
    return evaluator.evaluate(query).rows


class TestStrategyEquivalence:
    @given(random_queries(), random_instances())
    @settings(max_examples=80, deadline=None)
    def test_all_strategies_match_brute_force(self, query, instance):
        database, extra = instance
        reference = brute_force(query, database, extra)
        for strategy in STRATEGY_KNOBS:
            assert _answers(database, extra, query, strategy) == reference
        assert _answers(database, extra, query, "reduced", use_indexes=False) == reference

    @given(acyclic_queries(), random_instances())
    @settings(max_examples=60, deadline=None)
    def test_acyclic_queries_are_detected_and_agree(self, query, instance):
        database, extra = instance
        assert is_acyclic(query)
        reference = brute_force(query, database, extra)
        for strategy in STRATEGY_KNOBS:
            assert _answers(database, extra, query, strategy) == reference

    @given(cyclic_queries(), random_instances())
    @settings(max_examples=40, deadline=None)
    def test_cyclic_queries_sip_only_reduction_agrees(self, query, instance):
        database, extra = instance
        assert not is_acyclic(query)
        reference = brute_force(query, database, extra)
        # "reduced" on a cyclic query runs sideways information passing only;
        # it must still be exact.
        for strategy in STRATEGY_KNOBS:
            assert _answers(database, extra, query, strategy) == reference

    @given(self_join_queries(), random_instances())
    @settings(max_examples=40, deadline=None)
    def test_self_joins_agree(self, query, instance):
        database, extra = instance
        reference = brute_force(query, database, extra)
        for strategy in STRATEGY_KNOBS:
            assert _answers(database, extra, query, strategy) == reference

    @given(random_queries(), random_instances())
    @settings(max_examples=60, deadline=None)
    def test_binding_sets_agree_between_program_and_reduced(self, query, instance):
        database, extra = instance
        program_eval = QueryEvaluator(database, extra_relations=extra, strategy="program")
        reduced_eval = QueryEvaluator(
            database, extra_relations=extra, strategy="reduced"
        )
        left = program_eval.evaluate_with_bindings(query)
        right = reduced_eval.evaluate_with_bindings(query)
        assert set(left) == set(right)
        as_sets = lambda bindings: {frozenset(b.items()) for b in bindings}
        for row in left:
            assert as_sets(left[row]) == as_sets(right[row])

    @given(parameterized_queries(), random_instances())
    @settings(max_examples=60, deadline=None)
    def test_parameterized_evaluation_agrees(self, query_and_values, instance):
        query, valuation = query_and_values
        database, extra = instance
        substituted = query.substitute(
            {
                param: Constant(valuation[param.name])
                for param in query.parameters
            }
        )
        reference = brute_force(substituted, database, extra)
        for strategy in STRATEGY_KNOBS:
            evaluator = QueryEvaluator(
                database,
                extra_relations=extra,
                strategy=strategy,
            )
            assert (
                evaluator.evaluate_parameterized(query, valuation).rows == reference
            )

    @given(
        random_queries(),
        random_instances(),
        rows(max_size=4),
        rows(max_size=4),
        st.sampled_from(["R", "S"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_reevaluation_after_database_drift(
        self, query, instance, inserts, deletes, relation
    ):
        """Cached (reduced) programs stay exact across inserts and deletes."""
        database, extra = instance
        evaluators = {
            strategy: QueryEvaluator(
                database,
                extra_relations=extra,
                strategy=strategy,
            )
            for strategy in STRATEGY_KNOBS
        }
        for strategy, evaluator in evaluators.items():
            assert evaluator.evaluate(query).rows == brute_force(
                query, database, extra
            ), strategy
        database.insert_many(relation, inserts)
        for row in deletes:
            database.delete(relation, row)
        reference = brute_force(query, database, extra)
        for strategy, evaluator in evaluators.items():
            assert evaluator.evaluate(query).rows == reference, strategy
