"""Property tests for the static analyzer: minimization and fingerprints.

Three laws the analyzer relies on:

* ``minimize`` is idempotent — the core of a core is itself;
* the minimized core is *answer-equivalent* to the original on every
  instance (checked against the brute-force reference semantics);
* redundant variants of one query minimize to isomorphic cores, so the
  structural fingerprint — the plan-cache key — is identical for all of
  them.
"""

from hypothesis import given, settings
from strategies import brute_force, random_instances, random_queries, self_join_queries

from repro.analysis import analyze_query
from repro.query.ast import Atom, ConjunctiveQuery, Variable
from repro.query.containment import is_equivalent_to
from repro.query.minimization import is_minimal, minimize
from repro.service.fingerprint import fingerprint


def redundant_variant(query: ConjunctiveQuery, salt: str = "Dup") -> ConjunctiveQuery:
    """Append a copy of the last body atom with existentials renamed apart.

    The copy maps homomorphically onto the original atom (head variables are
    kept, fresh existentials can bind anywhere), so the variant is equivalent
    to *query* — exactly the redundancy core minimization must erase.
    """
    template = query.body[-1]
    head = query.head_variables()
    renaming = {
        variable: Variable(f"{salt}{variable.name}")
        for variable in template.variables()
        if variable not in head
    }
    copy = Atom(
        template.predicate,
        tuple(renaming.get(t, t) if isinstance(t, Variable) else t for t in template.terms),
    )
    return ConjunctiveQuery(
        query.head, tuple(query.body) + (copy,), query.equalities, query.parameters
    )


class TestMinimizeProperties:
    @given(random_queries())
    @settings(max_examples=80)
    def test_minimize_is_idempotent(self, query):
        core = minimize(query)
        assert minimize(core) == core

    @given(random_queries())
    @settings(max_examples=80)
    def test_core_is_minimal_and_equivalent(self, query):
        core = minimize(query)
        assert is_minimal(core)
        assert is_equivalent_to(core, query)

    @given(random_queries(), random_instances())
    @settings(max_examples=60)
    def test_core_is_answer_equivalent_on_random_instances(self, query, instance):
        database, extra = instance
        core = minimize(query)
        assert brute_force(core, database, extra) == brute_force(
            query, database, extra
        )

    @given(self_join_queries(), random_instances())
    @settings(max_examples=60)
    def test_self_join_cores_are_answer_equivalent(self, query, instance):
        database, extra = instance
        core = analyze_query(query).core
        assert brute_force(core, database, extra) == brute_force(
            query, database, extra
        )


class TestFingerprintProperties:
    @given(random_queries())
    @settings(max_examples=80)
    def test_redundant_variants_share_one_fingerprint(self, query):
        variant = redundant_variant(query)
        assert is_equivalent_to(variant, query)
        assert fingerprint(minimize(variant)) == fingerprint(minimize(query))

    @given(random_queries())
    @settings(max_examples=60)
    def test_doubly_redundant_variants_share_one_fingerprint(self, query):
        once = redundant_variant(query, "DupA")
        twice = redundant_variant(once, "DupB")
        assert fingerprint(minimize(twice)) == fingerprint(minimize(query))


class TestAnalyzeQueryProperties:
    @given(random_queries())
    @settings(max_examples=80)
    def test_analysis_core_matches_minimize(self, query):
        analysis = analyze_query(query)
        assert analysis.core == minimize(query)
        assert analysis.query == query

    @given(random_queries())
    @settings(max_examples=60)
    def test_analysis_never_reports_errors_on_generated_queries(self, query):
        # The generators produce satisfiable, well-formed queries; only
        # info/warning diagnostics (Q003/Q004/Q005) may appear.
        analysis = analyze_query(query)
        assert not analysis.has_errors
