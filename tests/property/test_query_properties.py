"""Property-based tests for query evaluation, containment and citation invariants."""

from hypothesis import given, settings, strategies as st

from strategies import random_queries as shared_random_queries, small_databases

from repro import CitationEngine, CitationPolicy
from repro.query.containment import is_contained_in, is_equivalent_to
from repro.query.evaluator import QueryEvaluator, evaluate
from repro.query.minimization import minimize
from repro.workloads import gtopdb


def random_queries():
    """Constant-free CQs over the base relations only (shared generators).

    The containment / minimization properties below reason over variable
    homomorphisms, so the view predicate and constants are left out — the
    historical shape of this file's local generator.
    """
    return shared_random_queries(predicates=("R", "S"), allow_constants=False)


class TestEvaluationProperties:
    @given(random_queries(), small_databases())
    @settings(max_examples=60, deadline=None)
    def test_every_answer_has_a_binding(self, query, database):
        evaluator = QueryEvaluator(database)
        by_tuple = evaluator.evaluate_with_bindings(query)
        for row, bindings in by_tuple.items():
            assert bindings
            for binding in bindings:
                assert evaluator.output_tuple(query, binding) == row

    @given(random_queries(), small_databases())
    @settings(max_examples=60, deadline=None)
    def test_adding_an_atom_only_shrinks_the_answer(self, query, database):
        extended = query.with_body(tuple(query.body) + (query.body[0],))
        original = evaluate(query, database).rows
        restricted = evaluate(extended, database).rows
        assert restricted <= original or restricted == original

    @given(random_queries(), small_databases())
    @settings(max_examples=40, deadline=None)
    def test_minimization_preserves_answers(self, query, database):
        minimal = minimize(query)
        assert evaluate(minimal, database).rows == evaluate(query, database).rows

    @given(random_queries(), small_databases())
    @settings(max_examples=40, deadline=None)
    def test_containment_is_sound_on_instances(self, query, database):
        minimal = minimize(query)
        assert is_equivalent_to(minimal, query)
        if is_contained_in(query, minimal):
            assert evaluate(query, database).rows <= evaluate(minimal, database).rows


class TestContainmentProperties:
    @given(random_queries())
    @settings(max_examples=60, deadline=None)
    def test_containment_is_reflexive(self, query):
        assert is_contained_in(query, query)

    @given(random_queries(), random_queries(), random_queries())
    @settings(max_examples=60, deadline=None)
    def test_containment_is_transitive(self, a, b, c):
        if is_contained_in(a, b) and is_contained_in(b, c):
            assert is_contained_in(a, c)

    @given(random_queries())
    @settings(max_examples=40, deadline=None)
    def test_minimized_query_is_equivalent(self, query):
        assert is_equivalent_to(minimize(query), query)


class TestCitationInvariants:
    @given(
        st.integers(min_value=3, max_value=12),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_result_tuple_gets_a_citation(self, families, duplicate_fraction, seed):
        database = gtopdb.generate(
            families=families, duplicate_name_fraction=duplicate_fraction, seed=seed
        )
        engine = CitationEngine(database, gtopdb.citation_views())
        result = engine.cite(gtopdb.paper_query())
        assert {tc.row for tc in result.tuple_citations} == set(result.result.rows)
        for tuple_citation in result.tuple_citations:
            assert tuple_citation.records, "every answer tuple must carry a citation"

    @given(st.integers(min_value=3, max_value=10), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_economical_citation_never_larger_than_formal(self, families, seed):
        database = gtopdb.generate(families=families, seed=seed)
        engine = CitationEngine(database, gtopdb.citation_views())
        query = gtopdb.paper_query()
        formal = engine.cite(query, mode="formal").citation.size()
        economical = engine.cite(query, mode="economical").citation.size()
        assert economical <= formal

    @given(st.integers(min_value=3, max_value=10), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_union_policy_dominates_min_size_policy(self, families, seed):
        database = gtopdb.generate(families=families, seed=seed)
        query = gtopdb.paper_query()
        default = CitationEngine(database, gtopdb.citation_views()).cite(query)
        union = CitationEngine(
            database, gtopdb.citation_views(), policy=CitationPolicy.union_everywhere()
        ).cite(query)
        assert default.citation.records <= union.citation.records
