"""Chaos suite: deterministic fault injection against the serving stack.

Run with ``pytest -m chaos`` (tier-1 deselects the marker).  Every scenario
audits the same two invariants after the dust settles:

* **exactly one response per request** — nothing lost, nothing duplicated,
  each response aligned with its request id; and
* **exact metric conservation** — once quiescent,
  ``requests == responses + deduplicated`` and every materialised response
  is exactly one of an execution, a result-cache hit, a stale serve, or a
  classified error.

Faults are seed-driven (see :mod:`repro.resilience.faults`), so any failure
replays byte-identically.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import CitationEngine, CitationService
from repro.api.envelope import CitationRequest
from repro.errors import Overloaded
from repro.resilience import RetryPolicy
from repro.resilience.faults import FaultSpec, clear as clear_faults, plan as fault_plan
from repro.workloads import gtopdb

pytestmark = pytest.mark.chaos

QUERIES = [
    "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
    "Q2(FID, Text) :- FamilyIntro(FID, Text)",
    "Q3(FName, Text) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
    "Q4(FID) :- Family(FID, FName, Desc)",
]

#: Error codes a deadline storm may legitimately produce.
STORM_CODES = {"DEADLINE_EXCEEDED", "TIMEOUT"}


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    clear_faults()


@pytest.fixture
def db():
    # Sized so one warm execution takes ~5-20ms: big enough for a storm
    # deadline to cancel mid-join, small enough to keep the suite quick.
    return gtopdb.generate(families=300, targets_per_family=3, ligands=200, seed=11)


@pytest.fixture
def engine(db):
    return CitationEngine(db, gtopdb.citation_views())


def conservation(counters: dict) -> None:
    """The exact response-accounting identities every scenario must satisfy."""
    assert counters["requests"] == counters["responses"] + counters["deduplicated"]
    assert counters["responses"] == (
        counters["executions"]
        + counters["result_cache_hits"]
        + counters["stale_served"]
        + counters["errors"]
    )
    assert counters["errors"] == (
        counters["errors_timeout"]
        + counters["errors_shed"]
        + counters["errors_permanent"]
    )


def await_quiescence(service: CitationService, budget: float = 0.5) -> dict:
    """Wait (bounded) until every in-flight worker has settled; return counters.

    Quiescence is observable purely through the metrics: each request's
    worker eventually materialises exactly one counted response, so
    ``requests == responses + deduplicated`` holds once no worker is
    executing.  The 0.5s budget is the issue's hard bound: a deadline storm
    must leave no worker still executing half a second after the call
    returned.
    """
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        counters = service.stats()["counters"]
        if counters["requests"] == counters["responses"] + counters["deduplicated"]:
            return counters
        time.sleep(0.01)
    return service.stats()["counters"]


class TestDeadlineStorm:
    def test_storm_loses_nothing_and_conserves_metrics(self, engine):
        with CitationService(engine, max_workers=4) as service:
            for query in QUERIES:
                service.cite(query)  # warm the plans; the storm pays execution only
            baseline = service.stats()["counters"]
            # 36 requests (duplicates included) against an ~8ms budget over
            # 5-20ms executions: most cancel mid-join, some squeak through.
            requests = [
                CitationRequest(
                    query=QUERIES[i % len(QUERIES)],
                    request_id=f"storm-{i}",
                    metadata={"no_result_cache": True},
                )
                for i in range(36)
            ]
            returned_at = time.monotonic()
            responses = service.submit_batch(requests, timeout=0.008)
            returned_in = time.monotonic() - returned_at
            # The batch honours its response deadline (+ the bounded
            # cancellation grace), it does not run to completion.
            assert returned_in < 3.0

            # Exactly one response per request, positionally aligned.
            assert len(responses) == len(requests)
            assert [r.request_id for r in responses] == [
                f"storm-{i}" for i in range(len(requests))
            ]
            for response in responses:
                if not response.ok:
                    assert response.error_code in STORM_CODES

            counters = await_quiescence(service)
            conservation(counters)
            # No worker is still executing: half a second of silence.
            time.sleep(0.1)
            settled = service.stats()["counters"]
            assert settled == counters
            # The storm really exercised cancellation, not just fast paths.
            assert counters["errors_timeout"] > baseline.get("errors_timeout", 0) or (
                counters["timeouts"] > 0
            )
            assert counters["errors_permanent"] == 0
            assert counters["errors_shed"] == 0

    def test_stalled_backend_is_cancelled_not_awaited(self, engine):
        with CitationService(engine) as service:
            service.cite(QUERIES[0])
            with fault_plan(FaultSpec("backend.execute", stall=0.1)):
                started = time.perf_counter()
                response = service.submit(
                    CitationRequest(
                        query=QUERIES[0],
                        timeout=0.02,
                        metadata={"no_result_cache": True},
                    )
                )
                elapsed = time.perf_counter() - started
            assert not response.ok
            assert response.error_code == "DEADLINE_EXCEEDED"
            # The stall itself is unavoidable (no checkpoint inside a hung
            # dependency) but the first checkpoint after it cancels.
            assert elapsed < 1.0
            conservation(service.stats()["counters"])


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork backend is POSIX-only")
class TestForkWorkerCrash:
    def test_killed_shard_child_degrades_to_serial_retry(self, db):
        engine = CitationEngine(
            db, gtopdb.citation_views(), strategy="parallel", workers=2,
            parallel_backend="fork",
        )
        expected = frozenset(engine.cite(QUERIES[0]).result.rows)
        engine.invalidate_caches()
        with fault_plan(FaultSpec("fork.child", key=0, exit_status=42)):
            result = engine.cite(QUERIES[0])
        # Byte-identical answers despite shard 0's worker dying mid-flight.
        assert frozenset(result.result.rows) == expected
        sharding = engine.evaluation_metrics.snapshot()["sharding"]
        assert sharding["degraded_retries"] >= 1

    def test_every_child_killed_still_answers(self, db):
        engine = CitationEngine(
            db, gtopdb.citation_views(), strategy="parallel", workers=2,
            parallel_backend="fork",
        )
        expected = frozenset(engine.cite(QUERIES[2]).result.rows)
        engine.invalidate_caches()
        with fault_plan(FaultSpec("fork.child", exit_status=9)):
            result = engine.cite(QUERIES[2])
        assert frozenset(result.result.rows) == expected
        sharding = engine.evaluation_metrics.snapshot()["sharding"]
        assert sharding["degraded_retries"] >= 2

    def test_crash_through_the_service_conserves_metrics(self, db):
        engine = CitationEngine(
            db, gtopdb.citation_views(), strategy="parallel", workers=2,
            parallel_backend="fork",
        )
        with CitationService(engine) as service:
            baseline = service.submit(CitationRequest(query=QUERIES[0]))
            assert baseline.ok
            with fault_plan(FaultSpec("fork.child", key=1, exit_status=42)):
                degraded = service.submit(
                    CitationRequest(
                        query=QUERIES[0], metadata={"no_result_cache": True}
                    )
                )
            assert degraded.ok
            assert degraded.row_count == baseline.row_count
            counters = service.stats()["counters"]
            conservation(counters)
            assert counters["errors"] == 0


class TestAdmissionShedding:
    def test_saturated_service_sheds_and_conserves(self, engine):
        release = threading.Event()
        entered = threading.Event()
        original = engine.execute_plan

        def gated_execute(plan, query=None):
            entered.set()
            release.wait(timeout=10.0)
            return original(plan, query)

        engine.execute_plan = gated_execute
        try:
            with CitationService(engine, max_inflight=1, queue_depth=0) as service:
                holder = threading.Thread(
                    target=service.submit,
                    args=(CitationRequest(query=QUERIES[0]),),
                )
                holder.start()
                assert entered.wait(timeout=10.0)
                shed = [
                    service.submit(CitationRequest(query=QUERIES[i % len(QUERIES)]))
                    for i in range(1, 4)
                ]
                release.set()
                holder.join(timeout=10.0)
                assert all(not response.ok for response in shed)
                assert all(
                    isinstance(response.error, Overloaded) for response in shed
                )
                assert all(
                    response.error.retry_after > 0.0 for response in shed
                )
                counters = await_quiescence(service)
                conservation(counters)
                assert counters["errors_shed"] == 3
                assert counters["executions"] == 1
                assert service.stats()["admission"]["shed"] == 3
        finally:
            engine.execute_plan = original

    def test_shed_requests_recover_on_retry(self, engine):
        # A shed request is transient by contract: once capacity frees up,
        # the same request succeeds.
        with CitationService(engine, max_inflight=2, queue_depth=1) as service:
            response = service.submit(CitationRequest(query=QUERIES[1]))
            assert response.ok
            counters = service.stats()["counters"]
            conservation(counters)


class TestRetryUnderFaults:
    def test_seeded_probabilistic_faults_are_absorbed(self, engine):
        policy = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0, seed=7)
        with CitationService(engine, retry_policy=policy) as service:
            with fault_plan(
                FaultSpec(
                    "backend.execute",
                    error=Overloaded("synthetic pressure", 0.01),
                    probability=0.4,
                ),
                seed=1234,
            ):
                responses = [
                    service.submit(
                        CitationRequest(
                            query=QUERIES[i % len(QUERIES)],
                            metadata={"no_result_cache": True},
                        )
                    )
                    for i in range(16)
                ]
            # With p=0.4 and 4 attempts the chance any request exhausts its
            # budget is ~2.6% per request; the fixed seeds make this run (and
            # any failure of it) replay byte-identically.
            failed = [r for r in responses if not r.ok]
            assert all(r.error_code == "OVERLOADED" for r in failed)
            counters = service.stats()["counters"]
            conservation(counters)
            assert counters["errors_transient_retried"] > 0
            assert counters["executions"] + counters["errors_shed"] >= len(QUERIES)

    def test_retry_does_not_duplicate_executions_on_success(self, engine):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0, seed=3)
        with CitationService(engine, retry_policy=policy) as service:
            with fault_plan(
                FaultSpec("backend.execute", error=ConnectionError, times=1)
            ):
                response = service.submit(CitationRequest(query=QUERIES[3]))
            assert response.ok
            counters = service.stats()["counters"]
            assert counters["executions"] == 1
            assert counters["errors_transient_retried"] == 1
            conservation(counters)


class TestStaleServing:
    def test_deadline_pressure_serves_stamped_stale_entry(self, engine, db):
        with CitationService(engine, serve_stale=True) as service:
            fresh = service.submit(CitationRequest(query=QUERIES[0]))
            assert fresh.ok
            db.insert("Ligand", (777_001, "L-chaos", "synthetic"))
            with fault_plan(FaultSpec("backend.execute", stall=0.05)):
                degraded = service.submit(
                    CitationRequest(query=QUERIES[0], timeout=0.01)
                )
            assert degraded.ok
            assert degraded.stale
            assert degraded.row_count == fresh.row_count
            counters = service.stats()["counters"]
            conservation(counters)
            assert counters["stale_served"] == 1
            assert counters["errors"] == 0

    def test_overload_pressure_serves_stale_too(self, engine, db):
        release = threading.Event()
        entered = threading.Event()
        original = engine.execute_plan

        def gated_execute(plan, query=None):
            entered.set()
            release.wait(timeout=10.0)
            return original(plan, query)

        with CitationService(
            engine, max_inflight=1, queue_depth=0, serve_stale=True
        ) as service:
            warm = service.submit(CitationRequest(query=QUERIES[0]))
            assert warm.ok
            db.insert("Ligand", (777_002, "L-chaos-2", "synthetic"))
            engine.execute_plan = gated_execute
            try:
                holder = threading.Thread(
                    target=service.submit,
                    args=(
                        CitationRequest(
                            query=QUERIES[1], metadata={"no_result_cache": True}
                        ),
                    ),
                )
                holder.start()
                assert entered.wait(timeout=10.0)
                degraded = service.submit(CitationRequest(query=QUERIES[0]))
                release.set()
                holder.join(timeout=10.0)
            finally:
                engine.execute_plan = original
            assert degraded.ok
            assert degraded.stale
            counters = await_quiescence(service)
            conservation(counters)
            assert counters["stale_served"] == 1


class TestPoolSubmitFaults:
    def test_submission_failure_is_isolated_to_its_representative(self, engine):
        with CitationService(engine, max_workers=2) as service:
            requests = [
                CitationRequest(query=QUERIES[i], request_id=f"sub-{i}")
                for i in range(len(QUERIES))
            ]
            with fault_plan(
                FaultSpec(
                    "service.pool_submit", key=1, error=RuntimeError("pool rejected")
                )
            ):
                responses = service.submit_batch(requests, timeout=5.0)
            assert len(responses) == len(requests)
            assert [r.request_id for r in responses] == [
                f"sub-{i}" for i in range(len(requests))
            ]
            by_ok = [response.ok for response in responses]
            assert by_ok.count(False) == 1
            assert not responses[1].ok
            assert responses[1].error_code == "RUNTIMEERROR"
            counters = await_quiescence(service)
            conservation(counters)
            assert counters["errors_permanent"] == 1
