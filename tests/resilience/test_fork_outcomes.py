"""Tests for per-item fork fan-out outcomes and crash reporting."""

from __future__ import annotations

import os

import pytest

from repro.concurrency import fork_map, fork_map_outcomes
from repro.errors import DeadlineExceeded, WorkerCrashError, is_transient

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork fan-out is POSIX-only"
)


class TestOutcomes:
    def test_success_outcomes(self):
        outcomes = fork_map_outcomes(lambda x: x * x, [1, 2, 3])
        assert outcomes == [(1, None), (4, None), (9, None)]

    def test_child_exception_ships_the_typed_object(self):
        def work(x):
            if x == 1:
                raise DeadlineExceeded("shard", remaining=0.0)
            return x

        outcomes = fork_map_outcomes(work, [0, 1, 2])
        assert outcomes[0] == (0, None)
        assert outcomes[2] == (2, None)
        value, error = outcomes[1]
        assert value is None
        assert isinstance(error, DeadlineExceeded)
        assert error.where == "shard"

    def test_dead_child_becomes_worker_crash(self):
        def work(x):
            if x == "die":
                os._exit(42)
            return x

        outcomes = fork_map_outcomes(work, ["ok", "die"])
        assert outcomes[0] == ("ok", None)
        value, error = outcomes[1]
        assert value is None
        assert isinstance(error, WorkerCrashError)
        assert error.status == 42
        assert error.pid > 0
        assert is_transient(error)

    def test_unpicklable_exception_degrades_to_runtimeerror(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        outcomes = fork_map_outcomes(
            lambda _x: (_ for _ in ()).throw(Unpicklable("boom")), [None]
        )
        value, error = outcomes[0]
        assert value is None
        assert isinstance(error, RuntimeError)
        assert "boom" in str(error)


class TestForkMapWrapper:
    def test_all_or_nothing_success(self):
        assert fork_map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_first_error_is_raised_after_all_children_reaped(self):
        def work(x):
            if x % 2:
                raise ValueError(f"odd {x}")
            return x

        with pytest.raises(ValueError, match="odd 1"):
            fork_map(work, [0, 1, 2, 3])
