"""Tests for the deterministic fault-injection registry."""

from __future__ import annotations

import pytest

from repro.errors import Overloaded
from repro.resilience.faults import (
    POINTS,
    FaultRegistry,
    FaultSpec,
    clear,
    fire,
    inject,
    plan,
    registry,
)


@pytest.fixture(autouse=True)
def disarm():
    """Never leak armed faults into other tests."""
    yield
    clear()


class TestArming:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            inject(FaultSpec("no.such.point", error=RuntimeError("boom")))

    def test_fire_with_nothing_armed_is_a_noop(self):
        for point in POINTS:
            fire(point)

    def test_plan_disarms_on_exit(self):
        with plan(FaultSpec("backend.execute", error=RuntimeError("boom"))):
            with pytest.raises(RuntimeError):
                fire("backend.execute")
        fire("backend.execute")  # disarmed again


class TestEffects:
    def test_error_instance_is_raised(self):
        with plan(FaultSpec("backend.execute", error=Overloaded("synthetic", 0.2))):
            with pytest.raises(Overloaded) as excinfo:
                fire("backend.execute")
            assert excinfo.value.retry_after == 0.2

    def test_error_factory_is_called(self):
        with plan(FaultSpec("shard.execute", error=ConnectionError)):
            with pytest.raises(ConnectionError):
                fire("shard.execute")

    def test_stall_then_error(self):
        spec = FaultSpec("prelude.build", stall=0.001, error=RuntimeError("slow boom"))
        with plan(spec):
            with pytest.raises(RuntimeError):
                fire("prelude.build")
        assert spec.fired == 1


class TestSelectors:
    def test_key_restricts_firing(self):
        spec = FaultSpec("shard.execute", error=RuntimeError("boom"), key=2)
        with plan(spec):
            fire("shard.execute", key=0)
            fire("shard.execute", key=1)
            with pytest.raises(RuntimeError):
                fire("shard.execute", key=2)
        assert spec.hits == 1  # only the matching key counted

    def test_after_skips_initial_hits(self):
        spec = FaultSpec("backend.execute", error=RuntimeError("boom"), after=2)
        with plan(spec):
            fire("backend.execute")
            fire("backend.execute")
            with pytest.raises(RuntimeError):
                fire("backend.execute")

    def test_times_bounds_firing(self):
        spec = FaultSpec("backend.execute", error=RuntimeError("boom"), times=2)
        with plan(spec):
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    fire("backend.execute")
            fire("backend.execute")  # budget spent: silent
        assert spec.fired == 2

    def test_probability_is_seed_deterministic(self):
        def firings(seed: int) -> list[bool]:
            reg = FaultRegistry(seed=seed)
            reg.inject(FaultSpec("backend.execute", error=RuntimeError("boom"), probability=0.5))
            out = []
            for _ in range(32):
                try:
                    reg.fire("backend.execute")
                    out.append(False)
                except RuntimeError:
                    out.append(True)
            return out

        run_a, run_b = firings(1234), firings(1234)
        assert run_a == run_b
        assert any(run_a) and not all(run_a)  # p=0.5 over 32 draws

    def test_reseed_replays_probability_sequence(self):
        reg = registry()
        spec = FaultSpec("backend.execute", error=RuntimeError("boom"), probability=0.5)

        def sequence() -> list[bool]:
            out = []
            for _ in range(16):
                try:
                    reg.fire("backend.execute")
                    out.append(False)
                except RuntimeError:
                    out.append(True)
            return out

        with reg.plan(spec, seed=99):
            first = sequence()
        spec_b = FaultSpec("backend.execute", error=RuntimeError("boom"), probability=0.5)
        with reg.plan(spec_b, seed=99):
            assert sequence() == first
