"""Tests for propagated deadlines and cooperative cancellation checkpoints."""

from __future__ import annotations

import time

import pytest

from repro.errors import DeadlineExceeded, is_transient
from repro.resilience import Deadline, current_deadline, deadline_scope
from repro.resilience.deadline import CHECK_STRIDE


class TestDeadline:
    def test_after_and_remaining(self):
        deadline = Deadline.after(60.0)
        assert 59.0 < deadline.remaining() <= 60.0
        assert not deadline.expired()

    def test_expired_deadline_check_raises_with_location(self):
        deadline = Deadline.after(0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("join-loop")
        assert excinfo.value.where == "join-loop"
        assert "join-loop" in str(excinfo.value)

    def test_unexpired_check_is_silent(self):
        Deadline.after(60.0).check("anywhere")

    def test_negative_budget_clamps_to_now(self):
        assert Deadline.after(-5.0).remaining() == 0.0

    def test_union_picks_the_tighter(self):
        near = Deadline.after(1.0)
        far = Deadline.after(60.0)
        assert near.union(far) is near
        assert far.union(near) is near
        assert near.union(None) is near

    def test_deadline_exceeded_is_timeout_but_not_transient(self):
        error = DeadlineExceeded("shard")
        assert isinstance(error, TimeoutError)
        assert not is_transient(error)

    def test_checker_only_reads_clock_every_stride(self):
        expired = Deadline(time.monotonic() - 1.0)
        cancel = expired.checker("loop")
        # The first stride-1 calls never consult the clock.
        for _ in range(CHECK_STRIDE - 1):
            cancel()
        with pytest.raises(DeadlineExceeded):
            cancel()

    def test_checker_custom_stride(self):
        expired = Deadline(time.monotonic() - 1.0)
        cancel = expired.checker("loop", stride=4)
        for _ in range(3):
            cancel()
        with pytest.raises(DeadlineExceeded):
            cancel()


class TestDeadlineScope:
    def test_no_ambient_deadline_by_default(self):
        assert current_deadline() is None

    def test_scope_installs_and_resets(self):
        deadline = Deadline.after(10.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_nested_scopes_tighten(self):
        outer = Deadline.after(1.0)
        inner = Deadline.after(60.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                # A generous inner timeout cannot extend the outer budget.
                assert current_deadline() is outer
            assert current_deadline() is outer

    def test_nested_tighter_scope_wins(self):
        outer = Deadline.after(60.0)
        inner = Deadline.after(1.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_none_scope_preserves_ambient(self):
        ambient = Deadline.after(5.0)
        with deadline_scope(ambient):
            with deadline_scope(None):
                assert current_deadline() is ambient
