"""Tests for the admission controller: slots, queueing, shedding."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import Overloaded, is_transient
from repro.resilience import AdmissionController, Deadline


class TestValidation:
    def test_rejects_nonpositive_inflight(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_rejects_negative_queue(self):
        with pytest.raises(ValueError):
            AdmissionController(1, queue_depth=-1)


class TestAdmission:
    def test_admits_within_capacity(self):
        controller = AdmissionController(2)
        with controller.admit():
            with controller.admit():
                assert controller.inflight == 2
        assert controller.inflight == 0
        assert controller.snapshot()["admitted"] == 2

    def test_sheds_when_full_and_queue_disabled(self):
        controller = AdmissionController(1, queue_depth=0)
        with controller.admit():
            with pytest.raises(Overloaded) as excinfo:
                with controller.admit():
                    pass
        assert excinfo.value.retry_after > 0.0
        assert is_transient(excinfo.value)
        assert controller.snapshot()["shed"] == 1

    def test_queued_request_runs_when_slot_frees(self):
        controller = AdmissionController(1, queue_depth=1)
        holding = threading.Event()
        release = threading.Event()
        admitted = []

        def hold_slot():
            with controller.admit():
                holding.set()
                release.wait(timeout=5.0)

        def wait_in_queue():
            with controller.admit(Deadline.after(5.0)):
                admitted.append(True)

        holder = threading.Thread(target=hold_slot)
        holder.start()
        assert holding.wait(timeout=5.0)
        waiter = threading.Thread(target=wait_in_queue)
        waiter.start()
        # Give the waiter time to enter the queue, then free the slot.
        deadline = time.monotonic() + 5.0
        while controller.snapshot()["queued"] == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert controller.snapshot()["queued"] == 1
        release.set()
        holder.join(timeout=5.0)
        waiter.join(timeout=5.0)
        assert admitted == [True]
        assert controller.snapshot()["shed"] == 0

    def test_queued_request_sheds_on_deadline_expiry(self):
        controller = AdmissionController(1, queue_depth=1)
        release = threading.Event()
        holding = threading.Event()

        def hold_slot():
            with controller.admit():
                holding.set()
                release.wait(timeout=5.0)

        holder = threading.Thread(target=hold_slot)
        holder.start()
        assert holding.wait(timeout=5.0)
        try:
            with pytest.raises(Overloaded):
                with controller.admit(Deadline.after(0.02)):
                    pass
        finally:
            release.set()
            holder.join(timeout=5.0)
        snapshot = controller.snapshot()
        assert snapshot["shed"] == 1
        assert snapshot["queued"] == 0

    def test_slot_released_when_work_raises(self):
        controller = AdmissionController(1)
        with pytest.raises(RuntimeError):
            with controller.admit():
                raise RuntimeError("work failed")
        assert controller.inflight == 0
        with controller.admit():
            pass  # the slot is reusable

    def test_retry_after_tracks_service_times(self):
        controller = AdmissionController(1, queue_depth=0)
        controller.record_service_time(2.0)
        with controller.admit():
            with pytest.raises(Overloaded) as excinfo:
                with controller.admit():
                    pass
        # Hint is about one queue-drain of mean service times.
        assert excinfo.value.retry_after >= 2.0

    def test_snapshot_shape(self):
        snapshot = AdmissionController(3, queue_depth=2).snapshot()
        assert snapshot == {
            "max_inflight": 3,
            "queue_depth": 2,
            "inflight": 0,
            "queued": 0,
            "admitted": 0,
            "shed": 0,
            "mean_service_ms": 0.0,
        }
