"""Tests for the retry policy: taxonomy, backoff, deadline interaction."""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExceeded, Overloaded, QueryError, WorkerCrashError
from repro.resilience import Deadline, RetryPolicy


def flaky(failures, error_factory):
    """A callable failing *failures* times before succeeding."""
    calls = {"n": 0}

    def run():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise error_factory()
        return "ok"

    run.calls = calls
    return run


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_inverted_delays(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)


class TestRetry:
    def test_transient_failures_are_absorbed(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)
        run = flaky(2, lambda: Overloaded("busy"))
        retried = []
        assert policy.call(run, on_retry=lambda n, e: retried.append(n)) == "ok"
        assert run.calls["n"] == 3
        assert retried == [1, 2]

    def test_worker_crash_is_retryable(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0)
        assert policy.call(flaky(1, lambda: WorkerCrashError(123, -9))) == "ok"

    def test_permanent_errors_are_not_retried(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)
        run = flaky(1, lambda: QueryError("bad request"))
        with pytest.raises(QueryError):
            policy.call(run)
        assert run.calls["n"] == 1

    def test_deadline_exceeded_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)
        run = flaky(1, lambda: DeadlineExceeded("shard"))
        with pytest.raises(DeadlineExceeded):
            policy.call(run)
        assert run.calls["n"] == 1

    def test_exhausted_budget_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)
        run = flaky(99, lambda: Overloaded("busy"))
        with pytest.raises(Overloaded):
            policy.call(run)
        assert run.calls["n"] == 3

    def test_sleep_never_overruns_the_deadline(self):
        # Backoff would sleep >= 0.05s, but only ~0ms of budget remains:
        # the policy must abandon the retry immediately instead of sleeping.
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.05)
        run = flaky(99, lambda: Overloaded("busy"))
        with pytest.raises(Overloaded):
            policy.call(run, deadline=Deadline.after(0.0))
        assert run.calls["n"] == 1

    def test_seeded_schedules_are_deterministic(self):
        delays_a = [RetryPolicy(seed=42)._next_delay(0.01) for _ in range(5)]
        delays_b = [RetryPolicy(seed=42)._next_delay(0.01) for _ in range(5)]
        assert delays_a == delays_b
        assert all(0.01 <= d <= 0.5 for d in delays_a)

    def test_delays_are_bounded(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.05, seed=7)
        delay = 0.01
        for _ in range(10):
            delay = policy._next_delay(delay)
            assert 0.01 <= delay <= 0.05

    def test_custom_classifier(self):
        policy = RetryPolicy(
            max_attempts=2,
            base_delay=0.0,
            max_delay=0.0,
            classify=lambda e: isinstance(e, KeyError),
        )
        assert policy.call(flaky(1, lambda: KeyError("x"))) == "ok"
