"""Tests for the compile-time query rules (Q001–Q008) and QueryAnalysis."""

from repro.analysis import analyze_query
from repro.query.parser import parse_query
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema(
    [
        RelationSchema(
            "R",
            [Attribute("a", int), Attribute("b", int)],
            key=["a"],
        ),
        RelationSchema("S", [Attribute("a", int), Attribute("b", str)]),
    ]
)


def codes(analysis):
    return [diag.code for diag in analysis.diagnostics]


class TestQ001ConstantConflicts:
    def test_conflicting_equalities_are_an_error(self):
        query = parse_query('Q(X) :- R(X, Y), Y = "c", Y = "d"')
        analysis = analyze_query(query)
        assert "Q001" in codes(analysis)
        assert analysis.has_errors

    def test_unsatisfiable_query_skips_minimization(self):
        query = parse_query('Q(X) :- R(X, Y), R(X, Z), Y = "c", Y = "d"')
        analysis = analyze_query(query)
        assert "Q001" in codes(analysis)
        assert analysis.core == query  # minimization is meaningless here
        assert not analysis.minimized

    def test_repeated_consistent_equalities_are_fine(self):
        query = parse_query('Q(X) :- R(X, Y), Y = "c", Y = "c"')
        assert "Q001" not in codes(analyze_query(query))


class TestQ002KeyContradictions:
    def test_same_key_different_constants_is_an_error(self):
        # R's key is its first column: both atoms pin a=X but disagree on b.
        query = parse_query("Q(X) :- R(X, 1), R(X, 2)")
        analysis = analyze_query(query, SCHEMA)
        assert "Q002" in codes(analysis)
        assert analysis.has_errors

    def test_different_keys_do_not_conflict(self):
        query = parse_query("Q(X, Y) :- R(X, 1), R(Y, 2)")
        assert "Q002" not in codes(analyze_query(query, SCHEMA))

    def test_agreeing_constants_do_not_conflict(self):
        query = parse_query("Q(X) :- R(X, 1), R(X, 1)")
        assert "Q002" not in codes(analyze_query(query, SCHEMA))

    def test_keyless_relation_is_exempt(self):
        query = parse_query('Q(X) :- S(X, "a"), S(X, "b")')
        assert "Q002" not in codes(analyze_query(query, SCHEMA))

    def test_needs_a_schema(self):
        query = parse_query("Q(X) :- R(X, 1), R(X, 2)")
        assert "Q002" not in codes(analyze_query(query))

    def test_equality_bound_variables_participate(self):
        query = parse_query("Q(X) :- R(X, Y), R(X, 2), Y = 1")
        assert "Q002" in codes(analyze_query(query, SCHEMA))


class TestQ003Minimization:
    def test_redundant_atom_reported_and_dropped(self):
        query = parse_query("Q(X) :- R(X, Y), R(X, Z)")
        analysis = analyze_query(query)
        assert "Q003" in codes(analysis)
        assert analysis.minimized
        assert analysis.atoms_dropped == 1
        assert len(analysis.core.body) == 1
        assert analysis.query == query  # the original is kept verbatim

    def test_minimal_query_reports_nothing(self):
        query = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        analysis = analyze_query(query)
        assert "Q003" not in codes(analysis)
        assert analysis.core == query
        assert not analysis.minimized

    def test_run_minimization_false_skips_the_core_computation(self):
        query = parse_query("Q(X) :- R(X, Y), R(X, Z)")
        analysis = analyze_query(query, run_minimization=False)
        assert analysis.core == query
        assert "Q003" not in codes(analysis)


class TestQ004CartesianProduct:
    def test_disconnected_body_warns(self):
        query = parse_query("Q(X, Z) :- R(X, Y), S(Z, W)")
        assert "Q004" in codes(analyze_query(query))

    def test_connected_body_does_not_warn(self):
        query = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        assert "Q004" not in codes(analyze_query(query))

    def test_equality_bound_shared_variable_is_not_a_join(self):
        # Y is pinned to a constant, so it joins nothing: R x S is a product.
        query = parse_query("Q(X, Z) :- R(X, Y), S(Z, Y), Y = 1")
        assert "Q004" in codes(analyze_query(query))

    def test_single_atom_is_exempt(self):
        assert "Q004" not in codes(analyze_query(parse_query("Q(X) :- R(X, Y)")))


class TestQ005SingletonVariables:
    def test_singleton_existential_is_reported(self):
        query = parse_query("Q(X) :- R(X, Y), S(X, W)")
        analysis = analyze_query(query)
        q005 = [d for d in analysis.diagnostics if d.code == "Q005"]
        assert len(q005) == 1
        assert "W" in q005[0].message and "Y" in q005[0].message

    def test_head_variables_are_not_singletons(self):
        query = parse_query("Q(X, Y) :- R(X, Y)")
        assert "Q005" not in codes(analyze_query(query))

    def test_repeated_existential_is_a_join_not_a_singleton(self):
        query = parse_query("Q(X) :- R(X, Y), S(Y, X)")
        assert "Q005" not in codes(analyze_query(query))


class TestSchemaRules:
    def test_q006_unknown_relation(self):
        query = parse_query("Q(X) :- Nope(X, Y)")
        analysis = analyze_query(query, SCHEMA)
        assert "Q006" in codes(analysis)
        assert analysis.has_errors

    def test_q006_respects_known_predicates(self):
        query = parse_query("Q(X) :- V1(X, Y)")
        analysis = analyze_query(query, SCHEMA, known_predicates={"V1"})
        assert "Q006" not in codes(analysis)

    def test_q007_arity_mismatch(self):
        query = parse_query("Q(X) :- R(X, Y, Z)")
        analysis = analyze_query(query, SCHEMA)
        assert "Q007" in codes(analysis)
        assert analysis.has_errors

    def test_q008_type_mismatch_on_literal_constant(self):
        query = parse_query('Q(X) :- R(X, "text")')
        assert "Q008" in codes(analyze_query(query, SCHEMA))

    def test_q008_type_mismatch_via_equality_binding(self):
        query = parse_query("Q(X) :- S(X, Y), Y = 7")
        assert "Q008" in codes(analyze_query(query, SCHEMA))

    def test_well_typed_query_is_clean(self):
        query = parse_query('Q(X) :- R(X, 3), S(X, "ok")')
        analysis = analyze_query(query, SCHEMA)
        assert analysis.diagnostics == ()


class TestQueryAnalysis:
    def test_report_is_cached_and_matches_diagnostics(self):
        analysis = analyze_query(parse_query("Q(X) :- R(X, Y), R(X, Z)"))
        report = analysis.report
        assert report is analysis.report  # lazily built once
        assert report.diagnostics == analysis.diagnostics

    def test_clean_query_has_no_errors(self):
        analysis = analyze_query(parse_query("Q(X) :- R(X, Y)"), SCHEMA)
        assert not analysis.has_errors
        assert analysis.core == analysis.query
