"""Tests for the ``repro lint`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.core.policy import CitationPolicy
from repro.core.spec import dump_specification
from repro.relational.csvio import dump_database_json
from repro.workloads import gtopdb


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "gtopdb.json"
    dump_database_json(gtopdb.paper_instance(), path)
    return str(path)


@pytest.fixture
def spec_file(tmp_path):
    payload = dump_specification(gtopdb.citation_views(), CitationPolicy.default())
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


@pytest.fixture
def seeded_spec_file(tmp_path):
    """A spec with a deliberately shadowed view (the V002 fixture)."""
    payload = {
        "views": [
            {"view": "AllFam(FID, FName, Desc) :- Family(FID, FName, Desc)"},
            {
                "view": "IntroFam(FID, FName, Desc) :- "
                "Family(FID, FName, Desc), FamilyIntro(FID, Text)"
            },
        ]
    }
    path = tmp_path / "seeded.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


@pytest.fixture
def workload_file(tmp_path):
    """A workload with one covered query and one coverage gap (V003)."""
    path = tmp_path / "workload.dlog"
    path.write_text(
        "Q(FName) :- Family(FID, FName, Desc)\n"
        "\n"
        "# targets are not covered by any seeded view\n"
        "Uncov(TName) :- Target(TID, TName, FID, Type)\n",
        encoding="utf-8",
    )
    return str(path)


class TestLint:
    def test_flags_shadowed_view_and_coverage_gap(
        self, database_file, seeded_spec_file, workload_file, capsys
    ):
        code = main(
            [
                "lint",
                "--database",
                database_file,
                "--spec",
                seeded_spec_file,
                "--workload",
                workload_file,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # warnings only: non-strict lint passes
        assert "V002" in out  # IntroFam shadowed by AllFam
        assert "V003" in out  # Uncov has no rewriting
        assert "IntroFam" in out
        assert "Uncov" in out

    def test_strict_mode_exits_nonzero_on_warnings(
        self, database_file, seeded_spec_file, workload_file
    ):
        code = main(
            [
                "lint",
                "--database",
                database_file,
                "--spec",
                seeded_spec_file,
                "--workload",
                workload_file,
                "--strict",
            ]
        )
        assert code == 1

    def test_json_format_is_machine_readable(
        self, database_file, seeded_spec_file, workload_file, capsys
    ):
        code = main(
            [
                "lint",
                "--database",
                database_file,
                "--spec",
                seeded_spec_file,
                "--workload",
                workload_file,
                "--format",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"V002", "V003"} <= codes
        assert payload["summary"]["warning"] >= 2

    def test_error_diagnostics_exit_nonzero_without_strict(
        self, database_file, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"views": [{"view": "Bad(X) :- Nonexistent(X)"}]}),
            encoding="utf-8",
        )
        code = main(["lint", "--database", database_file, "--spec", str(bad)])
        assert code == 1
        assert "L001" in capsys.readouterr().out

    def test_paper_spec_is_lint_clean_of_errors(
        self, database_file, spec_file, capsys
    ):
        code = main(["lint", "--database", database_file, "--spec", spec_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_default_views_lint(self, database_file, capsys):
        code = main(["lint", "--database", database_file, "--title", "GtoPdb"])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_workload_accepts_sql(self, database_file, spec_file, capsys):
        workload = "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID"
        import pathlib

        path = pathlib.Path(database_file).parent / "workload.sql"
        path.write_text(workload + "\n", encoding="utf-8")
        code = main(
            [
                "lint",
                "--database",
                database_file,
                "--spec",
                spec_file,
                "--workload",
                str(path),
            ]
        )
        assert code == 0

    def test_list_rules_enumerates_every_code(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for expected in ("Q001", "Q003", "V002", "V003", "P001", "L001"):
            assert expected in out

    def test_lint_without_database_is_an_error(self, capsys):
        code = main(["lint"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
