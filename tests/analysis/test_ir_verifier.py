"""The compiled-plan IR verifier: clean on real output, precise on mutations.

Two halves.  First, everything the compiler actually produces — programs,
reductions, warm preludes — must verify clean (the whole tier-1 suite also
enforces this via the ``strict`` default installed in ``conftest.py``).
Second, each class of hand-seeded corruption must be rejected with its
specific I-code, so the verifier localises faults instead of merely
detecting them.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import CitationEngine, parse_query
from repro.analysis.ir import (
    verify_citation_plan,
    verify_prelude,
    verify_program,
    verify_reduced,
)
from repro.errors import PlanVerificationError
from repro.query.compiler import StepReduction, reduce_program
from repro.query.evaluator import QueryEvaluator
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

CHAIN_SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", [Attribute("a", object), Attribute("b", object)], key=None),
        RelationSchema("S", [Attribute("a", object), Attribute("b", object)], key=None),
        RelationSchema("T", [Attribute("a", object), Attribute("b", object)], key=None),
    ]
)

CHAIN = parse_query("Q(X, W) :- R(X, Y), S(Y, Z), T(Z, W)")


@pytest.fixture
def chain_db():
    database = Database(CHAIN_SCHEMA)
    for i in range(6):
        database.insert("R", (i, i + 1))
        database.insert("S", (i + 1, i + 2))
        database.insert("T", (i + 2, i + 3))
    return database


@pytest.fixture
def evaluator(chain_db):
    return QueryEvaluator(chain_db)


def codes(report):
    return sorted({diagnostic.code for diagnostic in report})


# ---------------------------------------------------------------------------
# Clean compiler output verifies clean
# ---------------------------------------------------------------------------
class TestCleanArtifacts:
    def test_program_reduction_and_prelude_verify_clean(self, evaluator):
        program = evaluator.compile(CHAIN)
        reduced = evaluator.reduction_of(CHAIN, program)
        prelude = evaluator.prelude_for(CHAIN, reduced)
        # Warm the prelude (twice: the second pass caches the bucket plan).
        evaluator.evaluate(CHAIN, strategy="reduced")
        evaluator.evaluate(CHAIN, strategy="reduced")
        assert not list(verify_program(program))
        assert not list(verify_reduced(reduced))
        assert not list(verify_prelude(prelude))

    def test_constants_and_equalities_verify_clean(self, evaluator):
        query = parse_query('Q(X) :- R(X, Y), S(Y, "3"), X = "1"')
        program = evaluator.compile(query)
        assert not list(verify_program(program))
        assert not list(verify_reduced(evaluator.reduction_of(query, program)))

    def test_self_join_verifies_clean(self, evaluator):
        query = parse_query("Q(X, Z) :- R(X, Y), R(Y, Z)")
        program = evaluator.compile(query)
        assert not list(verify_program(program))
        assert not list(verify_reduced(evaluator.reduction_of(query, program)))

    def test_repeated_variable_within_atom_verifies_clean(self, evaluator):
        query = parse_query("Q(X) :- R(X, X)")
        program = evaluator.compile(query)
        assert not list(verify_program(program))


# ---------------------------------------------------------------------------
# Seeded mutations are rejected with the expected code
# ---------------------------------------------------------------------------
class TestSeededMutations:
    def test_out_of_range_write_slot_is_i003(self, evaluator):
        program = evaluator.compile(CHAIN)
        step = program.steps[1]
        bad_step = dataclasses.replace(
            step, writes=tuple((position, 99) for position, _slot in step.writes)
        )
        mutated = dataclasses.replace(
            program, steps=(program.steps[0], bad_step, *program.steps[2:])
        )
        found = codes(verify_program(mutated))
        assert "I003" in found

    def test_probe_slot_swapped_to_unwritten_is_i001(self, evaluator):
        program = evaluator.compile(CHAIN)
        step = program.steps[1]
        # Point the probe at a slot only a *later* step writes.
        later_slot = program.steps[2].writes[-1][1]
        key_slots = tuple(
            later_slot if slot is not None else None for slot in step.key_slots
        )
        mutated = dataclasses.replace(
            program,
            steps=(
                program.steps[0],
                dataclasses.replace(step, key_slots=key_slots),
                *program.steps[2:],
            ),
        )
        assert "I001" in codes(verify_program(mutated))

    def test_dropped_reduction_fields_are_i006(self, evaluator):
        program = evaluator.compile(CHAIN)
        reduced = evaluator.reduction_of(CHAIN, program)
        target = next(
            index
            for index, reduction in enumerate(reduced.reductions)
            if reduction != StepReduction((), (), (), ())
        )
        reductions = list(reduced.reductions)
        reductions[target] = StepReduction((), (), (), ())
        mutated = dataclasses.replace(reduced, reductions=tuple(reductions))
        assert codes(verify_reduced(mutated)) == ["I006"]

    def test_flipped_acyclic_flag_is_i005(self, evaluator):
        reduced = evaluator.reduction_of(CHAIN, evaluator.compile(CHAIN))
        assert reduced.acyclic and reduced.semi_joins
        mutated = dataclasses.replace(reduced, acyclic=False)
        assert codes(verify_reduced(mutated)) == ["I005"]

    def test_reordered_semi_joins_are_i005(self, evaluator):
        reduced = evaluator.reduction_of(CHAIN, evaluator.compile(CHAIN))
        assert len(reduced.semi_joins) >= 2
        mutated = dataclasses.replace(
            reduced, semi_joins=tuple(reversed(reduced.semi_joins))
        )
        assert "I005" in codes(verify_reduced(mutated))

    def test_stale_bucket_plan_is_i007(self, evaluator):
        program = evaluator.compile(CHAIN)
        reduced = evaluator.reduction_of(CHAIN, program)
        prelude = evaluator.prelude_for(CHAIN, reduced)
        evaluator.evaluate(CHAIN, strategy="reduced")
        evaluator.evaluate(CHAIN, strategy="reduced")
        snapshot = prelude._snapshot
        assert snapshot is not None and snapshot.plan is not None
        # Replace one plan entry's step with an equal-but-distinct copy: the
        # snapshot no longer refers to the program's own step objects.
        entry = snapshot.plan[0]
        snapshot.plan[0] = (dataclasses.replace(entry[0]), *entry[1:])
        assert codes(verify_prelude(prelude)) == ["I007"]

    def test_mutated_seed_is_i004(self, evaluator):
        query = parse_query('Q(X) :- R(X, Y), X = "1"')
        program = evaluator.compile(query)
        mutated = dataclasses.replace(
            program, seed=tuple((slot, "999") for slot, _value in program.seed)
        )
        assert "I004" in codes(verify_program(mutated))


# ---------------------------------------------------------------------------
# Engine integration: the verify_plans knob
# ---------------------------------------------------------------------------
class TestEngineKnob:
    def test_suite_engines_verify_strictly(self, paper_engine):
        # conftest flips the class default to "strict" for the whole suite,
        # so every fixture engine both verifies and raises on violations.
        assert CitationEngine.DEFAULT_VERIFY_PLANS == "strict"
        assert paper_engine.verify_plans == "strict"

    def test_shipped_default_is_off(self):
        # The cheap production default is spelled in the class body; the
        # suite-wide "strict" is a conftest override of the class attribute,
        # visible as such in vars() of the conftest-patched class.
        import inspect

        import repro.core.engine as engine_module

        source = inspect.getsource(engine_module.CitationEngine)
        assert 'DEFAULT_VERIFY_PLANS: VerifyMode = "off"' in source

    def test_invalid_knob_rejected(self, paper_db, paper_views):
        from repro.errors import CitationError

        with pytest.raises(CitationError):
            CitationEngine(paper_db, paper_views, verify_plans="always")

    def test_strict_raises_on_corrupted_program(self, paper_db, paper_views, paper_query):
        engine = CitationEngine(paper_db, paper_views, verify_plans="strict")
        evaluator = engine._execution_evaluator()
        original = evaluator.compile

        def corrupting_compile(query):
            program = original(query)
            step = program.steps[-1]
            bad = dataclasses.replace(
                step, writes=tuple((position, 99) for position, _slot in step.writes)
            )
            return dataclasses.replace(program, steps=(*program.steps[:-1], bad))

        evaluator.compile = corrupting_compile
        evaluator.invalidate_caches()
        with pytest.raises(PlanVerificationError) as excinfo:
            engine.compile_plan(paper_query)
        assert excinfo.value.diagnostics
        assert any(d.code == "I003" for d in excinfo.value.diagnostics)
        stats = engine.analysis_stats()
        assert stats["verify_violations"] >= 1

    def test_warn_reports_but_does_not_raise(self, paper_db, paper_views, paper_query):
        engine = CitationEngine(paper_db, paper_views, verify_plans="warn")
        evaluator = engine._execution_evaluator()
        original = evaluator.compile

        def corrupting_compile(query):
            program = original(query)
            step = program.steps[-1]
            bad = dataclasses.replace(
                step, writes=tuple((position, 99) for position, _slot in step.writes)
            )
            return dataclasses.replace(program, steps=(*program.steps[:-1], bad))

        evaluator.compile = corrupting_compile
        evaluator.invalidate_caches()
        plan = engine.compile_plan(paper_query)
        assert plan is not None
        stats = engine.analysis_stats()
        assert stats["plans_verified"] >= 1
        assert stats["verify_violations"] >= 1

    def test_off_skips_verification(self, paper_db, paper_views, paper_query):
        engine = CitationEngine(paper_db, paper_views, verify_plans="off")
        engine.compile_plan(paper_query)
        assert engine.analysis_stats()["plans_verified"] == 0

    def test_verify_plan_clean_after_cite(self, paper_engine, paper_query):
        plan = paper_engine.compile_plan(paper_query)
        paper_engine.execute_plan(plan)
        paper_engine.execute_plan(plan)  # warm preludes and bucket plans
        report = paper_engine.verify_plan(plan)
        assert not list(report)

    def test_verify_plan_catches_cross_plan_program_swap(
        self, paper_engine, paper_query
    ):
        other_query = parse_query("Q2(FID) :- FamilyIntro(FID, Text)")
        plan = paper_engine.compile_plan(paper_query)
        other = paper_engine.compile_plan(other_query)
        paper_engine.execute_plan(plan)
        paper_engine.execute_plan(other)
        # Corrupt: graft a program compiled for a different rewriting.
        foreign = other.compiled_program(0)
        assert foreign is not None
        plan._programs[0] = foreign
        report = verify_citation_plan(plan)
        assert report.has_errors

    def test_strict_via_cite_on_healthy_engine_is_silent(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query)
        assert result.result.rows
        stats = paper_engine.analysis_stats()
        assert stats["plans_verified"] >= 1
        assert stats["verify_violations"] == 0


def test_reduce_program_is_deterministic(evaluator):
    program = evaluator.compile(CHAIN)
    first = reduce_program(program)
    second = reduce_program(program)
    assert first.semi_joins == second.semi_joins
    assert first.reductions == second.reductions
    assert first.subtrees == second.subtrees
