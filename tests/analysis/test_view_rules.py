"""Tests for the view-set, workload-coverage and policy rules."""

from repro.analysis import analyze_view_set, analyze_workload_coverage
from repro.core.citation_view import CitationView, DefaultCitationFunction
from repro.query.parser import parse_query
from repro.workloads import gtopdb

SCHEMA = gtopdb.schema()


def view(text, **kwargs):
    return CitationView(parse_query(text), **kwargs)


def codes(report):
    return [diag.code for diag in report]


class TestV001Duplicates:
    def test_equivalent_views_with_same_parameters_are_duplicates(self):
        report = analyze_view_set(
            [
                view("A(FID, FName, Desc) :- Family(FID, FName, Desc)"),
                view("B(FID, FName, Desc) :- Family(FID, FName, Desc)"),
            ]
        )
        assert "V001" in codes(report)
        assert report.has_errors

    def test_alpha_renamed_duplicate_is_still_detected(self):
        report = analyze_view_set(
            [
                view("A(FID, FName, Desc) :- Family(FID, FName, Desc)"),
                view("B(I, N, D) :- Family(I, N, D)"),
            ]
        )
        assert "V001" in codes(report)

    def test_equivalent_bodies_with_different_parameters_are_deliberate(self):
        # The paper's V1/V2 pattern: same body, coarse vs per-family credit.
        report = analyze_view_set(
            [
                view("lambda FID. A(FID, FName, Desc) :- Family(FID, FName, Desc)"),
                view("B(FID, FName, Desc) :- Family(FID, FName, Desc)"),
            ]
        )
        assert "V001" not in codes(report)


class TestV002Shadowing:
    FINE = "Fine(FID, FName, Desc) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
    COARSE = "Coarse(FID, FName, Desc) :- Family(FID, FName, Desc)"

    def test_strictly_contained_view_is_shadowed(self):
        report = analyze_view_set([view(self.FINE), view(self.COARSE)])
        shadows = [d for d in report if d.code == "V002"]
        assert len(shadows) == 1
        assert "'Fine'" in shadows[0].message and "'Coarse'" in shadows[0].message

    def test_detection_is_order_independent(self):
        report = analyze_view_set([view(self.COARSE), view(self.FINE)])
        assert "V002" in codes(report)

    def test_parameterized_inner_view_is_exempt(self):
        fine = "lambda FID. " + self.FINE
        report = analyze_view_set([view(fine), view(self.COARSE)])
        assert "V002" not in codes(report)

    def test_incomparable_views_do_not_shadow(self):
        report = analyze_view_set(
            [
                view("A(FID, FName, Desc) :- Family(FID, FName, Desc)"),
                view("B(FID, Text) :- FamilyIntro(FID, Text)"),
            ]
        )
        assert "V002" not in codes(report)


class TestV005MissingKeyTerms:
    def test_projected_out_key_is_reported(self):
        report = analyze_view_set(
            [view("NoKey(FName) :- Family(FID, FName, Desc)")], SCHEMA
        )
        v005 = [d for d in report if d.code == "V005"]
        assert len(v005) == 1
        assert "FID" in v005[0].message

    def test_key_in_head_is_fine(self):
        report = analyze_view_set(
            [view("Keyed(FID, FName) :- Family(FID, FName, Desc)")], SCHEMA
        )
        assert "V005" not in codes(report)

    def test_key_as_parameter_is_fine(self):
        report = analyze_view_set(
            [view("lambda FID. P(FID, FName) :- Family(FID, FName, Desc)")], SCHEMA
        )
        assert "V005" not in codes(report)


class TestL001SchemaProblems:
    def test_unknown_relation_in_view_is_an_error(self):
        report = analyze_view_set([view("Bad(X) :- Nonexistent(X, Y)")], SCHEMA)
        assert "L001" in codes(report)
        assert report.has_errors

    def test_paper_views_are_schema_clean(self):
        report = analyze_view_set(gtopdb.citation_views(), SCHEMA)
        assert "L001" not in codes(report)


class TestPolicyRules:
    def test_p002_view_without_citation_queries(self):
        report = analyze_view_set([view("Plain(FID, Text) :- FamilyIntro(FID, Text)")])
        assert "P002" in codes(report)

    def test_p001_field_map_entry_that_never_fires(self):
        bad = CitationView(
            parse_query("V(FID, FName) :- Family(FID, FName, Desc)"),
            citation_queries=[parse_query("CV(FName) :- Family(FID, FName, Desc)")],
            citation_function=DefaultCitationFunction(field_map={"Nope": "title"}),
        )
        report = analyze_view_set([bad])
        p001 = [d for d in report if d.code == "P001"]
        assert len(p001) == 1
        assert "'Nope'" in p001[0].message

    def test_paper_views_field_maps_all_fire(self):
        report = analyze_view_set(gtopdb.citation_views(), SCHEMA)
        assert "P001" not in codes(report)


class TestWorkloadCoverage:
    VIEWS = [
        view("FamV(FID, FName, Desc) :- Family(FID, FName, Desc)"),
        view("IntroV(FID, Text) :- FamilyIntro(FID, Text)"),
    ]

    def test_covered_workload_is_clean(self):
        workload = [parse_query("Q(FName) :- Family(FID, FName, Desc)")]
        report = analyze_workload_coverage(self.VIEWS, workload)
        assert "V003" not in codes(report)

    def test_v003_uncovered_query(self):
        workload = [parse_query("Q(TName) :- Target(TID, TName, FID, Type)")]
        report = analyze_workload_coverage(self.VIEWS, workload)
        v003 = [d for d in report if d.code == "V003"]
        assert len(v003) == 1
        assert report.has_warnings

    def test_v004_ambiguous_query(self):
        overlapping = self.VIEWS + [
            view("FamV2(FID, FName, Desc) :- Family(FID, FName, Desc)")
        ]
        workload = [parse_query("Q(FName) :- Family(FID, FName, Desc)")]
        report = analyze_workload_coverage(overlapping, workload)
        assert "V004" in codes(report)

    def test_v006_dead_view(self):
        workload = [parse_query("Q(FName) :- Family(FID, FName, Desc)")]
        report = analyze_workload_coverage(self.VIEWS, workload)
        dead = [d for d in report if d.code == "V006"]
        assert [d.location for d in dead] == ["view 'IntroV'"]

    def test_empty_workload_reports_nothing(self):
        assert not analyze_workload_coverage(self.VIEWS, [])

    def test_empty_view_set_reports_nothing(self):
        workload = [parse_query("Q(FName) :- Family(FID, FName, Desc)")]
        assert not analyze_workload_coverage([], workload)

    def test_paper_views_cover_the_paper_query(self):
        workload = [
            parse_query(
                "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
            )
        ]
        report = analyze_workload_coverage(gtopdb.citation_views(), workload)
        assert "V003" not in codes(report)
