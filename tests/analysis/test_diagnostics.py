"""Tests for the diagnostics framework: codes, reports, registry."""

import json

import pytest

from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    diagnostic,
    registered_rules,
    rule,
    worst_severity,
)


def d(code, severity, message, location="", hint=""):
    return Diagnostic(code, severity, message, location, hint)


class TestDiagnostic:
    def test_render_includes_code_severity_location_and_hint(self):
        text = str(d("Q004", Severity.WARNING, "cartesian", "query 'Q'", "fix it"))
        assert text == "Q004 warning [query 'Q']: cartesian (fix it)"

    def test_render_without_location_or_hint(self):
        assert str(d("Q001", Severity.ERROR, "bad")) == "Q001 error: bad"

    def test_as_dict_omits_empty_fields(self):
        payload = d("Q005", Severity.INFO, "singleton").as_dict()
        assert payload == {"code": "Q005", "severity": "info", "message": "singleton"}

    def test_as_dict_keeps_location_and_hint(self):
        payload = d("V002", Severity.WARNING, "shadow", "view 'V'", "drop it").as_dict()
        assert payload["location"] == "view 'V'"
        assert payload["hint"] == "drop it"

    def test_severity_ordering_by_weight(self):
        assert Severity.ERROR.weight > Severity.WARNING.weight > Severity.INFO.weight


class TestAnalysisReport:
    def test_preserves_insertion_order(self):
        first = d("Q004", Severity.WARNING, "a")
        second = d("Q001", Severity.ERROR, "b")
        report = AnalysisReport([first, second])
        assert report.diagnostics == (first, second)

    def test_deduplicates_identical_diagnostics(self):
        finding = d("Q005", Severity.INFO, "same")
        report = AnalysisReport([finding, finding])
        report.add(finding)
        assert len(report) == 1

    def test_extend_accepts_another_report(self):
        left = AnalysisReport([d("Q001", Severity.ERROR, "a")])
        right = AnalysisReport([d("Q004", Severity.WARNING, "b")])
        left.extend(right)
        assert [x.code for x in left] == ["Q001", "Q004"]

    def test_severity_filters_and_flags(self):
        report = AnalysisReport(
            [
                d("Q001", Severity.ERROR, "e"),
                d("Q004", Severity.WARNING, "w"),
                d("Q005", Severity.INFO, "i"),
            ]
        )
        assert [x.code for x in report.errors] == ["Q001"]
        assert [x.code for x in report.warnings] == ["Q004"]
        assert report.has_errors and report.has_warnings

    def test_counts_always_has_all_three_keys(self):
        assert AnalysisReport().counts() == {"error": 0, "warning": 0, "info": 0}

    def test_empty_report_is_falsy(self):
        assert not AnalysisReport()
        assert AnalysisReport([d("Q005", Severity.INFO, "x")])

    def test_to_text_lists_findings_and_summary(self):
        report = AnalysisReport([d("Q001", Severity.ERROR, "boom")])
        text = report.to_text()
        assert "Q001 error: boom" in text
        assert "1 error(s), 0 warning(s), 0 info" in text

    def test_to_text_on_empty_report(self):
        assert AnalysisReport().to_text().startswith("no diagnostics")

    def test_to_json_round_trips(self):
        report = AnalysisReport([d("V003", Severity.WARNING, "gap", "query 'Q'")])
        payload = json.loads(report.to_json())
        assert payload["summary"]["warning"] == 1
        assert payload["diagnostics"][0]["code"] == "V003"


class TestRegistry:
    def test_every_documented_code_is_registered(self):
        codes = {r.code for r in registered_rules()}
        expected = (
            {f"Q00{i}" for i in range(1, 9)}
            | {f"V00{i}" for i in range(1, 7)}
            | {"P001", "P002", "L001"}
        )
        assert expected <= codes

    def test_rules_are_sorted_by_code(self):
        codes = [r.code for r in registered_rules()]
        assert codes == sorted(codes)

    def test_duplicate_code_registration_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("Q001", "query", Severity.ERROR, "imposter")(lambda: None)

    def test_diagnostic_helper_resolves_severity_from_registry(self):
        registered_rules()  # make sure the rule modules are imported
        assert diagnostic("Q001", "m").severity is Severity.ERROR
        assert diagnostic("V002", "m").severity is Severity.WARNING
        assert diagnostic("Q003", "m").severity is Severity.INFO

    def test_diagnostic_helper_rejects_unknown_code(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            diagnostic("Z999", "m")

    def test_explicit_severity_overrides_registry(self):
        escalated = diagnostic("V003", "m", severity=Severity.ERROR)
        assert escalated.severity is Severity.ERROR


class TestWorstSeverity:
    def test_empty_sequence(self):
        assert worst_severity([]) is None

    def test_picks_the_maximum(self):
        findings = [d("Q005", Severity.INFO, "i"), d("Q004", Severity.WARNING, "w")]
        assert worst_severity(findings) is Severity.WARNING
