"""Integration tests: the analysis knob on the engine and the service."""

import pytest

from repro import CitationEngine
from repro.errors import StaticAnalysisError
from repro.observability import RingBufferSink, Tracer, use_tracer
from repro.query.parser import parse_query
from repro.service.service import CitationService
from repro.workloads import gtopdb

REDUNDANT = "Q(FID, FName) :- Family(FID, FName, Desc), Family(FID, FName2, Desc2)"
RENAMED = "Q(I, N) :- Family(I, N, D), Family(I, N2, D2)"
UNSAT = 'Q(FName) :- Family(FID, FName, Desc), Desc = "a", Desc = "b"'


def engine_with(paper_db, paper_views, **kwargs):
    return CitationEngine(paper_db, paper_views, **kwargs)


class TestEngineAnalyze:
    def test_analyze_minimizes_to_the_core(self, paper_engine):
        analysis = paper_engine.analyze(parse_query(REDUNDANT))
        assert analysis.minimized
        assert len(analysis.core.body) == 1
        assert "Q003" in [d.code for d in analysis.diagnostics]

    def test_analyze_caches_by_query(self, paper_engine):
        query = parse_query(REDUNDANT)
        first = paper_engine.analyze(query)
        second = paper_engine.analyze(query)
        assert first is second
        stats = paper_engine.analysis_stats()
        assert stats["cache_hits"] >= 1
        assert stats["analyzed"] >= 1

    def test_analysis_off_returns_the_query_unchanged(self, paper_db, paper_views):
        engine = engine_with(paper_db, paper_views, analysis="off")
        analysis = engine.analyze(parse_query(REDUNDANT))
        assert analysis.core == analysis.query
        assert analysis.diagnostics == ()

    def test_analysis_stats_reports_the_mode(self, paper_db, paper_views):
        engine = engine_with(paper_db, paper_views, analysis="strict")
        assert engine.analysis_stats()["mode"] == "strict"


class TestCompilePlan:
    def test_plan_carries_core_and_diagnostics(self, paper_engine):
        plan = paper_engine.compile_plan(parse_query(REDUNDANT))
        assert plan.core is not None
        assert len(plan.core.body) == 1
        assert plan.query == parse_query(REDUNDANT)  # original kept for reporting
        assert any(d.code == "Q003" for d in plan.diagnostics)

    def test_redundant_variant_executes_like_the_original(self, paper_engine):
        minimal = paper_engine.cite("Q(FID, FName) :- Family(FID, FName, Desc)")
        redundant = paper_engine.cite(REDUNDANT)
        assert set(redundant.result.rows) == set(minimal.result.rows)
        assert redundant.citation.records == minimal.citation.records

    def test_strict_mode_raises_on_error_diagnostics(self, paper_db, paper_views):
        engine = engine_with(paper_db, paper_views, analysis="strict")
        with pytest.raises(StaticAnalysisError) as excinfo:
            engine.compile_plan(parse_query(UNSAT))
        assert any(d.code == "Q001" for d in excinfo.value.diagnostics)

    def test_warn_mode_reports_errors_without_raising(self, paper_engine):
        # analyze() itself never raises in warn mode; downstream rewriting
        # still rejects the unsatisfiable query (with a late QueryError) —
        # strict mode exists to turn that into an early, structured failure.
        analysis = paper_engine.analyze(parse_query(UNSAT))
        assert any(d.code == "Q001" for d in analysis.diagnostics)
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            paper_engine.compile_plan(parse_query(UNSAT))

    def test_off_mode_compiles_as_submitted(self, paper_db, paper_views):
        engine = engine_with(paper_db, paper_views, analysis="off")
        plan = engine.compile_plan(parse_query(REDUNDANT))
        assert plan.diagnostics == ()
        assert plan.core == parse_query(REDUNDANT)

    def test_diagnostics_become_trace_annotations(self, paper_db, paper_views):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        engine = engine_with(paper_db, paper_views)
        with use_tracer(tracer):
            engine.compile_plan(parse_query(REDUNDANT))
        root = sink.last()
        assert root is not None

        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)

        annotations = [s for s in walk(root) if s.name == "analysis.diagnostic"]
        assert any(a.attributes.get("code") == "Q003" for a in annotations)


class TestServiceIntegration:
    def test_redundant_variants_share_one_plan_cache_entry(self, paper_engine):
        with CitationService(paper_engine) as svc:
            first, first_hit = svc.plan_for(RENAMED)
            second, second_hit = svc.plan_for(REDUNDANT)
        assert not first_hit
        assert second_hit  # the minimized cores are isomorphic
        assert first is second

    def test_startup_lint_report_is_recorded(self, paper_engine):
        with CitationService(paper_engine) as svc:
            report = svc.startup_lint_report
            stats = svc.stats()
        assert report is not None
        assert stats["engine"]["analysis"] == "warn"
        assert stats["startup_lint"]["summary"] == report.counts()

    def test_startup_lint_can_be_disabled(self, paper_engine):
        with CitationService(paper_engine, startup_lint=False) as svc:
            assert svc.startup_lint_report is None
            assert "startup_lint" not in svc.stats()

    def test_strict_engine_with_duplicate_views_fails_startup(self, paper_db):
        from repro.core.citation_view import CitationView

        duplicates = [
            CitationView(parse_query("A(FID, FName, D) :- Family(FID, FName, D)")),
            CitationView(parse_query("B(FID, FName, D) :- Family(FID, FName, D)")),
        ]
        engine = CitationEngine(paper_db, duplicates, analysis="strict")
        with pytest.raises(StaticAnalysisError) as excinfo:
            CitationService(engine)
        assert any(d.code == "V001" for d in excinfo.value.diagnostics)

    def test_warn_engine_with_duplicate_views_starts_up(self, paper_db):
        from repro.core.citation_view import CitationView

        duplicates = [
            CitationView(parse_query("A(FID, FName, D) :- Family(FID, FName, D)")),
            CitationView(parse_query("B(FID, FName, D) :- Family(FID, FName, D)")),
        ]
        engine = CitationEngine(paper_db, duplicates)
        with CitationService(engine) as svc:
            assert svc.startup_lint_report.has_errors

    def test_analysis_gauges_in_metrics(self, paper_engine):
        with CitationService(paper_engine) as svc:
            svc.plan_for(REDUNDANT)
            snapshot = svc.metrics.stats()
        assert snapshot["analysis"]["analyzed"] >= 1
        assert snapshot["analysis"]["minimized"] >= 1
