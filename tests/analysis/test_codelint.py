"""The concurrency code lint (C001–C004) and the repo-wide gate.

Rule-by-rule fixtures exercise the AST walk on small synthetic classes; the
final test runs the lint over ``src/repro`` itself — the same gate CI
enforces — so any shared-state regression in the package fails the suite
before it fails CI.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.codelint import lint_paths, lint_source
from repro.concurrency import declared_shared_state, shared_state

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), "fixture.py")


def codes(report):
    return sorted(diagnostic.code for diagnostic in report)


# ---------------------------------------------------------------------------
# The runtime half of the contract
# ---------------------------------------------------------------------------
class TestSharedStateDecorator:
    def test_registry_accumulates_across_applications(self):
        @shared_state("_b", lock="_other_lock")
        @shared_state("_a")
        class Thing:
            pass

        assert declared_shared_state(Thing) == {"_a": "_lock", "_b": "_other_lock"}

    def test_rejects_empty_declarations(self):
        import pytest

        with pytest.raises(ValueError):
            shared_state()
        with pytest.raises(TypeError):
            shared_state("")


# ---------------------------------------------------------------------------
# C001: registered field mutated outside its lock
# ---------------------------------------------------------------------------
class TestC001:
    def test_unlocked_mutation_flagged(self):
        report = lint(
            """
            @shared_state("_counts", lock="_lock")
            class Metrics:
                def bump(self, key):
                    self._counts[key] = 1
            """
        )
        assert codes(report) == ["C001"]
        assert "with self._lock" in report.errors[0].message

    def test_locked_mutation_clean(self):
        report = lint(
            """
            @shared_state("_counts", lock="_lock")
            class Metrics:
                def bump(self, key):
                    with self._lock:
                        self._counts[key] = 1
            """
        )
        assert not list(report)

    def test_wrong_lock_flagged(self):
        report = lint(
            """
            @shared_state("_counts", lock="_lock")
            class Metrics:
                def bump(self, key):
                    with self._other_lock:
                        self._counts[key] = 1
            """
        )
        assert codes(report) == ["C001"]

    def test_mutator_method_calls_count_as_mutations(self):
        report = lint(
            """
            @shared_state("_items", lock="_lock")
            class Box:
                def a(self):
                    self._items.append(1)
                def b(self):
                    self._items.clear()
                def c(self):
                    self._items.setdefault("k", []).pop()
            """
        )
        assert codes(report) == ["C001", "C001", "C001"]

    def test_del_and_augassign_flagged(self):
        report = lint(
            """
            @shared_state("_items", lock="_lock")
            class Box:
                def a(self):
                    del self._items["k"]
                def b(self):
                    self._items += [1]
            """
        )
        assert codes(report) == ["C001", "C001"]

    def test_init_and_locked_suffix_exempt(self):
        report = lint(
            """
            @shared_state("_items", lock="_lock")
            class Box:
                def __init__(self):
                    self._items = []
                def _drain_locked(self):
                    self._items.clear()
                def reset(self):
                    with self._lock:
                        self._drain_locked()
            """
        )
        assert not list(report)

    def test_unregistered_class_not_checked(self):
        report = lint(
            """
            class Plain:
                def bump(self):
                    self._counts = {}
            """
        )
        assert not list(report)


# ---------------------------------------------------------------------------
# C002: inconsistent lock acquisition order
# ---------------------------------------------------------------------------
class TestC002:
    def test_inverted_order_flagged_once(self):
        report = lint(
            """
            class Engine:
                def a(self):
                    with self._lock:
                        with self._cache_lock:
                            pass
                def b(self):
                    with self._cache_lock:
                        with self._lock:
                            pass
            """
        )
        assert codes(report) == ["C002"]

    def test_consistent_order_clean(self):
        report = lint(
            """
            class Engine:
                def a(self):
                    with self._lock:
                        with self._cache_lock:
                            pass
                def b(self):
                    with self._lock:
                        with self._cache_lock:
                            pass
            """
        )
        assert not list(report)

    def test_non_lock_contexts_ignored(self):
        report = lint(
            """
            class Engine:
                def a(self):
                    with self._lock:
                        with self.tracer.span("x"):
                            pass
                def b(self):
                    with self.tracer.span("x"):
                        with self._lock:
                            pass
            """
        )
        assert not list(report)


# ---------------------------------------------------------------------------
# C003: pool-reachable methods touching unregistered state
# ---------------------------------------------------------------------------
class TestC003:
    def test_direct_submit_target_flagged(self):
        report = lint(
            """
            class Service:
                def run(self, pool):
                    pool.submit(self._worker, 1)
                def _worker(self, item):
                    self._seen.append(item)
            """
        )
        assert codes(report) == ["C003"]
        assert report.warnings and not report.errors

    def test_transitive_callee_flagged(self):
        report = lint(
            """
            class Service:
                def run(self, pool):
                    pool.submit(self._worker)
                def _worker(self):
                    self._helper()
                def _helper(self):
                    self._state = 1
            """
        )
        assert codes(report) == ["C003"]

    def test_local_function_thread_target_flagged(self):
        report = lint(
            """
            import threading
            class Service:
                def run(self):
                    def worker():
                        self._seen.append(1)
                    threading.Thread(target=worker).start()
            """
        )
        assert codes(report) == ["C003"]

    def test_registered_or_locked_mutations_clean(self):
        report = lint(
            """
            @shared_state("_seen", lock="_lock")
            class Service:
                def run(self, pool):
                    pool.submit(self._worker)
                def _worker(self):
                    with self._lock:
                        self._seen.append(1)
                    with self._state_lock:
                        self._other = 1
            """
        )
        assert not list(report)

    def test_unreachable_mutation_not_flagged(self):
        report = lint(
            """
            class Service:
                def run(self, pool):
                    pool.submit(self._worker)
                def _worker(self):
                    pass
                def configure(self):
                    self._state = 1
            """
        )
        assert not list(report)


# ---------------------------------------------------------------------------
# C004: suppressions need a justification
# ---------------------------------------------------------------------------
class TestC004:
    def test_justified_suppression_silences(self):
        report = lint(
            """
            @shared_state("_counts", lock="_lock")
            class Metrics:
                def bump(self):
                    self._counts["x"] = 1  # codelint: ignore[C001] -- startup, single-threaded
            """
        )
        assert not list(report)

    def test_unjustified_suppression_is_an_error_and_does_not_suppress(self):
        report = lint(
            """
            @shared_state("_counts", lock="_lock")
            class Metrics:
                def bump(self):
                    self._counts["x"] = 1  # codelint: ignore[C001]
            """
        )
        assert codes(report) == ["C001", "C004"]

    def test_suppression_only_covers_named_codes(self):
        report = lint(
            """
            @shared_state("_counts", lock="_lock")
            class Metrics:
                def bump(self):
                    self._counts["x"] = 1  # codelint: ignore[C003] -- wrong code
            """
        )
        assert codes(report) == ["C001"]

    def test_syntax_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", "broken.py")
        assert report.has_errors


# ---------------------------------------------------------------------------
# The repo-wide gate CI enforces
# ---------------------------------------------------------------------------
class TestRepoGate:
    def test_src_repro_lints_clean(self):
        report = lint_paths([SRC_ROOT])
        assert not report.has_errors, report.to_text()
        assert not report.warnings, report.to_text()

    def test_decorated_classes_really_registered(self):
        from repro.core.engine import CitationEngine
        from repro.query.evaluator import QueryEvaluator
        from repro.query.stats import EvaluationMetrics
        from repro.service.metrics import ServiceMetrics
        from repro.service.plan_cache import GenerationalLRU

        assert declared_shared_state(CitationEngine) == {
            "_analysis_cache": "_analysis_lock",
            "_analysis_stats": "_analysis_lock",
        }
        assert declared_shared_state(QueryEvaluator) == {
            "_programs": "_cache_lock",
            "_reduced": "_cache_lock",
            "_preludes": "_cache_lock",
            "_shard_parts": "_cache_lock",
            "_shard_pool": "_pool_lock",
        }
        assert set(declared_shared_state(ServiceMetrics)) == {
            "_counters", "_histograms", "_gauge_sources",
        }
        assert set(declared_shared_state(GenerationalLRU)) == {"_entries", "_info"}
        assert "_by_query" in declared_shared_state(EvaluationMetrics)
