"""Tests for the synthetic GtoPdb workload."""

from repro import CitationEngine
from repro.query.evaluator import evaluate
from repro.workloads import gtopdb


class TestPaperInstance:
    def test_matches_the_paper_section_2_data(self, paper_db):
        family = paper_db.relation("Family")
        assert (11, "Calcitonin", "C1") in family
        assert (12, "Calcitonin", "C2") in family
        intro = paper_db.relation("FamilyIntro")
        assert (11, "1st") in intro
        assert (12, "2nd") in intro

    def test_constraints_hold(self, paper_db):
        assert paper_db.validate() == []

    def test_two_families_share_the_calcitonin_name(self, paper_db):
        names = [row[1] for row in paper_db.relation("Family")]
        assert names.count("Calcitonin") == 2


class TestGenerator:
    def test_sizes_follow_parameters(self):
        db = gtopdb.generate(families=25, targets_per_family=2, ligands=40)
        assert db.sizes()["Family"] == 25
        assert db.sizes()["Target"] == 50
        assert db.sizes()["Ligand"] == 40
        assert db.sizes()["FamilyIntro"] == 25

    def test_reproducible_with_seed(self):
        assert gtopdb.generate(families=10, seed=42) == gtopdb.generate(families=10, seed=42)

    def test_different_seed_changes_content(self):
        assert gtopdb.generate(families=10, seed=1) != gtopdb.generate(families=10, seed=2)

    def test_referential_integrity(self):
        db = gtopdb.generate(families=15, targets_per_family=3, ligands=20)
        assert db.validate() == []

    def test_duplicate_names_present(self):
        db = gtopdb.generate(families=60, duplicate_name_fraction=0.3, seed=9)
        names = [row[1] for row in db.relation("Family")]
        assert len(set(names)) < len(names)

    def test_no_duplicates_when_fraction_zero(self):
        db = gtopdb.generate(families=30, duplicate_name_fraction=0.0)
        names = [row[1] for row in db.relation("Family")]
        assert len(set(names)) == len(names)

    def test_intro_fraction(self):
        db = gtopdb.generate(families=40, intro_fraction=0.5, seed=2)
        assert 5 <= db.sizes()["FamilyIntro"] < 40


class TestCitationViews:
    def test_three_paper_views(self):
        views = gtopdb.citation_views()
        assert [v.name for v in views] == ["V1", "V2", "V3"]
        assert views[0].is_parameterized
        assert not views[1].is_parameterized

    def test_extended_views(self):
        views = gtopdb.citation_views(extended=True)
        assert [v.name for v in views] == ["V1", "V2", "V3", "V4", "V5", "V6"]

    def test_views_are_usable_by_an_engine_on_generated_data(self, small_gtopdb):
        engine = CitationEngine(small_gtopdb, gtopdb.citation_views())
        result = engine.cite(gtopdb.paper_query(), mode="economical")
        assert len(result) > 0
        assert result.citation.record_count() >= 1

    def test_extended_views_cover_target_queries(self, small_gtopdb):
        engine = CitationEngine(small_gtopdb, gtopdb.citation_views(extended=True))
        result = engine.cite(
            "Q(TName, FName) :- Target(TID, FID, TName, Type), Family(FID, FName, Desc)",
            mode="economical",
        )
        assert len(result) > 0

    def test_example_queries_evaluate(self, small_gtopdb):
        for query in gtopdb.example_queries():
            evaluate(query, small_gtopdb)
