"""Tests for the Reactome, DrugBank, eagle-i and synthetic query workloads."""

from repro import CitationEngine
from repro.query.evaluator import evaluate
from repro.rdf.citation_rdf import RDFCitationEngine
from repro.workloads import drugbank, eagle_i, reactome
from repro.workloads.query_workload import (
    WorkloadGenerator,
    chain_database,
    chain_query,
    chain_schema,
    chain_views,
    star_database,
    star_query,
    star_views,
)


class TestReactome:
    def test_generator_sizes(self, small_reactome):
        sizes = small_reactome.sizes()
        assert sizes["Pathway"] == 8
        assert sizes["Reaction"] == 24
        assert sizes["Curator"] == 16

    def test_referential_integrity(self, small_reactome):
        assert small_reactome.validate() == []

    def test_citation_views_cover_example_queries(self, small_reactome):
        engine = CitationEngine(small_reactome, reactome.citation_views())
        for query in reactome.example_queries():
            result = engine.cite(query, mode="economical")
            assert result.citation.record_count() >= 1

    def test_per_pathway_citation_contains_curators(self, small_reactome):
        views = reactome.citation_views()
        record = views[0].citation_for(small_reactome, {"PWID": 1})
        assert "contributors" in record
        assert record["version"] == 84


class TestDrugBank:
    def test_generator_sizes(self, small_drugbank):
        sizes = small_drugbank.sizes()
        assert sizes["Drug"] == 15
        assert sizes["Protein"] == 10
        assert sizes["DrugInteraction"] == 15
        assert sizes["ReleaseInfo"] == 1

    def test_referential_integrity(self, small_drugbank):
        assert small_drugbank.validate() == []

    def test_citation_views_cover_example_queries(self, small_drugbank):
        engine = CitationEngine(small_drugbank, drugbank.citation_views())
        for query in drugbank.example_queries():
            result = engine.cite(query, mode="economical")
            assert result.citation.record_count() >= 1

    def test_per_drug_citation_contains_release(self, small_drugbank):
        views = drugbank.citation_views()
        record = views[0].citation_for(small_drugbank, {"DrugID": "DB00001"})
        assert record["version"] == "5.1.12"
        assert record["title"] == "Drug-1"


class TestEagleI:
    def test_generator_counts(self):
        store, ontology, leaves = eagle_i.generate(resources=30)
        assert len(store.subjects("rdf:type")) >= 30
        assert len(leaves) == 7

    def test_extra_depth_extends_hierarchy(self):
        _store, ontology, leaves = eagle_i.generate(resources=5, extra_depth=2)
        assert all(leaf.endswith("_L2") for leaf in leaves)
        assert all(ontology.depth(leaf) >= 3 for leaf in leaves)

    def test_reproducible(self):
        store_a, _o, _l = eagle_i.generate(resources=10, seed=4)
        store_b, _o2, _l2 = eagle_i.generate(resources=10, seed=4)
        assert {tuple(t) for t in store_a} == {tuple(t) for t in store_b}

    def test_citation_engine_over_dataset(self):
        store, ontology, leaves = eagle_i.generate(resources=25)
        engine = RDFCitationEngine(store, ontology, eagle_i.class_citation_views(leaves))
        record = engine.cite_resource("ei:resource/7")
        assert record["identifier"].startswith("EI-")


class TestSyntheticQueryWorkloads:
    def test_chain_database_and_query(self):
        db = chain_database(3, rows_per_relation=50, seed=1)
        result = evaluate(chain_query(3), db)
        assert result.schema.arity == 2

    def test_chain_views_cover_chain(self):
        views = chain_views(4, window=2)
        assert len(views) == 3
        assert all(view.query.predicates() <= {"R1", "R2", "R3", "R4"} for view in views)

    def test_parameterized_chain_views(self):
        views = chain_views(3, window=1, parameterized=True)
        assert all(view.is_parameterized for view in views)

    def test_star_database_and_query(self):
        db = star_database(3, rows_per_relation=40, seed=2)
        result = evaluate(star_query(3), db)
        assert result.schema.arity == 4

    def test_star_views(self):
        views = star_views(4, parameterized_fraction=0.5)
        assert len(views) == 4
        assert sum(1 for view in views if view.is_parameterized) == 2

    def test_workload_generator_produces_valid_queries(self):
        generator = WorkloadGenerator(chain_schema(4), seed=3)
        workload = generator.workload(10, atoms=2)
        assert len(workload) == 10
        db = chain_database(4, rows_per_relation=30)
        for query in workload:
            evaluate(query, db)  # must not raise

    def test_workload_generator_reproducible(self):
        a = WorkloadGenerator(chain_schema(3), seed=5).workload(5)
        b = WorkloadGenerator(chain_schema(3), seed=5).workload(5)
        assert a == b
