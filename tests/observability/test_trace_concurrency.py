"""Thread-safety of metrics and tracing under concurrent batch serving.

Satellite of the observability PR: concurrent ``cite_many`` /
``submit_batch`` calls must neither lose metric increments nor bleed spans
between request traces (the service propagates the tracing context into its
worker pool with ``contextvars.copy_context``).
"""

import threading

import pytest

from repro import CitationEngine, CitationService
from repro.observability import RingBufferSink, SlowQueryLog, Tracer
from repro.workloads import gtopdb


def _queries(start, count):
    """Structurally distinct conjunctive queries (distinct constants)."""
    return [
        f"Q(FName) :- Family({fid}, FName, Desc), FamilyIntro({fid}, Text)"
        for fid in range(start, start + count)
    ]


@pytest.fixture
def traced_service():
    engine = CitationEngine(gtopdb.paper_instance(), gtopdb.citation_views())
    tracer = Tracer(
        sinks=[RingBufferSink(capacity=16)],
        slow_log=SlowQueryLog(capacity=256),
    )
    service = CitationService(
        engine, max_workers=8, cache_results=False, tracer=tracer
    )
    yield service
    service.close()


class TestConcurrentMetrics:
    def test_no_lost_counters_across_concurrent_batches(self, traced_service):
        batches = [_queries(100 + 50 * index, 16) for index in range(4)]
        results = [None] * len(batches)

        def run(index):
            results[index] = traced_service.cite_many(batches[index])

        threads = [
            threading.Thread(target=run, args=(index,))
            for index in range(len(batches))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = sum(len(batch) for batch in batches)
        for responses in results:
            assert responses is not None
            assert all(response.ok for response in responses)
        metrics = traced_service.metrics
        assert metrics.counter("requests") == total
        assert metrics.counter("batch_requests") == len(batches)
        assert metrics.counter("executions") == total  # all shapes distinct
        assert metrics.counter("errors") == 0

    def test_latency_histogram_counts_every_request(self, traced_service):
        queries = _queries(300, 24)
        traced_service.cite_many(queries)
        stats = traced_service.stats()
        assert stats["latency_ms"]["request"]["count"] == len(queries)


class TestTraceIsolation:
    def test_every_request_gets_its_own_span_tree(self, traced_service):
        queries = _queries(400, 24)
        traced_service.cite_many(queries)

        sink = traced_service.tracer().sinks[0]
        traces = sink.traces()
        assert len(traces) == 1  # one batch => one root trace
        batch = traces[0]
        assert batch.name == "service.batch"
        assert batch.attributes["size"] == len(queries)

        requests = batch.find_all("service.request")
        assert len(requests) == len(queries)
        assert {span.attributes["query"] for span in requests} == set(queries)

        request_ids = [span.attributes["request_id"] for span in requests]
        assert len(set(request_ids)) == len(queries)

        # No span appears in two trees and no request bleeds into another:
        # each request span owns exactly one plan and one execute child.
        span_ids = [span.span_id for span in batch.walk()]
        assert len(span_ids) == len(set(span_ids))
        for span in requests:
            child_names = [child.name for child in span.children]
            assert child_names.count("service.plan") == 1
            assert child_names.count("service.execute") == 1
            execute = span.find("service.execute")
            evaluations = [
                s for s in execute.walk() if s.name == "query.evaluate"
            ]
            assert evaluations, "request trace lost its evaluation spans"

    def test_slow_log_retains_each_request_once(self, traced_service):
        queries = _queries(600, 16)
        traced_service.cite_many(queries)
        slow_log = traced_service.tracer().slow_log
        entries = slow_log.snapshot()
        assert len(entries) == len(queries)
        assert len({entry["request_id"] for entry in entries}) == len(queries)
        durations = [entry["duration_ms"] for entry in entries]
        assert durations == sorted(durations, reverse=True)

    def test_disabled_tracer_records_nothing_under_concurrency(self):
        engine = CitationEngine(gtopdb.paper_instance(), gtopdb.citation_views())
        service = CitationService(engine, max_workers=8)
        try:
            responses = service.cite_many(_queries(700, 12))
            assert all(response.ok for response in responses)
            assert service.tracer().enabled is False
            assert "tracing" not in service.stats()
        finally:
            service.close()


class TestPerQueryAttribution:
    def test_estimate_vs_actual_accumulates_per_fingerprint(self, traced_service):
        queries = _queries(800, 6)
        traced_service.cite_many(queries * 2)  # duplicates dedup within batch
        profiles = traced_service.engine.evaluation_metrics.query_profiles()
        assert len(profiles) >= len(queries)
        for profile in profiles.values():
            assert profile["evaluations"] >= 1
            for kind_stats in profile["actual_ms"].values():
                assert kind_stats["count"] >= 1
                assert kind_stats["mean_ms"] >= 0.0
