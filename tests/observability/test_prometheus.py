"""Histogram snapshots and Prometheus text exposition validity."""

import json
import re

import pytest

from repro.observability.prometheus import (
    PrometheusRenderer,
    escape_label_value,
    flatten_numeric,
    sanitize_name,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics

#: One exposition line: comment, blank, or ``name{labels} value``.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
)


def _assert_valid_exposition(text: str) -> list[str]:
    """Every line must be a comment or a well-formed sample; returns samples."""
    samples = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE.match(line), f"malformed exposition line: {line!r}"
        samples.append(line)
    return samples


class TestLatencyHistogramSnapshot:
    def test_buckets_are_cumulative_and_monotone(self):
        histogram = LatencyHistogram(bounds_ms=(1.0, 10.0, 100.0))
        for seconds in (0.0005, 0.005, 0.005, 0.05, 5.0):
            histogram.observe(seconds)
        buckets = histogram.cumulative_buckets()
        assert buckets == [(1.0, 1), (10.0, 3), (100.0, 4)]
        counts = [count for _bound, count in buckets]
        assert counts == sorted(counts)
        assert histogram.count == 5  # +Inf bucket, emitted by the renderer

    def test_snapshot_includes_buckets_and_total(self):
        histogram = LatencyHistogram(bounds_ms=(1.0, 10.0))
        histogram.observe(0.0005)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == [
            {"le_ms": 1.0, "count": 1},
            {"le_ms": 10.0, "count": 1},
            {"le_ms": "+Inf", "count": 1},
        ]
        assert snapshot["total_ms"] == pytest.approx(0.5)

    def test_empty_histogram_serializes_without_infinity(self):
        snapshot = LatencyHistogram().snapshot()
        text = json.dumps(snapshot)
        assert "Infinity" not in text
        assert snapshot["min_ms"] == 0.0
        json.loads(text)  # round-trips as strict JSON

    def test_observed_min_ms_tracks_real_minimum(self):
        histogram = LatencyHistogram()
        assert histogram.observed_min_ms() == 0.0
        histogram.observe(0.002)
        histogram.observe(0.001)
        assert histogram.observed_min_ms() == pytest.approx(1.0)


class TestRenderer:
    def test_counter_gauge_histogram_shapes(self):
        renderer = PrometheusRenderer()
        renderer.counter("x_total", 3, help_text="Three.")
        renderer.gauge("g", 0.5)
        renderer.histogram(
            "h_seconds", [(0.1, 1), (1.0, 2)], total=0.7, count=3,
            labels={"phase": "request"},
        )
        text = renderer.render()
        samples = _assert_valid_exposition(text)
        assert "# TYPE x_total counter" in text
        assert "# HELP x_total Three." in text
        assert "x_total 3" in samples
        assert 'h_seconds_bucket{phase="request",le="+Inf"} 3' in samples
        assert 'h_seconds_sum{phase="request"} 0.7' in samples
        assert 'h_seconds_count{phase="request"} 3' in samples

    def test_family_header_emitted_once_for_many_label_sets(self):
        renderer = PrometheusRenderer()
        renderer.histogram("h", [(1.0, 1)], total=1.0, count=1, labels={"phase": "a"})
        renderer.histogram("h", [(1.0, 2)], total=2.0, count=2, labels={"phase": "b"})
        assert renderer.render().count("# TYPE h histogram") == 1

    def test_kind_conflict_raises(self):
        renderer = PrometheusRenderer()
        renderer.counter("m", 1)
        with pytest.raises(ValueError):
            renderer.gauge("m", 1)

    def test_name_sanitization_and_label_escaping(self):
        assert sanitize_name("a.b-c") == "a_b_c"
        assert sanitize_name("1x") == "_1x"
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'

    def test_flatten_numeric_keeps_numbers_drops_the_rest(self):
        flat = dict(
            flatten_numeric(
                "ns",
                {
                    "hits": 3,
                    "rate": 0.5,
                    "enabled": True,
                    "name": "ignored",
                    "items": [1, 2],
                    "nested": {"depth": 2},
                },
            )
        )
        assert flat == {
            "ns_hits": 3.0,
            "ns_rate": 0.5,
            "ns_enabled": 1.0,
            "ns_nested_depth": 2.0,
        }


class TestServiceMetricsExposition:
    def _metrics(self):
        metrics = ServiceMetrics()
        metrics.increment("requests", 4)
        metrics.increment("result_cache_hits")
        metrics.increment_backend("relational", "executions", 2)
        metrics.observe("request", 0.002)
        metrics.observe("request", 0.2)
        metrics.observe("execute", 0.001)
        metrics.register_gauge_source("evaluation", lambda: {"strategy": {"picks": 7}})
        return metrics

    def test_exposition_is_well_formed(self):
        text = self._metrics().to_prometheus()
        samples = _assert_valid_exposition(text)
        assert "repro_requests_total 4" in samples
        assert 'repro_backend_events_total{backend="relational",event="executions"} 2' in samples
        assert "repro_evaluation_strategy_picks 7" in samples

    def test_histograms_expose_bucket_sum_count_per_phase(self):
        text = self._metrics().to_prometheus()
        assert 'repro_latency_seconds_bucket{phase="request",le="+Inf"} 2' in text
        assert 'repro_latency_seconds_count{phase="request"} 2' in text
        assert 'repro_latency_seconds_count{phase="execute"} 1' in text
        # Bounds are converted from internal milliseconds to seconds.
        assert 'repro_latency_seconds_bucket{phase="execute",le="5e-05"} 0' in text
        assert text.count("# TYPE repro_latency_seconds histogram") == 1

    def test_inf_bucket_matches_count(self):
        text = self._metrics().to_prometheus()
        inf = re.findall(r'_bucket\{phase="request",le="\+Inf"\} (\d+)', text)
        count = re.findall(r'_count\{phase="request"\} (\d+)', text)
        assert inf == count == ["2"]

    def test_extra_payloads_become_gauges(self):
        metrics = ServiceMetrics()
        text = metrics.to_prometheus(extra={"plan_cache": {"hits": 5, "name": "x"}})
        assert "repro_plan_cache_hits 5" in text
        assert "repro_plan_cache_name" not in text
