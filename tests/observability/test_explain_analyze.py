"""EXPLAIN ANALYZE through ``CitationService.explain`` on the paper example."""

import json

import pytest

from repro import CitationService
from repro.observability import RingBufferSink, SlowQueryLog, Tracer

PAPER_QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"


@pytest.fixture
def service(paper_engine):
    service = CitationService(paper_engine)
    yield service
    service.close()


@pytest.fixture
def traced_service(paper_engine):
    tracer = Tracer(sinks=[RingBufferSink()], slow_log=SlowQueryLog(capacity=8))
    service = CitationService(paper_engine, tracer=tracer)
    yield service
    service.close()


class TestExplainReport:
    def test_explain_serves_and_captures_a_trace(self, service):
        report = service.explain(PAPER_QUERY)
        assert report.ok
        assert report.response.row_count == 2
        assert report.trace is not None
        assert report.trace.name == "service.request"
        assert report.trace.attributes["backend"] == "relational"

    def test_trace_is_a_full_plan_tree(self, service):
        report = service.explain(PAPER_QUERY)
        trace = report.trace
        assert trace.find("service.plan") is not None
        assert trace.find("engine.execute_plan") is not None
        assert trace.find("engine.assemble_citations") is not None
        evaluations = [
            span
            for span in trace.find_all("query.evaluate")
            if span.attributes["query"] == "Q"  # skip view materialization
        ]
        assert evaluations
        for evaluation in evaluations:
            assert evaluation.attributes["executor"] in ("program", "reduced")
            assert evaluation.attributes["reason"]
        assert any("cost_estimate" in span.attributes for span in evaluations)
        steps = trace.find_all("join.step")
        assert steps, "per-step cardinality records missing"
        for step in steps:
            assert step.attributes["relation_rows"] >= step.attributes["rows_in"] >= 0
            assert 0.0 <= step.attributes["survival"] <= 1.0

    def test_second_explain_shows_warm_plan_cache(self, service):
        first = service.explain(PAPER_QUERY)
        second = service.explain(PAPER_QUERY)
        assert first.trace.find("service.plan").attributes["plan_cache"] == "miss"
        assert second.trace.find("service.plan").attributes["plan_cache"] == "hit"

    def test_explain_bypasses_the_result_cache(self, service):
        service.cite(PAPER_QUERY)  # populate the result cache
        report = service.explain(PAPER_QUERY)
        assert report.response.cached is False
        assert report.trace.attributes["result_cache"] == "bypass"
        assert report.trace.find("service.execute") is not None

    def test_explain_does_not_pollute_the_result_cache_path(self, service):
        service.explain(PAPER_QUERY)
        service.cite(PAPER_QUERY)
        response = service.submit(service._cq_request(PAPER_QUERY, None))
        assert response.cached is True  # ordinary requests still hit the cache

    def test_to_text_renders_the_annotated_plan(self, service):
        service.explain(PAPER_QUERY)  # warm the plan cache
        text = service.explain(PAPER_QUERY).to_text()
        assert f"query: {PAPER_QUERY}" in text
        assert "service.request" in text
        assert "plan_cache=hit" in text
        assert "join.step[0]" in text
        assert "survival" in text
        assert "est " in text  # estimated vs actual cardinalities

    def test_to_dict_is_json_friendly(self, service):
        payload = json.loads(json.dumps(service.explain(PAPER_QUERY).to_dict()))
        assert payload["response"]["rows"] == 2
        assert payload["trace"]["name"] == "service.request"

    def test_explain_error_rides_in_the_report(self, service):
        report = service.explain("Q(X) :- NoSuchRelation(X)")
        assert not report.ok
        assert report.trace is not None
        assert "error" in report.trace.attributes
        assert "error:" in report.to_text()

    def test_explain_leaves_the_service_tracer_alone(self, traced_service):
        sink = traced_service.tracer().sinks[0]
        traced_service.explain(PAPER_QUERY)
        # The explained trace went to the explain-local capture sink, not to
        # the service's own sink ...
        assert sink.recorded == 0
        # ... while ordinary requests still record into the service sink.
        traced_service.cite(PAPER_QUERY)
        assert sink.recorded == 1


class TestServiceStats:
    def test_stats_expose_tracing_and_slow_queries(self, traced_service):
        traced_service.cite(PAPER_QUERY)
        stats = traced_service.stats()
        assert stats["tracing"]["enabled"] is True
        assert stats["tracing"]["slow_log"]["retained"] == 1
        assert stats["slow_queries"][0]["query"] == PAPER_QUERY

    def test_stats_omit_tracing_when_disabled(self, service):
        service.cite(PAPER_QUERY)
        stats = service.stats()
        assert "tracing" not in stats
        assert "slow_queries" not in stats

    def test_to_prometheus_covers_service_and_caches(self, service):
        service.cite(PAPER_QUERY)
        service.cite(PAPER_QUERY)
        text = service.to_prometheus()
        assert "repro_requests_total 2" in text
        assert "repro_result_cache_hits_total 1" in text
        assert 'repro_latency_seconds_bucket{phase="request",le="+Inf"} 2' in text
        assert "repro_plan_cache_size 1" in text
        assert "repro_engine_generation" in text
