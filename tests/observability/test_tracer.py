"""Unit tests for the tracing primitives: spans, sinks, slow log, overrides."""

import contextvars
import io
import json
import threading

import pytest

from repro.observability import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlSink,
    RingBufferSink,
    SlowQueryLog,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpanTree:
    def test_nesting_links_parent_and_child(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", step=1) as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert inner.parent_id == outer.span_id
        assert outer.children == [inner]
        assert inner.attributes["step"] == 1

    def test_context_is_restored_after_exit(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("root"):
            pass
        assert current_span() is None

    def test_durations_are_recorded(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            assert span.duration_ms is None
        assert span.duration_ms is not None and span.duration_ms >= 0.0

    def test_exception_is_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert "boom" in span.attributes["error"]
        assert span.duration_ms is not None

    def test_annotation_children_are_closed_and_attached(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            child = parent.child("join.step", step=0, rows_in=3)
        assert child in parent.children
        assert child.parent_id == parent.span_id
        assert child.attributes == {"step": 0, "rows_in": 3}
        # Annotation children never become the context's current span.
        with tracer.span("other") as other:
            other.child("note")
            assert current_span() is other

    def test_walk_find_and_to_dict(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(list(a.walk())) == 3
        assert a.find("b") is a.children[0]
        assert len(a.find_all("b")) == 2
        payload = json.loads(json.dumps(a.to_dict()))
        assert payload["name"] == "a"
        assert [c["name"] for c in payload["children"]] == ["b", "b"]

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("x"):
                pass
            with tracer.span("y"):
                pass
        ids = [span.span_id for span in root.walk()]
        assert len(ids) == len(set(ids))


class TestNullPath:
    def test_null_tracer_hands_out_the_shared_null_span(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", key="value")
        assert span is NULL_SPAN
        with span as entered:
            assert entered is NULL_SPAN
        assert NULL_SPAN.child("x") is NULL_SPAN
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.find("anything") is None

    def test_null_span_mutators_are_noops(self):
        NULL_SPAN.set_attribute("k", 1)
        NULL_SPAN.set_attributes(a=2)
        assert NULL_SPAN.attributes == {}


class TestDelivery:
    def test_sinks_receive_only_root_spans(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("root"):
            with tracer.span("nested"):
                pass
        assert sink.recorded == 1
        assert sink.last().name == "root"

    def test_boundary_spans_reach_the_slow_log_even_nested(self):
        slow_log = SlowQueryLog(capacity=4)
        tracer = Tracer(slow_log=slow_log)
        with tracer.span("batch"):
            with tracer.span("request", boundary=True):
                pass
            with tracer.span("request", boundary=True):
                pass
        names = [span.name for span in slow_log.entries()]
        assert names == ["request", "request"]

    def test_ring_buffer_evicts_oldest(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=[sink])
        for index in range(3):
            with tracer.span(f"t{index}"):
                pass
        assert sink.recorded == 3
        assert [t.name for t in sink.traces()] == ["t1", "t2"]

    def test_jsonl_sink_writes_parseable_lines(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        tracer = Tracer(sinks=[sink])
        with tracer.span("root", query="Q"):
            with tracer.span("child"):
                pass
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["name"] == "root"
        assert payload["attributes"]["query"] == "Q"
        assert payload["children"][0]["name"] == "child"

    def test_jsonl_sink_stringifies_unserializable_attributes(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        tracer = Tracer(sinks=[sink])
        with tracer.span("root", value={1, 2}):
            pass
        assert json.loads(stream.getvalue())["attributes"]["value"]


class TestSlowQueryLog:
    def _span(self, tracer, name, seconds):
        with tracer.span(name, boundary=True) as span:
            pass
        span.duration_s = seconds  # deterministic synthetic durations
        return span

    def test_keeps_the_n_slowest(self):
        slow_log = SlowQueryLog(capacity=2)
        tracer = Tracer()
        for name, seconds in [("fast", 0.001), ("slow", 0.5), ("medium", 0.1)]:
            span = self._span(tracer, name, seconds)
            slow_log.offer(span)
        assert [span.name for span in slow_log.entries()] == ["slow", "medium"]

    def test_threshold_filters_fast_requests(self):
        slow_log = SlowQueryLog(capacity=8, threshold_ms=50.0)
        tracer = Tracer()
        slow_log.offer(self._span(tracer, "fast", 0.001))
        slow_log.offer(self._span(tracer, "slow", 0.2))
        assert [span.name for span in slow_log.entries()] == ["slow"]

    def test_snapshot_is_json_friendly(self):
        slow_log = SlowQueryLog(capacity=2)
        tracer = Tracer(slow_log=slow_log)
        with tracer.span("service.request", boundary=True, request_id="req-1"):
            pass
        entries = json.loads(json.dumps(slow_log.snapshot()))
        assert entries[0]["request_id"] == "req-1"
        assert entries[0]["duration_ms"] >= 0.0


class TestTracerResolution:
    def test_fallback_then_global(self):
        fallback = Tracer()
        assert get_tracer(fallback) is fallback
        assert get_tracer() is NULL_TRACER  # the default global

    def test_set_tracer_installs_and_restores(self):
        installed = Tracer()
        previous = set_tracer(installed)
        try:
            assert get_tracer() is installed
        finally:
            set_tracer(previous)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_overrides_fallback(self):
        fallback = Tracer()
        override = Tracer()
        with use_tracer(override):
            assert get_tracer(fallback) is override
        assert get_tracer(fallback) is fallback

def test_context_propagates_to_worker_thread():
    """copy_context carries both the override and the open span."""
    override = Tracer()
    results = {}

    def worker():
        results["tracer"] = get_tracer()
        results["span"] = current_span()

    with use_tracer(override):
        with override.span("root") as root:
            context = contextvars.copy_context()
            thread = threading.Thread(target=lambda: context.run(worker))
            thread.start()
            thread.join()
    assert results["tracer"] is override
    assert results["span"] is root
