"""Service worker-pool contracts: batch deadlines, close semantics, sizing.

Three regression suites for the pool bugs fixed alongside sharded evaluation:

* **deadline** — ``submit_batch(..., timeout=T, max_workers=N)`` must return
  within ``T`` plus scheduling slack even when a backend hangs far longer.
  The old ad-hoc ``with ThreadPoolExecutor(...)`` blocks shut down with
  ``wait=True`` on exit, so one straggler used to hold the whole batch
  hostage for its full runtime;
* **close** — :meth:`CitationService.close` detaches the mutation listener,
  so the old lazily recreated pool would serve post-close requests whose
  writes silently no longer counted into ``mutations_observed``.  Closed is
  now terminal: batch entry points raise, :meth:`submit` carries the error;
* **sizing** — the default worker count derives from the CPU count (bounded),
  shared with the evaluator's shard pool via
  :func:`repro.concurrency.default_worker_count`.
"""

import threading
import time

import pytest

from repro.api.backend import BackendCapabilities, CitationBackend
from repro.api.envelope import CitationRequest
from repro.concurrency import MAX_DEFAULT_WORKERS, default_worker_count
from repro.core.citation import Citation
from repro.core.engine import CitationEngine
from repro.errors import CitationError
from repro.service.service import CitationService
from repro.workloads import gtopdb

#: Slack on top of the batch deadline: thread scheduling plus the service's
#: own bookkeeping, nowhere near the straggler's sleep.
DEADLINE_EPSILON = 0.5


def _service():
    database = gtopdb.paper_instance()
    engine = CitationEngine(database, gtopdb.citation_views())
    return CitationService(engine), database


class SlowBackend(CitationBackend):
    """A backend whose execute blocks until released (or a long timeout)."""

    name = "slow"

    def __init__(self, delay: float = 10.0) -> None:
        self.delay = delay
        self.release = threading.Event()
        self.started = threading.Event()
        self.finished = threading.Event()

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="slow",
            supports_plan_cache=False,
            supports_result_cache=False,
        )

    def parse(self, request: CitationRequest):
        return request.query

    def fingerprint(self, parsed, request) -> str:
        return f"slow:{parsed}"

    def compile(self, parsed, request):
        return parsed

    def execute(self, plan, parsed, request):
        self.started.set()
        self.release.wait(self.delay)
        self.finished.set()
        return f"answer:{parsed}"

    def result_token(self, request):
        return 0

    def citation_of(self, result) -> Citation:
        return Citation((), query_text=str(result))

    def row_count(self, result):
        return None


class TestBatchDeadline:
    def _requests(self, count: int) -> list[CitationRequest]:
        # Distinct payloads so within-batch deduplication cannot collapse them.
        return [
            CitationRequest(query=f"q{i}", backend="slow") for i in range(count)
        ]

    def test_submit_batch_returns_within_timeout_with_explicit_workers(self):
        """The regression: an explicit ``max_workers`` used to build the pool
        in a ``with`` block whose exit blocked on the hung straggler."""
        service, _database = _service()
        backend = SlowBackend(delay=10.0)
        service.register_backend(backend)
        try:
            started = time.monotonic()
            responses = service.submit_batch(
                self._requests(2), timeout=0.2, max_workers=2
            )
            elapsed = time.monotonic() - started
            assert elapsed < 0.2 + DEADLINE_EPSILON, (
                f"submit_batch blocked {elapsed:.2f}s past its 0.2s deadline"
            )
            assert len(responses) == 2
            for response in responses:
                assert isinstance(response.error, TimeoutError)
        finally:
            backend.release.set()
            service.close()

    def test_cite_many_honours_the_deadline_with_explicit_workers(self):
        service, _database = _service()
        backend = SlowBackend(delay=10.0)
        service.register_backend(backend)
        queries = [f"q{i}" for i in range(2)]
        # cite_many routes through the relational parser for CQ payloads; use
        # submit_batch's sibling path via explicit backend requests instead.
        requests = self._requests(2)
        try:
            started = time.monotonic()
            service.submit_batch(requests, timeout=0.2, max_workers=3)
            assert time.monotonic() - started < 0.2 + DEADLINE_EPSILON
            assert queries  # silence the unused warning without popping scope
        finally:
            backend.release.set()
            service.close()

    def test_straggler_still_finishes_in_the_background(self):
        """wait=False must not cancel the worker: the documented contract is
        that a timed-out straggler completes and may write through to the
        caches."""
        service, _database = _service()
        backend = SlowBackend(delay=10.0)
        service.register_backend(backend)
        try:
            responses = service.submit_batch(
                self._requests(1), timeout=0.1, max_workers=2
            )
            assert isinstance(responses[0].error, TimeoutError)
            assert backend.started.wait(1.0)
            backend.release.set()
            assert backend.finished.wait(2.0), "straggler was cancelled"
        finally:
            backend.release.set()
            service.close()

    def test_fast_batch_is_unaffected(self):
        service, _database = _service()
        try:
            query = "Q(FName) :- Family(FID, FName, Desc)"
            responses = service.submit_batch(
                [CitationRequest(query=query)], timeout=30.0, max_workers=2
            )
            assert responses[0].ok
        finally:
            service.close()


class TestCloseContract:
    def test_close_is_idempotent(self):
        service, _database = _service()
        service.close()
        service.close()

    def test_post_close_submit_carries_a_clear_error(self):
        service, _database = _service()
        service.close()
        response = service.submit(
            CitationRequest(query="Q(FName) :- Family(FID, FName, Desc)")
        )
        assert isinstance(response.error, CitationError)
        assert "closed" in str(response.error)

    def test_post_close_batches_raise(self):
        service, _database = _service()
        query = "Q(FName) :- Family(FID, FName, Desc)"
        service.close()
        with pytest.raises(CitationError, match="closed"):
            service.cite_many([query])
        with pytest.raises(CitationError, match="closed"):
            service.cite_batch([query])
        with pytest.raises(CitationError, match="closed"):
            service.submit_batch([CitationRequest(query=query)])

    def test_post_close_mutations_are_not_counted(self):
        """The bug this contract pins down: a resurrected post-close pool
        served requests while ``mutations_observed`` silently stopped
        counting.  Closed now refuses to serve, so the metric can never
        drift relative to served traffic."""
        service, database = _service()
        service.cite("Q(FName) :- Family(FID, FName, Desc)")
        before = service.metrics.stats()["counters"].get("mutations_observed", 0)
        database.insert("Family", (91, "PreClose", "PD"))
        after = service.metrics.stats()["counters"].get("mutations_observed", 0)
        assert after == before + 1
        service.close()
        database.insert("Family", (92, "PostClose", "PD"))
        final = service.metrics.stats()["counters"].get("mutations_observed", 0)
        assert final == after  # detached exactly once, no further drift

    def test_context_manager_closes_terminally(self):
        service, _database = _service()
        with service:
            service.cite("Q(FName) :- Family(FID, FName, Desc)")
        with pytest.raises(CitationError, match="closed"):
            service.cite_many(["Q(FName) :- Family(FID, FName, Desc)"])


class TestWorkerSizing:
    def test_default_derives_from_cpu_count(self):
        service, _database = _service()
        try:
            assert service.max_workers == default_worker_count()
            assert 2 <= service.max_workers <= MAX_DEFAULT_WORKERS
        finally:
            service.close()

    def test_explicit_worker_count_is_respected(self):
        database = gtopdb.paper_instance()
        engine = CitationEngine(database, gtopdb.citation_views())
        service = CitationService(engine, max_workers=6)
        try:
            assert service.max_workers == 6
        finally:
            service.close()

    def test_nonpositive_worker_count_rejected(self):
        database = gtopdb.paper_instance()
        engine = CitationEngine(database, gtopdb.citation_views())
        with pytest.raises(CitationError):
            CitationService(engine, max_workers=0)

    def test_stats_expose_workers_and_parallel_knobs(self):
        database = gtopdb.paper_instance()
        engine = CitationEngine(
            database, gtopdb.citation_views(), workers=3, parallel_backend="thread"
        )
        service = CitationService(engine, max_workers=5)
        try:
            snapshot = service.stats()
            assert snapshot["workers"] == 5
            assert snapshot["engine"]["workers"] == 3
            assert snapshot["engine"]["parallel_backend"] == "thread"
            assert "sharding" in snapshot["evaluation"]
        finally:
            service.close()
