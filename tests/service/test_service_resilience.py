"""Tier-1 tests for the service's resilience wiring: deadlines, admission,
retries, stale serving, and error-code stamping.

The heavier fault-injection scenarios (worker kills, storms, conservation
audits) live in ``tests/chaos`` behind ``-m chaos``; these tests pin the
default-path behaviour — everything off unless opted in — and the basic
contract of each opt-in.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import CitationEngine, CitationPolicy, CitationService
from repro.api.envelope import CitationRequest
from repro.errors import DeadlineExceeded, Overloaded
from repro.resilience import RetryPolicy
from repro.resilience.faults import FaultSpec, plan as fault_plan
from repro.workloads import gtopdb

QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
OTHER = "Q2(FID, Text) :- FamilyIntro(FID, Text)"


@pytest.fixture
def db():
    return gtopdb.generate(families=30, targets_per_family=2, ligands=40, seed=5)


@pytest.fixture
def engine(db):
    return CitationEngine(
        db, gtopdb.citation_views(extended=True), policy=CitationPolicy.default()
    )


@pytest.fixture
def service(engine):
    with CitationService(engine) as svc:
        yield svc


class TestRequestDeadline:
    def test_expired_timeout_cancels_with_typed_error(self, service):
        response = service.submit(CitationRequest(query=QUERY, timeout=0.0))
        assert not response.ok
        assert isinstance(response.error, DeadlineExceeded)
        assert response.error_code == "DEADLINE_EXCEEDED"
        assert service.metrics.counter("errors_timeout") == 1
        assert service.metrics.counter("errors") == 1

    def test_generous_timeout_serves_normally(self, service):
        response = service.submit(CitationRequest(query=QUERY, timeout=60.0))
        assert response.ok
        assert response.error_code is None
        assert service.metrics.counter("errors_timeout") == 0

    def test_default_timeout_applies_when_request_has_none(self, engine):
        with CitationService(engine, default_timeout=0.0) as service:
            response = service.submit(CitationRequest(query=QUERY))
            assert isinstance(response.error, DeadlineExceeded)

    def test_request_timeout_overrides_default(self, engine):
        with CitationService(engine, default_timeout=0.0) as service:
            response = service.submit(CitationRequest(query=QUERY, timeout=60.0))
            assert response.ok

    def test_batch_deadline_cancels_workers_cooperatively(self, service):
        responses = service.submit_batch(
            [
                CitationRequest(query=QUERY, metadata={"no_result_cache": True}),
                CitationRequest(query=OTHER, metadata={"no_result_cache": True}),
            ],
            timeout=0.0,
        )
        assert all(not response.ok for response in responses)
        # Workers came home within the cancellation grace with their own
        # typed responses; nothing needed the synthesised pool timeout.
        assert all(
            response.error_code == "DEADLINE_EXCEEDED" for response in responses
        )
        assert service.metrics.counter("timeouts") == 0

    def test_deadline_error_payload_is_machine_readable(self, service):
        response = service.submit(CitationRequest(query=QUERY, timeout=0.0))
        payload = response.to_payload()
        assert payload["ok"] is False
        assert payload["error_code"] == "DEADLINE_EXCEEDED"


class TestErrorCodes:
    def test_parse_errors_are_coded(self, service):
        response = service.submit(CitationRequest(query="completely invalid ::"))
        assert not response.ok
        assert response.error_code == "PARSE_ERROR"
        assert service.metrics.counter("errors_permanent") == 1

    def test_no_rewriting_is_coded(self, service):
        response = service.submit(
            CitationRequest(query="Q(PName) :- Contributor(TID, PName)")
        )
        assert response.error_code == "NO_REWRITING"

    def test_closed_service_is_coded(self, engine):
        service = CitationService(engine)
        service.close()
        response = service.submit(CitationRequest(query=QUERY))
        assert response.error_code == "CITATION_ERROR"


class TestResponseAccounting:
    def test_every_request_yields_one_counted_response(self, service):
        service.submit(CitationRequest(query=QUERY))
        service.submit(CitationRequest(query=QUERY))  # result-cache hit
        service.submit(CitationRequest(query="completely invalid ::"))
        counters = service.stats()["counters"]
        assert counters["requests"] == 3
        assert counters["responses"] == 3
        assert (
            counters["responses"]
            == counters["executions"]
            + counters["result_cache_hits"]
            + counters["errors"]
        )

    def test_batch_accounting_includes_deduplication(self, service):
        responses = service.submit_batch(
            [CitationRequest(query=QUERY) for _ in range(4)]
        )
        assert all(response.ok for response in responses)
        counters = service.stats()["counters"]
        assert counters["requests"] == 4
        assert counters["responses"] + counters["deduplicated"] == 4
        assert counters["deduplicated"] == 3


class TestAdmissionControl:
    def test_disabled_by_default(self, service):
        assert service.admission is None
        assert "admission" not in service.stats()

    def test_sheds_when_saturated(self, engine):
        release = threading.Event()
        entered = threading.Event()
        original = engine.execute_plan

        def slow_execute(plan, query=None):
            entered.set()
            release.wait(timeout=10.0)
            return original(plan, query)

        engine.execute_plan = slow_execute
        try:
            with CitationService(engine, max_inflight=1, queue_depth=0) as service:
                holder = threading.Thread(
                    target=service.submit, args=(CitationRequest(query=QUERY),)
                )
                holder.start()
                assert entered.wait(timeout=10.0)
                response = service.submit(CitationRequest(query=OTHER))
                release.set()
                holder.join(timeout=10.0)
                assert not response.ok
                assert isinstance(response.error, Overloaded)
                assert response.error_code == "OVERLOADED"
                assert response.error.retry_after > 0.0
                assert service.metrics.counter("errors_shed") == 1
                assert service.stats()["admission"]["shed"] == 1
        finally:
            engine.execute_plan = original

    def test_admission_appears_in_stats(self, engine):
        with CitationService(engine, max_inflight=4, queue_depth=2) as service:
            service.cite(QUERY)
            stats = service.stats()
            assert stats["admission"]["max_inflight"] == 4
            assert stats["admission"]["queue_depth"] == 2
            assert stats["admission"]["admitted"] == 1
            assert stats["resilience"]["admission"] is True


class TestRetryPolicy:
    def test_transient_execute_failures_are_absorbed(self, engine):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0, seed=1)
        with CitationService(engine, retry_policy=policy) as service:
            with fault_plan(
                FaultSpec("backend.execute", error=Overloaded("synthetic", 0.01), times=2)
            ):
                response = service.submit(CitationRequest(query=QUERY))
            assert response.ok
            assert service.metrics.counter("errors_transient_retried") == 2
            assert service.metrics.counter("executions") == 1
            assert service.metrics.counter("errors") == 0

    def test_exhausted_retries_surface_the_error(self, engine):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, seed=1)
        with CitationService(engine, retry_policy=policy) as service:
            with fault_plan(
                FaultSpec("backend.execute", error=Overloaded("synthetic", 0.01))
            ):
                response = service.submit(CitationRequest(query=QUERY))
            assert not response.ok
            assert response.error_code == "OVERLOADED"
            assert service.metrics.counter("errors_transient_retried") == 1


class TestStaleServing:
    def test_stale_fallback_under_deadline_pressure(self, engine, db):
        with CitationService(engine, serve_stale=True) as service:
            fresh = service.submit(CitationRequest(query=QUERY))
            assert fresh.ok
            db.insert("Ligand", (9100, "Ligand-X", "peptide"))  # bump generation
            degraded = service.submit(CitationRequest(query=QUERY, timeout=0.0))
            assert degraded.ok
            assert degraded.stale
            assert degraded.cached
            assert degraded.to_payload()["stale"] is True
            assert degraded.row_count == fresh.row_count
            assert service.metrics.counter("stale_served") == 1
            # A degraded success is not an error.
            assert service.metrics.counter("errors") == 0

    def test_no_stale_serving_without_opt_in(self, engine, db):
        with CitationService(engine) as service:
            assert service.submit(CitationRequest(query=QUERY)).ok
            db.insert("Ligand", (9101, "Ligand-Y", "peptide"))
            response = service.submit(CitationRequest(query=QUERY, timeout=0.0))
            assert not response.ok
            assert response.error_code == "DEADLINE_EXCEEDED"
            assert service.metrics.counter("stale_served") == 0

    def test_cold_cache_cannot_degrade(self, engine):
        with CitationService(engine, serve_stale=True) as service:
            response = service.submit(CitationRequest(query=QUERY, timeout=0.0))
            assert not response.ok  # nothing retained to fall back on
            assert response.error_code == "DEADLINE_EXCEEDED"


class TestStaleRetention:
    def test_default_cache_still_drops_mismatched_entries(self, engine, db):
        with CitationService(engine) as service:
            service.cite(QUERY)
            db.insert("Ligand", (9102, "Ligand-Z", "peptide"))
            before = service.result_cache.stats()["invalidations"]
            service.cite(QUERY)  # token mismatch: dropped and recomputed
            assert service.result_cache.stats()["invalidations"] == before + 1
            assert len(service.result_cache) == 1  # only the fresh entry


class TestDeadlineUnderLoadIsFast:
    def test_request_latency_unaffected_when_idle(self, service):
        # Resilience machinery fully idle: no deadline, no admission, no
        # retry policy.  Sanity-level guard that the per-request overhead is
        # bounded; the real 5% gate is benchmarks/bench_e23_resilience.py.
        service.cite(QUERY)
        started = time.perf_counter()
        for _ in range(50):
            service.cite(QUERY)
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0
