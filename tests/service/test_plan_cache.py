"""Tests for the generation-stamped LRU plan cache."""

from __future__ import annotations

import pytest

from repro import CitationEngine
from repro.service.plan_cache import GenerationalLRU, PlanCache
from repro.workloads import gtopdb


class TestGenerationalLRU:
    def test_basic_hit_and_miss(self):
        cache = GenerationalLRU(maxsize=4)
        assert cache.get("a", token=0) is None
        cache.put("a", "value", token=0)
        assert cache.get("a", token=0) == "value"
        info = cache.info()
        assert info.hits == 1 and info.misses == 1

    def test_stale_token_is_a_miss_and_evicts(self):
        cache = GenerationalLRU(maxsize=4)
        cache.put("a", "old", token=0)
        assert cache.get("a", token=1) is None
        assert "a" not in cache
        info = cache.info()
        assert info.invalidations == 1 and info.misses == 1 and info.hits == 0

    def test_lru_eviction_order(self):
        cache = GenerationalLRU(maxsize=2)
        cache.put("a", 1, token=0)
        cache.put("b", 2, token=0)
        assert cache.get("a", token=0) == 1  # refresh a
        cache.put("c", 3, token=0)  # evicts b (least recently used)
        assert "b" not in cache
        assert cache.get("a", token=0) == 1
        assert cache.get("c", token=0) == 3
        assert cache.info().evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = GenerationalLRU(maxsize=2)
        cache.put("a", 1, token=0)
        cache.put("b", 2, token=0)
        cache.put("a", 10, token=1)
        cache.put("c", 3, token=0)  # b is now the LRU entry
        assert "b" not in cache
        assert cache.get("a", token=1) == 10

    def test_invalidate_drops_everything(self):
        cache = GenerationalLRU(maxsize=8)
        for key in "abc":
            cache.put(key, key, token=0)
        assert cache.invalidate() == 3
        assert len(cache) == 0

    def test_prune_drops_only_stale_entries(self):
        cache = GenerationalLRU(maxsize=8)
        cache.put("old", 1, token=0)
        cache.put("new", 2, token=1)
        assert cache.prune(token=1) == 1
        assert "old" not in cache and "new" in cache

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            GenerationalLRU(maxsize=0)

    def test_stats_shape(self):
        cache = GenerationalLRU(maxsize=8)
        cache.put("a", 1, token=0)
        cache.get("a", token=0)
        stats = cache.stats()
        assert stats["size"] == 1 and stats["maxsize"] == 8
        assert stats["hits"] == 1 and stats["hit_rate"] == 1.0


class TestPlanCacheWithEngine:
    @pytest.fixture
    def engine(self):
        return CitationEngine(gtopdb.paper_instance(), gtopdb.citation_views())

    def test_store_stamps_with_plan_token(self, engine):
        cache = PlanCache(maxsize=8)
        plan = engine.compile_plan(gtopdb.paper_query())
        cache.store("key", plan)
        assert cache.get("key", engine.plan_token()) is plan

    def test_database_mutation_invalidates_stored_plan(self, engine):
        cache = PlanCache(maxsize=8)
        plan = engine.compile_plan(gtopdb.paper_query())
        cache.store("key", plan)
        engine.database.insert("Family", (99, "New family", "d"))
        assert not engine.is_current(plan)
        assert cache.get("key", engine.plan_token()) is None
        assert cache.info().invalidations == 1

    def test_forced_invalidation_bumps_epoch_and_invalidates(self, engine):
        cache = PlanCache(maxsize=8)
        plan = engine.compile_plan(gtopdb.paper_query())
        cache.store("key", plan)
        engine.invalidate_caches()
        assert cache.get("key", engine.plan_token()) is None

    def test_recompiled_plan_is_current_again(self, engine):
        cache = PlanCache(maxsize=8)
        engine.database.delete("Committee", (13, "E. Faccenda"))
        plan = engine.compile_plan(gtopdb.paper_query())
        cache.store("key", plan)
        assert cache.get("key", engine.plan_token()) is plan
