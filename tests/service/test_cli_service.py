"""Tests for the ``batch`` and ``serve`` CLI subcommands."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.relational.csvio import dump_database_json
from repro.workloads import gtopdb

QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
QUERY_RENAMED = "Q(N) :- FamilyIntro(F, T), Family(F, N, D)"


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "gtopdb.json"
    dump_database_json(gtopdb.paper_instance(), path)
    return str(path)


def _parse_jsonl(out: str) -> list[dict]:
    return [json.loads(line) for line in out.strip().splitlines() if line.strip()]


class TestBatch:
    def test_batch_answers_every_query(self, database_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            f"# a comment line\n{QUERY}\n{QUERY_RENAMED}\n\n", encoding="utf-8"
        )
        code = main(["batch", "--database", database_file, str(queries)])
        assert code == 0
        lines = _parse_jsonl(capsys.readouterr().out)
        assert len(lines) == 2
        assert all(line["ok"] for line in lines)
        assert lines[0]["rows"] == 2
        # The alpha-renamed duplicate is deduplicated within the batch.
        assert lines[1]["cached"] is True
        assert lines[0]["citation"]["records"] == lines[1]["citation"]["records"]

    def test_batch_reports_errors_and_exit_code(self, database_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(f"{QUERY}\nnot a query ::\n", encoding="utf-8")
        code = main(["batch", "--database", database_file, str(queries)])
        assert code == 1
        lines = _parse_jsonl(capsys.readouterr().out)
        assert [line["ok"] for line in lines] == [True, False]
        assert "error" in lines[1]

    def test_batch_stats_to_stderr(self, database_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(f"{QUERY}\n{QUERY}\n", encoding="utf-8")
        code = main(["batch", "--database", database_file, "--stats", str(queries)])
        assert code == 0
        captured = capsys.readouterr()
        stats = json.loads(captured.err)
        assert stats["counters"]["requests"] == 2
        assert stats["counters"]["deduplicated"] == 1

    def test_batch_missing_query_file_is_a_clean_error(self, database_file, capsys):
        code = main(["batch", "--database", database_file, "/nope/missing.txt"])
        assert code == 2
        assert "cannot read query file" in capsys.readouterr().err

    def test_bad_cache_size_rejected_by_argparse(self, database_file):
        with pytest.raises(SystemExit):
            main(["serve", "--database", database_file, "--plan-cache", "0"])

    def test_batch_accepts_sql(self, database_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("SELECT FName FROM Family\n", encoding="utf-8")
        code = main(["batch", "--database", database_file, str(queries)])
        assert code == 0
        lines = _parse_jsonl(capsys.readouterr().out)
        assert lines[0]["ok"] and lines[0]["rows"] == 2

    def test_batch_surfaces_the_sql_parsers_own_error(
        self, database_file, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text("SELECT FName FROM NoSuchTable\n", encoding="utf-8")
        code = main(["batch", "--database", database_file, str(queries)])
        assert code == 1
        lines = _parse_jsonl(capsys.readouterr().out)
        assert not lines[0]["ok"]
        # The SQL parser's message, not a misleading Datalog syntax error.
        assert "NoSuchTable" in lines[0]["error"]


class TestServe:
    def _run(self, database_file, stdin_text, capsys, monkeypatch, extra_args=()):
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code = main(["serve", "--database", database_file, *extra_args])
        return code, capsys.readouterr()

    def test_serve_loop_answers_and_quits(self, database_file, capsys, monkeypatch):
        code, captured = self._run(
            database_file, f"{QUERY}\n{QUERY}\n.quit\n", capsys, monkeypatch
        )
        assert code == 0
        lines = _parse_jsonl(captured.out)
        assert len(lines) == 2
        assert lines[0]["ok"] and lines[1]["ok"]
        assert lines[0]["cached"] is False and lines[1]["cached"] is True

    def test_serve_stats_directive(self, database_file, capsys, monkeypatch):
        code, captured = self._run(
            database_file, f"{QUERY}\n.stats\n.quit\n", capsys, monkeypatch
        )
        assert code == 0
        lines = _parse_jsonl(captured.out)
        assert lines[0]["ok"]
        assert lines[1]["counters"]["requests"] == 1

    def test_serve_isolates_bad_queries(self, database_file, capsys, monkeypatch):
        code, captured = self._run(
            database_file, f"broken ::\n{QUERY}\n", capsys, monkeypatch
        )
        assert code == 0
        lines = _parse_jsonl(captured.out)
        assert [line["ok"] for line in lines] == [False, True]

    def test_serve_final_stats_flag(self, database_file, capsys, monkeypatch):
        code, captured = self._run(
            database_file, f"{QUERY}\n", capsys, monkeypatch, extra_args=["--stats"]
        )
        assert code == 0
        stats = json.loads(captured.err)
        assert stats["counters"]["requests"] == 1
