"""Tests for the CitationService facade: caching, batching, concurrency."""

from __future__ import annotations

import time

import pytest

import repro.core.engine as engine_module
from repro import CitationEngine, CitationPolicy, CitationService, parse_query
from repro.core.incremental import IncrementalCitationMaintainer
from repro.errors import NoRewritingError
from repro.workloads import gtopdb


def _same_cited_result(left, right) -> None:
    """Assert two cited results agree on answers and citations."""
    assert {tc.row for tc in left.tuple_citations} == {
        tc.row for tc in right.tuple_citations
    }
    assert left.citation.records == right.citation.records
    left_by_row = {tc.row: tc.records for tc in left.tuple_citations}
    right_by_row = {tc.row: tc.records for tc in right.tuple_citations}
    assert left_by_row == right_by_row


@pytest.fixture
def db():
    return gtopdb.generate(families=30, targets_per_family=2, ligands=40, seed=5)


@pytest.fixture
def engine(db):
    return CitationEngine(
        db, gtopdb.citation_views(extended=True), policy=CitationPolicy.default()
    )


@pytest.fixture
def service(engine):
    with CitationService(engine) as svc:
        yield svc


QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
QUERY_RENAMED = "Q(N) :- FamilyIntro(F, T), Family(F, N, D)"


class TestSingleRequests:
    def test_matches_engine_cite(self, service, engine):
        _same_cited_result(service.cite(QUERY), engine.cite(QUERY))

    def test_repeat_is_served_from_result_cache(self, service):
        first = service.try_cite(QUERY)
        second = service.try_cite(QUERY)
        assert not first.cached and second.cached
        _same_cited_result(first.result, second.result)
        assert service.metrics.counter("result_cache_hits") == 1
        assert service.metrics.counter("executions") == 1

    def test_renamed_query_reuses_cache_but_keeps_its_schema(self, service):
        service.cite(QUERY)
        result = service.cite(QUERY_RENAMED)
        assert [a.name for a in result.result.schema.attributes] == ["N"]
        assert str(result.query) == str(parse_query(QUERY_RENAMED))
        assert service.metrics.counter("plan_compilations") == 1

    def test_plan_cache_hit_when_results_not_cached(self, engine):
        with CitationService(engine, cache_results=False) as service:
            service.cite(QUERY)
            service.cite(QUERY)
            assert service.metrics.counter("plan_compilations") == 1
            assert service.metrics.counter("plan_cache_hits") == 1
            assert service.metrics.counter("executions") == 2

    def test_modes_are_cached_separately(self, service):
        service.cite(QUERY, mode="formal")
        service.cite(QUERY, mode="economical")
        assert service.metrics.counter("plan_compilations") == 2

    def test_error_is_raised_by_cite_and_reported_by_try_cite(self, service):
        with pytest.raises(NoRewritingError):
            service.cite("Q(PName) :- Contributor(TID, PName)")
        response = service.try_cite("Q(PName) :- Contributor(TID, PName)")
        assert not response.ok and isinstance(response.error, NoRewritingError)
        with pytest.raises(NoRewritingError):
            response.unwrap()

    def test_fallback_engine_serves_uncovered_queries(self, db):
        engine = CitationEngine(
            db, gtopdb.citation_views(), on_no_rewriting="fallback"
        )
        with CitationService(engine) as service:
            result = service.cite("Q(PName) :- Contributor(TID, PName)")
            assert result.used_fallback
            repeat = service.try_cite("Q(PName) :- Contributor(TID, PName)")
            assert repeat.cached and repeat.result.used_fallback


class TestInvalidation:
    def test_mutation_invalidates_cached_results(self, service, db):
        before = service.cite(QUERY)
        db.insert("Family", (9001, "Brand new family", "d"))
        db.insert("FamilyIntro", (9001, "intro text"))
        after = service.cite(QUERY)
        rows = {tc.row for tc in after.tuple_citations}
        assert ("Brand new family",) in rows
        assert ("Brand new family",) not in {tc.row for tc in before.tuple_citations}

    def test_mutation_reuses_data_independent_formal_plan(self, service, db):
        # Formal-mode plans read only the query and view definitions: a data
        # change must invalidate cached *results* but not the plan.
        service.cite(QUERY, mode="formal")
        db.insert("Family", (9002, "Another family", "d"))
        db.insert("FamilyIntro", (9002, "intro"))
        fresh = service.cite(QUERY, mode="formal")
        assert ("Another family",) in {tc.row for tc in fresh.tuple_citations}
        assert service.metrics.counter("plan_compilations") == 1
        assert service.metrics.counter("plan_cache_hits") == 1
        assert service.metrics.counter("executions") == 2

    def test_mutation_forces_recompilation_in_economical_mode(self, service, db):
        # Economical plans embed a cost-based selection made against the
        # data, so a mutation retires them.
        service.cite(QUERY, mode="economical")
        db.insert("Family", (9002, "Another family", "d"))
        service.cite(QUERY, mode="economical")
        assert service.metrics.counter("plan_compilations") == 2
        assert service.plan_cache.info().invalidations >= 1

    def test_delete_also_invalidates(self, service, db):
        service.cite(QUERY)
        intro_row = next(iter(db.relation("FamilyIntro").rows))
        db.delete("FamilyIntro", intro_row)
        fresh = service.cite(QUERY)
        _same_cited_result(fresh, service.engine.cite(QUERY))

    def test_forced_engine_invalidation_drops_service_caches(self, service):
        service.cite(QUERY)
        service.engine.invalidate_caches()
        response = service.try_cite(QUERY)
        assert not response.cached
        assert service.metrics.counter("plan_compilations") == 2

    def test_explicit_service_invalidate(self, service):
        service.cite(QUERY)
        service.invalidate()
        assert len(service.plan_cache) == 0 and len(service.result_cache) == 0

    def test_view_materialization_hoisted_per_generation(self, engine, monkeypatch):
        calls = {"count": 0}
        original = engine_module.materialize_views

        def counting(views, database):
            calls["count"] += 1
            return original(views, database)

        monkeypatch.setattr(engine_module, "materialize_views", counting)
        with CitationService(engine, cache_results=False) as service:
            for _ in range(4):
                service.cite(QUERY)
            assert calls["count"] == 1
            engine.database.insert("Family", (9003, "Yet another family", "d"))
            service.cite(QUERY)
            assert calls["count"] == 2


class TestBatching:
    def test_cite_batch_matches_sequential(self, service, engine):
        queries = [QUERY, QUERY_RENAMED, "Q2(FID, FName, Desc) :- Family(FID, FName, Desc)"]
        batch = service.cite_batch(queries)
        for query, result in zip(queries, batch):
            _same_cited_result(result, engine.cite(query))

    def test_cite_batch_deduplicates(self, service):
        queries = [QUERY, QUERY_RENAMED, QUERY, QUERY_RENAMED, QUERY]
        service.cite_batch(queries)
        assert service.metrics.counter("executions") == 1
        assert service.metrics.counter("deduplicated") == 4

    def test_cite_many_matches_sequential(self, service, engine):
        queries = list(gtopdb.example_queries()) * 2
        sequential = [engine.cite(query) for query in queries]
        responses = service.cite_many(queries, max_workers=6)
        assert len(responses) == len(queries)
        assert all(response.ok for response in responses)
        for expected, response in zip(sequential, responses):
            _same_cited_result(response.result, expected)
            assert (
                expected.result.schema.attributes
                == response.result.result.schema.attributes
            )

    def test_cite_many_error_isolation(self, service):
        queries = [
            QUERY,
            "completely invalid ::",
            "Q(PName) :- Contributor(TID, PName)",
            QUERY_RENAMED,
        ]
        responses = service.cite_many(queries)
        assert [response.ok for response in responses] == [True, False, False, True]
        assert service.metrics.counter("errors") == 2

    def test_cite_many_shares_error_across_duplicates(self, service):
        bad = "Q(PName) :- Contributor(TID, PName)"
        responses = service.cite_many([bad, bad])
        assert all(not response.ok for response in responses)
        assert all(
            isinstance(response.error, NoRewritingError) for response in responses
        )

    def test_cite_many_timeout_isolated(self, service, engine, monkeypatch):
        original = engine.execute_plan

        def slow_execute(plan, query=None):
            time.sleep(0.25)
            return original(plan, query)

        monkeypatch.setattr(engine, "execute_plan", slow_execute)
        responses = service.cite_many([QUERY], timeout=0.01)
        assert not responses[0].ok
        assert isinstance(responses[0].error, TimeoutError)
        assert service.metrics.counter("timeouts") == 1

    def test_warm_precompiles_plans(self, service):
        compiled = service.warm(gtopdb.example_queries())
        assert compiled == len(gtopdb.example_queries())
        assert service.warm(gtopdb.example_queries()) == 0


class TestStats:
    def test_stats_snapshot_shape(self, service):
        service.cite(QUERY)
        service.cite(QUERY)
        stats = service.stats()
        assert stats["counters"]["requests"] == 2
        assert stats["counters"]["result_cache_hits"] == 1
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert stats["plan_cache"]["size"] == 1
        assert stats["engine"]["citation_views"] == 6
        assert "request" in stats["latency_ms"]
        snapshot = stats["latency_ms"]["request"]
        assert snapshot["count"] == 2
        assert snapshot["max_ms"] >= snapshot["min_ms"] >= 0.0

    def test_mutations_observed_counter(self, service, db):
        db.insert("Ligand", (9100, "Ligand-X", "peptide"))
        assert service.metrics.counter("mutations_observed") == 1

    def test_close_detaches_mutation_listener(self, engine, db):
        service = CitationService(engine)
        service.close()
        db.insert("Ligand", (9101, "Ligand-Y", "peptide"))
        assert service.metrics.counter("mutations_observed") == 0


class TestGenerationTracking:
    def test_generation_counts_applied_changes_only(self, db):
        start = db.generation
        assert db.insert("Ligand", (9200, "L", "peptide"))
        assert not db.insert("Ligand", (9200, "L", "peptide"))  # duplicate: no-op
        assert db.generation == start + 1
        assert db.delete("Ligand", (9200, "L", "peptide"))
        assert db.generation == start + 2

    def test_mutation_listeners_fire_and_detach(self, db):
        seen = []
        listener = lambda kind, relation, row: seen.append((kind, relation))
        db.add_mutation_listener(listener)
        db.insert("Ligand", (9201, "L", "peptide"))
        db.remove_mutation_listener(listener)
        db.delete("Ligand", (9201, "L", "peptide"))
        assert seen == [("insert", "Ligand")]


class TestIncrementalHooks:
    def test_maintainer_notifies_listeners(self):
        engine = CitationEngine(
            gtopdb.paper_instance(),
            gtopdb.citation_views(),
            policy=CitationPolicy.union_everywhere(),
        )
        maintainer = IncrementalCitationMaintainer(engine, gtopdb.paper_query())
        events = []
        maintainer.add_change_listener(lambda relation, kind: events.append((relation, kind)))
        maintainer.insert("Family", (50, "Maintained family", "d"))
        maintainer.insert("FamilyIntro", (50, "intro"))
        maintainer.insert("Ligand", (50, "L", "peptide"))
        maintainer.insert("Committee", (50, "New curator"))
        kinds = [kind for _relation, kind in events]
        assert kinds[:2] == ["answer", "answer"]
        assert "ignored" in kinds and "records" in kinds
        maintainer.check_consistency()

    def test_maintainer_consistent_with_generation_aware_caches(self):
        engine = CitationEngine(
            gtopdb.paper_instance(),
            gtopdb.citation_views(),
            policy=CitationPolicy.union_everywhere(),
        )
        maintainer = IncrementalCitationMaintainer(engine, gtopdb.paper_query())
        maintainer.insert("Family", (60, "Calcitonin", "dup-name"))
        maintainer.insert("FamilyIntro", (60, "intro"))
        maintainer.delete("FamilyIntro", (11, "1st"))
        maintainer.check_consistency()


class TestCompiledProgramsThroughThePlanCache:
    def test_plan_hit_carries_compiled_programs(self, service):
        query = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        service.cite(query)  # cold: compiles the plan and, on execute, the programs
        plan, hit = service.plan_for(query)
        assert hit
        assert plan.rewritings  # a real plan, not a fallback
        programs = [plan.compiled_program(i) for i in range(len(plan.rewritings))]
        assert all(program is not None for program in programs)
        # A structurally identical (renamed) query hits the same plan, so it
        # reuses the same compiled join programs.
        renamed = "Q(N) :- FamilyIntro(F, T), Family(F, N, D)"
        twin, twin_hit = service.plan_for(renamed)
        assert twin_hit and twin is plan

    def test_plan_hit_carries_reduced_programs(self, service):
        """Serving traffic amortizes the semi-join analysis: one execution
        attaches the reduced programs, every later hit reuses them."""
        query = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        service.cite(query)
        plan, hit = service.plan_for(query)
        assert hit
        reduced = [plan.compiled_reduced(i) for i in range(len(plan.rewritings))]
        assert all(r is not None for r in reduced)
        assert all(r.acyclic for r in reduced)  # citation views are acyclic CQs
        service.cite(query)  # warm: must reuse, not re-analyse
        assert [
            plan.compiled_reduced(i) for i in range(len(plan.rewritings))
        ] == reduced

    def test_stats_expose_the_engine_strategy(self, service):
        assert service.stats()["engine"]["strategy"] == "auto"


class TestEvaluationMetricsExposure:
    def test_stats_expose_strategy_and_prelude_metrics(self, service):
        service.cite(QUERY)
        service.cite(QUERY)
        stats = service.stats()
        evaluation = stats["evaluation"]
        assert set(evaluation) == {
            "picks",
            "pick_reasons",
            "cost_model",
            "prelude_cache",
            "sharding",
        }
        picks = evaluation["picks"]
        # First call executes, the repeat is a result-cache hit: at least
        # one strategy decision was recorded (one per rewriting).
        assert picks["program"] + picks["reduced"] >= 1
        assert "estimates" in evaluation["cost_model"]
        assert "hit_rate" in evaluation["prelude_cache"]

    def test_stats_are_json_serialisable_with_evaluation_block(self, service):
        import json

        service.cite(QUERY)
        payload = json.dumps(service.stats(), sort_keys=True)
        assert "prelude_cache" in payload

    def test_warm_plan_hits_surface_as_prelude_hits(self, db):
        engine = CitationEngine(
            db, gtopdb.citation_views(extended=True), strategy="reduced"
        )
        with CitationService(engine, cache_results=False) as svc:
            svc.cite(QUERY)
            svc.cite(QUERY)  # plan hit + warm prelude: no reduction runs
            prelude = svc.stats()["evaluation"]["prelude_cache"]
            assert prelude["hits"] >= 1
            assert prelude["misses"] >= 1

    def test_isomorphic_requests_share_the_warm_prelude(self, db):
        engine = CitationEngine(
            db, gtopdb.citation_views(extended=True), strategy="reduced"
        )
        with CitationService(engine, cache_results=False) as svc:
            svc.cite(QUERY)
            svc.cite(QUERY_RENAMED)  # same fingerprint: same plan, same state
            prelude = svc.stats()["evaluation"]["prelude_cache"]
            assert prelude["hits"] >= 1
