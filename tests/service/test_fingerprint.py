"""Property-based tests for structural query fingerprints.

The fingerprint must be *complete* for the isomorphism classes the serving
layer cares about: equal exactly when two queries differ only by a bijective
variable renaming and/or a permutation of body atoms.  The tests check both
directions — invariance via random renamings/shuffles, distinctness against a
brute-force isomorphism oracle over small random query pairs.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.query.ast import (
    Atom,
    ConjunctiveQuery,
    Constant,
    EqualityAtom,
    Variable,
)
from repro.query.parser import parse_query
from repro.service.fingerprint import are_isomorphic, canonical_key, fingerprint

_VARIABLES = ["X", "Y", "Z", "W", "V"]
_PREDICATES = ["R", "S"]


# ---------------------------------------------------------------------------
# Random queries and random isomorphisms
# ---------------------------------------------------------------------------
@st.composite
def random_queries(draw) -> ConjunctiveQuery:
    """Safe conjunctive queries over binary R/S with optional equalities."""
    atom_count = draw(st.integers(min_value=1, max_value=4))
    body = []
    for _ in range(atom_count):
        predicate = draw(st.sampled_from(_PREDICATES))
        left = Variable(draw(st.sampled_from(_VARIABLES)))
        if draw(st.booleans()):
            right: object = Variable(draw(st.sampled_from(_VARIABLES)))
        else:
            right = Constant(draw(st.integers(0, 2)))
        body.append(Atom(predicate, (left, right)))
    body_vars = sorted({v.name for atom in body for v in atom.variables()})
    head_size = draw(st.integers(min_value=0, max_value=len(body_vars)))
    head_vars = tuple(Variable(name) for name in body_vars[:head_size])
    equalities = ()
    if body_vars and draw(st.booleans()):
        equalities = (
            EqualityAtom(
                Variable(draw(st.sampled_from(body_vars))),
                Constant(draw(st.integers(0, 2))),
            ),
        )
    parameters = tuple(head_vars[:1]) if head_vars and draw(st.booleans()) else ()
    return ConjunctiveQuery(Atom("Q", head_vars), body, equalities, parameters)


def _renamed(query: ConjunctiveQuery, permutation_index: int) -> ConjunctiveQuery:
    """Apply one of the bijective renamings of the query's variables."""
    variables = sorted(query.variables(), key=lambda v: v.name)
    permutations = list(itertools.permutations(range(len(variables))))
    chosen = permutations[permutation_index % len(permutations)]
    mapping = {
        variables[source]: Variable(f"fresh_{target}")
        for source, target in zip(range(len(variables)), chosen)
    }
    return query.substitute(mapping)


def _reordered(query: ConjunctiveQuery, permutation_index: int) -> ConjunctiveQuery:
    """Permute the body atoms of the query."""
    permutations = list(itertools.permutations(range(len(query.body))))
    chosen = permutations[permutation_index % len(permutations)]
    return ConjunctiveQuery(
        query.head,
        tuple(query.body[index] for index in chosen),
        query.equalities,
        query.parameters,
    )


def _brute_force_isomorphic(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Oracle: try every variable bijection between the two queries."""
    left_vars = sorted(left.variables(), key=lambda v: v.name)
    right_vars = sorted(right.variables(), key=lambda v: v.name)
    if len(left_vars) != len(right_vars):
        return False
    if len(left.body) != len(right.body):
        return False
    right_body = sorted(
        ((a.predicate, a.terms) for a in right.body), key=repr
    )
    right_equalities = sorted(
        ((e.variable, e.constant) for e in right.equalities), key=repr
    )
    for permutation in itertools.permutations(right_vars):
        mapping = dict(zip(left_vars, permutation))

        def rename(term):
            return mapping[term] if isinstance(term, Variable) else term

        if tuple(rename(t) for t in left.head.terms) != right.head.terms:
            continue
        if left.head.predicate != right.head.predicate:
            continue
        mapped_body = sorted(
            (
                (atom.predicate, tuple(rename(t) for t in atom.terms))
                for atom in left.body
            ),
            key=repr,
        )
        if mapped_body != right_body:
            continue
        mapped_equalities = sorted(
            ((mapping[e.variable], e.constant) for e in left.equalities), key=repr
        )
        if mapped_equalities != right_equalities:
            continue
        if tuple(mapping[p] for p in left.parameters) != right.parameters:
            continue
        return True
    return False


# ---------------------------------------------------------------------------
# Invariance
# ---------------------------------------------------------------------------
class TestInvariance:
    @given(random_queries(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=120, deadline=None)
    def test_invariant_under_variable_renaming(self, query, permutation_index):
        assert fingerprint(_renamed(query, permutation_index)) == fingerprint(query)

    @given(random_queries(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=120, deadline=None)
    def test_invariant_under_atom_reordering(self, query, permutation_index):
        assert fingerprint(_reordered(query, permutation_index)) == fingerprint(query)

    @given(
        random_queries(),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_invariant_under_renaming_and_reordering(
        self, query, rename_index, reorder_index
    ):
        variant = _reordered(_renamed(query, rename_index), reorder_index)
        assert canonical_key(variant) == canonical_key(query)
        assert are_isomorphic(variant, query)

    def test_paper_query_variants(self):
        original = parse_query(
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        )
        renamed = parse_query("Q(N) :- FamilyIntro(F, T), Family(F, N, D)")
        assert fingerprint(original) == fingerprint(renamed)

    def test_automorphism_rich_bodies(self):
        cyclic = parse_query("Q(X) :- R(X, Y), R(Y, Z), R(Z, X)")
        rotated = parse_query("Q(B) :- R(A, B), R(B, C), R(C, A)")
        assert fingerprint(cyclic) == fingerprint(rotated)


# ---------------------------------------------------------------------------
# Distinctness
# ---------------------------------------------------------------------------
class TestDistinctness:
    @given(random_queries(), random_queries())
    @settings(max_examples=150, deadline=None)
    def test_fingerprint_matches_isomorphism_oracle(self, left, right):
        assert (canonical_key(left) == canonical_key(right)) == _brute_force_isomorphic(
            left, right
        )

    def test_distinct_shapes(self):
        distinct = [
            "Q(X) :- R(X, Y)",
            "Q(X) :- S(X, Y)",
            "Q(X) :- R(X, X)",
            "Q(X) :- R(Y, X)",
            "Q(X, Y) :- R(X, Y)",
            "Q(X) :- R(X, Y), R(Y, X)",
            "Q(X) :- R(X, Y), R(X, Z)",
            "Q(X) :- R(X, Y), S(Y, X)",
            "P(X) :- R(X, Y)",
            "Q(X) :- R(X, 1)",
            "Q(X) :- R(X, 2)",
            'Q(X) :- R(X, Y), Y = "a"',
            "lambda X. Q(X) :- R(X, Y)",
        ]
        prints = [fingerprint(parse_query(text)) for text in distinct]
        assert len(set(prints)) == len(prints)

    def test_constant_types_are_distinguished(self):
        integer = parse_query("Q(X) :- R(X, 1)")
        string = parse_query('Q(X) :- R(X, "1")')
        assert fingerprint(integer) != fingerprint(string)

    def test_duplicate_atoms_matter(self):
        # Set-equivalent but not isomorphic as atom multisets: the cache key
        # treats them as different plans (correct, merely conservative).
        single = parse_query("Q(X) :- R(X, Y)")
        doubled = ConjunctiveQuery(
            single.head, single.body + single.body, (), ()
        )
        assert fingerprint(single) != fingerprint(doubled)
