"""Race-stress harness: concurrent serving under live writes (``-m race``).

Three suites.  :class:`TestServiceUnderChurn` drives ``submit_batch`` from
many threads while a writer thread inserts and deletes rows — bumping the
database generation, invalidating plan/result caches mid-flight — and then
audits the aftermath: no lost requests (the metrics counters balance
exactly), no cross-request plan corruption (every plan in sight passes the
IR verifier), stable answers (the churned relation feeds none of the
queries).  :class:`TestEngineCacheRaces` is the regression suite for the
engine/evaluator cache locks: tiny cache caps plus many distinct query
shapes force concurrent FIFO eviction, which without ``_cache_lock`` /
``_analysis_lock`` raced destructively (``RuntimeError: dictionary changed
size during iteration``, lost stats updates).
:class:`TestShardedEvaluationUnderChurn` repeats the service stampede with
``strategy="parallel"`` so every execution fans out across the shard pool
*while* the writer churns: cached shard partitions must repartition on
version bumps (never serve stale slices), the I008 partition verifier runs
on every fresh partition (strict mode), and the merged answers and metric
conservation must be byte-identical to the serial harness's guarantees.

CI runs this module as its own step (``pytest -m race``); the tier-1 run
deselects it.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.core.engine as engine_module
from repro import CitationEngine, parse_query
from repro.query.evaluator import QueryEvaluator
from repro.service.service import CitationService
from repro.workloads import gtopdb

pytestmark = pytest.mark.race

THREADS = 8
BATCHES_PER_THREAD = 12

#: Queries over Family / FamilyIntro only.  The writer churns Ligand, which
#: neither the queries nor the (non-extended) views V1–V3 ever read — the
#: in-memory store has no reader/writer isolation per relation, so reading
#: a relation *while* mutating it is out of contract.  Churning an unread
#: relation still bumps the database generation on every op, invalidating
#: plan tokens, result-cache entries and materialised views mid-flight,
#: which is the contention the harness is after.
QUERIES = [
    "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
    "Q2(FID, Text) :- FamilyIntro(FID, Text)",
    "Q3(FName, Text) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
    "Q4(FID) :- Family(FID, FName, Desc)",
]


@pytest.fixture
def database():
    return gtopdb.generate(
        families=12, targets_per_family=2, ligands=20, seed=7
    )


@pytest.fixture
def engine(database):
    return CitationEngine(database, gtopdb.citation_views())


class TestServiceUnderChurn:
    def test_submit_batch_with_writer_churn(self, database, engine):
        with CitationService(engine, max_workers=THREADS) as service:
            expected = {
                query: frozenset(engine.cite(query).result.rows) for query in QUERIES
            }
            stop = threading.Event()
            writer_ops = 0

            def churn():
                nonlocal writer_ops
                row_id = 100_000
                while not stop.is_set():
                    database.insert("Ligand", (row_id, f"L{row_id}", "synthetic"))
                    writer_ops += 1
                    if row_id % 3 == 0:
                        database.delete("Ligand", (row_id, f"L{row_id}", "synthetic"))
                        writer_ops += 1
                    row_id += 1

            writer = threading.Thread(target=churn)
            writer.start()
            try:
                batches = []
                with ThreadPoolExecutor(max_workers=THREADS) as pool:
                    futures = [
                        pool.submit(
                            service.cite_many,
                            QUERIES,  # intra-batch dedup is a no-op: distinct shapes
                        )
                        for _ in range(THREADS * BATCHES_PER_THREAD)
                    ]
                    for future in futures:
                        batches.append(future.result(timeout=120))
            finally:
                stop.set()
                writer.join(timeout=30)
            assert not writer.is_alive()
            assert writer_ops > 0

            # 1. No lost or broken responses: every request answered, correctly.
            assert len(batches) == THREADS * BATCHES_PER_THREAD
            for responses in batches:
                assert len(responses) == len(QUERIES)
                for query, response in zip(QUERIES, responses):
                    assert response.error is None, repr(response.error)
                    assert frozenset(response.result.result.rows) == expected[query]

            # 2. Metric conservation: the served counters balance exactly.
            counters = service.metrics.stats()["counters"]
            total = THREADS * BATCHES_PER_THREAD * len(QUERIES)
            assert counters["requests"] == total
            assert counters["errors"] == 0
            assert counters["timeouts"] == 0
            assert (
                counters["executions"]
                + counters["result_cache_hits"]
                + counters["deduplicated"]
                == total
            )
            assert counters["batch_requests"] == THREADS * BATCHES_PER_THREAD
            # Every writer op was observed by the mutation listener.
            assert counters["mutations_observed"] == writer_ops

            # 3. No cross-request plan corruption: everything compiled during
            # the stampede — plans, programs, reductions, warm preludes —
            # still passes the IR verifier.
            for query in QUERIES:
                plan = engine.compile_plan(parse_query(query))
                engine.execute_plan(plan)
                report = engine.verify_plan(plan)
                assert not list(report), report.to_text()
            stats = engine.analysis_stats()
            assert stats["verify_violations"] == 0
            assert stats["plans_verified"] >= len(QUERIES)


class TestShardedEvaluationUnderChurn:
    """The service stampede again, with every execution sharded in parallel.

    ``strategy="parallel"`` forces the shard path regardless of the cost
    model, ``verify_plans="strict"`` (the suite default) turns on the I008
    partition verifier, and the churn writer invalidates cached partitions
    mid-flight.  The audit demands the *same* exact conservation the serial
    harness gets, plus evidence the shard path actually ran."""

    def test_sharded_cite_many_with_writer_churn(self, database):
        engine = CitationEngine(
            database,
            gtopdb.citation_views(),
            strategy="parallel",
            workers=2,
            parallel_backend="thread",
        )
        with CitationService(engine, max_workers=THREADS) as service:
            expected = {
                query: frozenset(engine.cite(query).result.rows) for query in QUERIES
            }
            stop = threading.Event()
            writer_ops = 0

            def churn():
                nonlocal writer_ops
                row_id = 300_000
                while not stop.is_set():
                    database.insert("Ligand", (row_id, f"L{row_id}", "synthetic"))
                    writer_ops += 1
                    if row_id % 3 == 0:
                        database.delete("Ligand", (row_id, f"L{row_id}", "synthetic"))
                        writer_ops += 1
                    row_id += 1

            writer = threading.Thread(target=churn)
            writer.start()
            try:
                batches = []
                with ThreadPoolExecutor(max_workers=THREADS) as pool:
                    futures = [
                        pool.submit(service.cite_many, QUERIES)
                        for _ in range(THREADS * BATCHES_PER_THREAD)
                    ]
                    for future in futures:
                        batches.append(future.result(timeout=120))
            finally:
                stop.set()
                writer.join(timeout=30)
            assert not writer.is_alive()
            assert writer_ops > 0

            # 1. Sharded answers are exact under churn.
            assert len(batches) == THREADS * BATCHES_PER_THREAD
            for responses in batches:
                assert len(responses) == len(QUERIES)
                for query, response in zip(QUERIES, responses):
                    assert response.error is None, repr(response.error)
                    assert frozenset(response.result.result.rows) == expected[query]

            # 2. Exact metric conservation — identical to the serial audit.
            counters = service.metrics.stats()["counters"]
            total = THREADS * BATCHES_PER_THREAD * len(QUERIES)
            assert counters["requests"] == total
            assert counters["errors"] == 0
            assert counters["timeouts"] == 0
            assert (
                counters["executions"]
                + counters["result_cache_hits"]
                + counters["deduplicated"]
                == total
            )
            assert counters["mutations_observed"] == writer_ops

            # 3. The shard path really ran, and sharded executions conserve
            # exactly: every execution was either parallel or serial, no
            # double counting, and parallel runs fanned out into shards.
            sharding = service.stats()["evaluation"]["sharding"]
            assert sharding["parallel"] > 0
            assert sharding["parallel"] + sharding["serial"] == sum(
                sharding["reasons"].values()
            )
            assert sharding["shards_executed"] >= 2 * sharding["parallel"]

            # 4. Every plan still verifies clean — the strict-mode partition
            # verifier (I008) already ran on every fresh partition above.
            for query in QUERIES:
                plan = engine.compile_plan(parse_query(query))
                engine.execute_plan(plan)
                report = engine.verify_plan(plan)
                assert not list(report), report.to_text()
            assert engine.analysis_stats()["verify_violations"] == 0


class TestEngineCacheRaces:
    """Regression: the engine/evaluator cache locks under forced eviction."""

    def test_concurrent_cite_many_with_tiny_caches(self, database, monkeypatch):
        monkeypatch.setattr(engine_module, "_ANALYSIS_CACHE_LIMIT", 4)
        engine = CitationEngine(database, gtopdb.citation_views(extended=True))
        evaluator = engine._execution_evaluator()
        evaluator.max_cached_queries = 3  # force FIFO eviction on every miss

        # Distinct head predicates make distinct cache keys: every shape
        # compiles, analyzes and (at the tiny caps) evicts concurrently.
        shapes = [
            f"Q{i}(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, T)"
            for i in range(24)
        ] + [
            f"P{i}(FID, Text) :- FamilyIntro(FID, Text)" for i in range(24)
        ]
        reference = {shape: engine.cite(shape).result.rows for shape in shapes[:4]}

        with CitationService(engine, max_workers=THREADS) as service:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                futures = [
                    pool.submit(service.cite_many, shapes)
                    for _ in range(THREADS)
                ]
                results = [future.result(timeout=120) for future in futures]

        for responses in results:
            assert len(responses) == len(shapes)
            for response in responses:
                assert response.error is None, repr(response.error)
        for shape, rows in reference.items():
            assert engine.cite(shape).result.rows == rows
        # The analysis cache honoured its (patched) cap under concurrency.
        assert len(engine._analysis_cache) <= 4
        assert engine.analysis_stats()["verify_violations"] == 0

    def test_concurrent_sharded_evaluator_under_drift(self, database):
        """Sharded evaluation races its own partition cache: many threads
        evaluate through one parallel evaluator while another thread bumps
        relation versions.  Verification is on, so any stale or misrouted
        partition raises instead of silently dropping rows."""
        evaluator = QueryEvaluator(
            database,
            strategy="parallel",
            workers=2,
            verify_partitions=True,
        )
        queries = [parse_query(text) for text in QUERIES]
        expected = {
            query: frozenset(evaluator.evaluate(query).rows) for query in queries
        }
        stop = threading.Event()

        def churn():
            row_id = 500_000
            while not stop.is_set():
                database.insert("Ligand", (row_id, f"L{row_id}", "synthetic"))
                database.delete("Ligand", (row_id, f"L{row_id}", "synthetic"))
                row_id += 1

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            def hammer() -> int:
                count = 0
                for _ in range(BATCHES_PER_THREAD):
                    for query in queries:
                        rows = frozenset(evaluator.evaluate(query).rows)
                        assert rows == expected[query]
                        count += 1
                return count

            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                futures = [pool.submit(hammer) for _ in range(THREADS)]
                counts = [future.result(timeout=120) for future in futures]
        finally:
            stop.set()
            writer.join(timeout=30)
            evaluator.close()
        assert counts == [BATCHES_PER_THREAD * len(queries)] * THREADS

    def test_concurrent_evaluator_cache_eviction(self, database):
        evaluator = QueryEvaluator(database, max_cached_queries=3)
        shapes = [
            parse_query(f"Q{i}(FName) :- Family(FID, FName, Desc)")
            for i in range(30)
        ]

        def hammer(offset: int) -> int:
            count = 0
            for index in range(len(shapes)):
                query = shapes[(index + offset) % len(shapes)]
                program = evaluator.compile(query)
                reduced = evaluator.reduction_of(query, program)
                assert reduced.program is program
                prelude = evaluator.prelude_for(query, reduced)
                assert prelude.reduced is reduced
                evaluator.evaluate(query)
                count += 1
            return count

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            futures = [pool.submit(hammer, i * 3) for i in range(THREADS)]
            counts = [future.result(timeout=120) for future in futures]
        assert counts == [len(shapes)] * THREADS
        assert len(evaluator._programs) <= 3
        assert len(evaluator._reduced) <= 3
        assert len(evaluator._preludes) <= 3
