"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.spec import dump_specification, load_specification
from repro.relational.csvio import dump_database_json
from repro.workloads import gtopdb


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "gtopdb.json"
    dump_database_json(gtopdb.paper_instance(), path)
    return str(path)


@pytest.fixture
def spec_file(tmp_path):
    from repro.core.policy import CitationPolicy

    payload = dump_specification(gtopdb.citation_views(), CitationPolicy.default())
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"


class TestCite:
    def test_cite_with_specification(self, database_file, spec_file, capsys):
        code = main(["cite", "--database", database_file, "--spec", spec_file, QUERY])
        assert code == 0
        out = capsys.readouterr().out
        assert "IUPHAR/BPS Guide to PHARMACOLOGY" in out

    def test_cite_with_default_views(self, database_file, capsys):
        code = main(["cite", "--database", database_file, "--title", "GtoPdb", QUERY])
        assert code == 0
        assert "GtoPdb" in capsys.readouterr().out

    def test_cite_sql_query(self, database_file, spec_file, capsys):
        code = main(
            [
                "cite",
                "--database",
                database_file,
                "--spec",
                spec_file,
                "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip()

    @pytest.mark.parametrize("fmt,marker", [("bibtex", "@misc{"), ("ris", "TY  - DATA"), ("xml", "<citation"), ("json", '"records"')])
    def test_output_formats(self, database_file, spec_file, capsys, fmt, marker):
        code = main(
            ["cite", "--database", database_file, "--spec", spec_file, "--format", fmt, QUERY]
        )
        assert code == 0
        assert marker in capsys.readouterr().out

    def test_show_answers(self, database_file, spec_file, capsys):
        code = main(
            ["cite", "--database", database_file, "--spec", spec_file, "--show-answers", QUERY]
        )
        assert code == 0
        assert "answer tuple" in capsys.readouterr().err

    def test_error_exit_code_on_bad_query(self, database_file, spec_file, capsys):
        code = main(["cite", "--database", database_file, "--spec", spec_file, "Q(X :- R(X)"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestValidateAndViews:
    def test_validate_good_spec(self, database_file, spec_file, capsys):
        assert main(["validate", "--database", database_file, "--spec", spec_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_bad_spec(self, database_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"views": [{"view": "V(X) :- Nope(X)"}]}), encoding="utf-8")
        assert main(["validate", "--database", database_file, "--spec", str(bad)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_views_lists_defaults(self, database_file, capsys):
        assert main(["views", "--database", database_file]) == 0
        out = capsys.readouterr().out
        assert "All_Family" in out
        assert "Per_Family" in out

    def test_views_as_json_round_trips(self, database_file, capsys):
        assert main(["views", "--database", database_file, "--as-json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        views, _policy = load_specification(payload, schema=gtopdb.schema())
        assert views


class TestExplainAndDemo:
    def test_explain(self, database_file, spec_file, capsys):
        assert main(["explain", "--database", database_file, "--spec", spec_file, QUERY]) == 0
        out = capsys.readouterr().out
        assert "Rewritings considered" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "CV1(11)" in out
