"""Tests for cost-based rewriting selection."""

import pytest

from repro.core.rewriting_selector import RewritingSelector
from repro.errors import PolicyError
from repro.query.parser import parse_query
from repro.rewriting.minicon import MiniConRewriter
from repro.core.citation_view import views_of
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


@pytest.fixture
def rewritings(db):
    views = views_of(gtopdb.citation_views())
    query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
    return MiniConRewriter(views).rewrite(query)


def _views_used(rewriting):
    return {atom.predicate for atom in rewriting.query.body}


class TestStrategies:
    def test_all_keeps_everything(self, db, rewritings):
        selector = RewritingSelector(db, strategy="all")
        assert selector.select(rewritings) == list(rewritings)

    def test_min_citation_size_picks_unparameterized(self, db, rewritings):
        selector = RewritingSelector(db, strategy="min_citation_size", keep=1)
        selected = selector.select(rewritings)
        assert len(selected) == 1
        assert "V2" in _views_used(selected[0])

    def test_min_evaluation_cost(self, db, rewritings):
        selector = RewritingSelector(db, strategy="min_evaluation_cost", keep=1)
        assert len(selector.select(rewritings)) == 1

    def test_prefer_unparameterized(self, db, rewritings):
        selector = RewritingSelector(db, strategy="prefer_unparameterized")
        selected = selector.select(rewritings)
        assert all(not r.uses_parameterized_view() for r in selected)

    def test_prefer_unparameterized_falls_back(self, db):
        views = views_of([gtopdb.citation_views()[0], gtopdb.citation_views()[2]])  # V1, V3 only
        query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        rewritings = MiniConRewriter(views).rewrite(query)
        selector = RewritingSelector(db, strategy="prefer_unparameterized")
        assert selector.select(rewritings)  # falls back to the parameterized one

    def test_keep_is_at_least_one(self, db, rewritings):
        selector = RewritingSelector(db, strategy="min_citation_size", keep=0)
        assert len(selector.select(rewritings)) == 1

    def test_empty_input(self, db):
        assert RewritingSelector(db).select([]) == []

    def test_unknown_strategy(self, db, rewritings):
        selector = RewritingSelector(db, strategy="nope")  # type: ignore[arg-type]
        with pytest.raises(PolicyError):
            selector.select(rewritings)


class TestDescribe:
    def test_describe_reports_costs(self, db, rewritings):
        rows = RewritingSelector(db).describe(rewritings)
        assert len(rows) == len(rewritings)
        assert {"rewriting", "views", "evaluation_cost", "citation_size", "parameterized"} <= set(
            rows[0]
        )
        assert rows[0]["citation_size"] <= rows[-1]["citation_size"]
