"""Tests for workload-driven view selection."""

import pytest

from repro.core.view_selection import (
    ViewSelectionProblem,
    select_views_exhaustive,
    select_views_greedy,
)
from repro.query.parser import parse_query
from repro.workloads import gtopdb


@pytest.fixture
def candidates():
    return gtopdb.citation_views(extended=True)


@pytest.fixture
def workload():
    return [
        parse_query("Q1(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"),
        parse_query("Q2(FID, FName, Desc) :- Family(FID, FName, Desc)"),
        parse_query("Q3(FID, Text) :- FamilyIntro(FID, Text)"),
        parse_query(
            "Q4(TName) :- Target(TID, FID, TName, Type)"
        ),
    ]


class TestProblemPrimitives:
    def test_covers_detects_rewritable_queries(self, candidates, workload, paper_db):
        problem = ViewSelectionProblem(candidates, workload, paper_db)
        v2_v3 = [candidates[1], candidates[2]]
        assert problem.covers(v2_v3, 0)      # Q1 via V2 ⋈ V3
        assert problem.covers(v2_v3, 1)      # Q2 via V2
        assert problem.covers(v2_v3, 2)      # Q3 via V3
        assert not problem.covers(v2_v3, 3)  # Q4 needs the Target view

    def test_coverage_fraction(self, candidates, workload, paper_db):
        problem = ViewSelectionProblem(candidates, workload, paper_db)
        assert problem.coverage([candidates[1], candidates[2]]) == pytest.approx(0.75)
        assert problem.coverage([]) == 0.0

    def test_cost_prefers_unparameterized_views(self, candidates, workload, paper_db):
        problem = ViewSelectionProblem(candidates, workload, paper_db)
        assert problem.cost([candidates[0]]) > problem.cost([candidates[1]])

    def test_ambiguity_counts_rewritings(self, candidates, workload, paper_db):
        problem = ViewSelectionProblem(candidates, workload[:1], paper_db)
        # With both V1 and V2 available, Q1 has two rewritings -> ambiguity 2.
        assert problem.ambiguity([candidates[0], candidates[1], candidates[2]]) == pytest.approx(2.0)
        assert problem.ambiguity([candidates[1], candidates[2]]) == pytest.approx(1.0)

    def test_coverage_is_cached(self, candidates, workload, paper_db):
        problem = ViewSelectionProblem(candidates, workload, paper_db)
        problem.covers([candidates[1]], 1)
        assert problem.covers([candidates[1]], 1)
        assert len(problem._cover_cache) == 1


class TestSelection:
    def test_greedy_covers_workload(self, candidates, workload, paper_db):
        problem = ViewSelectionProblem(candidates, workload, paper_db, max_views=4)
        selected = select_views_greedy(problem)
        assert problem.coverage(selected) == pytest.approx(1.0)

    def test_greedy_respects_budget(self, candidates, workload, paper_db):
        problem = ViewSelectionProblem(candidates, workload, paper_db, max_views=2)
        assert len(select_views_greedy(problem)) <= 2

    def test_greedy_matches_exhaustive_on_small_instance(self, candidates, paper_db):
        workload = [
            parse_query("Q2(FID, FName, Desc) :- Family(FID, FName, Desc)"),
            parse_query("Q3(FID, Text) :- FamilyIntro(FID, Text)"),
        ]
        problem = ViewSelectionProblem(candidates[:3], workload, paper_db, max_views=2)
        greedy = select_views_greedy(problem)
        optimal = select_views_exhaustive(problem)
        assert problem.coverage(greedy) == problem.coverage(optimal)

    def test_exhaustive_prefers_concise_views(self, candidates, paper_db):
        workload = [parse_query("Q2(FID, FName, Desc) :- Family(FID, FName, Desc)")]
        problem = ViewSelectionProblem(candidates[:2], workload, paper_db, max_views=1)
        optimal = select_views_exhaustive(problem)
        # V2 (unparameterized) covers the query at lower cost than V1.
        assert [view.name for view in optimal] == ["V2"]

    def test_empty_workload_selects_nothing(self, candidates, paper_db):
        problem = ViewSelectionProblem(candidates, [], paper_db)
        assert select_views_greedy(problem) == []
