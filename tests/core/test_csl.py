"""Tests for the CSL-JSON formatter."""

import json

import pytest

from repro.core.citation import Citation
from repro.core.formatter.csl import citation_to_csl, record_to_csl
from repro.core.record import CitationRecord


@pytest.fixture
def citation():
    records = frozenset(
        {
            CitationRecord(
                {
                    "title": "Calcitonin receptors",
                    "contributors": ("D. Hoyer", "A. Davenport"),
                    "source": "IUPHAR/BPS Guide to PHARMACOLOGY",
                    "publisher": "IUPHAR/BPS",
                    "year": 2017,
                    "identifier": "10.1000/example",
                    "parameters": {"FID": 11},
                }
            ),
            CitationRecord({"title": "Whole database", "url": "https://example.org"}),
        }
    )
    return Citation(records, version="3", timestamp="2026-06-16")


class TestRecordConversion:
    def test_dataset_type_and_title(self):
        item = record_to_csl(CitationRecord({"title": "X"}), "id1")
        assert item["type"] == "dataset"
        assert item["title"] == "X"
        assert item["id"] == "id1"

    def test_people_split_into_family_and_given(self):
        item = record_to_csl(CitationRecord({"authors": ("D. Hoyer",)}), "id1")
        assert item["author"] == [{"family": "Hoyer", "given": "D."}]

    def test_comma_separated_name(self):
        item = record_to_csl(CitationRecord({"authors": ("Hoyer, Daniel",)}), "id1")
        assert item["author"] == [{"family": "Hoyer", "given": "Daniel"}]

    def test_single_token_name_is_literal(self):
        item = record_to_csl(CitationRecord({"contributors": ("Consortium",)}), "id1")
        assert item["author"] == [{"literal": "Consortium"}]

    def test_doi_detection(self):
        with_doi = record_to_csl(CitationRecord({"identifier": "10.1/x"}), "id1")
        without_doi = record_to_csl(CitationRecord({"identifier": "EI-000001"}), "id2")
        assert with_doi["DOI"] == "10.1/x"
        assert without_doi["note"] == "EI-000001"

    def test_year_becomes_issued_date_parts(self):
        item = record_to_csl(CitationRecord({"year": 2017}), "id1")
        assert item["issued"] == {"date-parts": [[2017]]}

    def test_parameters_become_annote(self):
        item = record_to_csl(CitationRecord({"parameters": {"FID": 11}}), "id1")
        assert item["annote"] == "parameters: FID=11"


class TestCitationConversion:
    def test_one_item_per_record(self, citation):
        items = citation_to_csl(citation)
        assert len(items) == 2
        assert len({item["id"] for item in items}) == 2

    def test_version_and_accessed_propagated(self, citation):
        items = citation_to_csl(citation)
        assert all(item.get("version") == "3" or "version" in item for item in items)
        assert all(item["accessed"] == {"literal": "2026-06-16"} for item in items)

    def test_to_csl_json_is_valid_json(self, citation):
        payload = json.loads(citation.to_csl_json())
        assert isinstance(payload, list)
        assert all(item["type"] == "dataset" for item in payload)

    def test_container_title_from_source(self, citation):
        items = citation_to_csl(citation)
        with_source = [item for item in items if "container-title" in item]
        assert with_source and with_source[0]["container-title"].startswith("IUPHAR")
