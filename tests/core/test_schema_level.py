"""Tests for schema-level (query-level) citation reasoning."""

import pytest

from repro import CitationEngine, CitationPolicy
from repro.core.schema_level import (
    cite_schema_level,
    schema_level_parameter_estimate,
)
from repro.errors import NoRewritingError
from repro.workloads import gtopdb


@pytest.fixture
def engine(paper_db, paper_views):
    return CitationEngine(paper_db, paper_views, policy=CitationPolicy.union_everywhere())


class TestSchemaLevelCitation:
    def test_matches_selected_rewriting(self, engine, paper_query):
        result = cite_schema_level(engine, paper_query)
        assert {a.predicate for a in result.rewriting.query.body} == {"V2", "V3"}
        assert result.result_size == 2

    def test_citation_covers_views_of_selected_rewriting(self, engine, paper_query):
        result = cite_schema_level(engine, paper_query)
        views_cited = {record["view"] for record in result.citation.records}
        assert views_cited == {"V2", "V3"}

    def test_distinct_valuations_counted(self, engine, paper_query):
        result = cite_schema_level(engine, paper_query)
        # V2 and V3 are unparameterized: one valuation each.
        assert result.distinct_parameter_valuations == 2
        assert result.coverage() == pytest.approx(1.0)

    def test_parameterized_rewriting_counts_parameter_values(self, paper_db, paper_views):
        # Remove V2 so the engine is forced through the parameterized V1.
        engine = CitationEngine(
            paper_db,
            [paper_views[0], paper_views[2]],
            policy=CitationPolicy.union_everywhere(),
        )
        result = cite_schema_level(
            engine, "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        )
        # 3 distinct FID values through V1 plus the single V3 citation.
        assert result.distinct_parameter_valuations == 4

    def test_no_rewriting_raises(self, engine):
        with pytest.raises(NoRewritingError):
            cite_schema_level(engine, "Q(PName) :- Committee(FID, PName)")

    def test_query_level_agrees_with_tuple_level_on_union_policy(self, engine, paper_query):
        schema_level = cite_schema_level(engine, paper_query)
        tuple_level = engine.cite(paper_query, mode="economical")
        assert schema_level.citation.records == tuple_level.citation.records

    def test_empty_result_has_zero_coverage(self, engine):
        result = cite_schema_level(
            engine, "Q(FName) :- Family(999, FName, Desc), FamilyIntro(999, Text)"
        )
        assert result.result_size == 0
        assert result.coverage() == 0.0


class TestParameterEstimate:
    def test_estimate_upper_bounds_actual(self, engine, paper_query):
        rewritings = engine.rewritings(paper_query)
        for rewriting in rewritings:
            estimate = schema_level_parameter_estimate(engine, rewriting)
            actual = cite_schema_level(engine, paper_query)
            if {a.predicate for a in rewriting.query.body} == {
                a.predicate for a in actual.rewriting.query.body
            }:
                assert estimate >= actual.distinct_parameter_valuations

    def test_estimate_scales_with_database(self, paper_views):
        small_db = gtopdb.generate(families=10)
        large_db = gtopdb.generate(families=50)
        query = "Q(FID, FName, Desc) :- Family(FID, FName, Desc)"
        small_engine = CitationEngine(small_db, paper_views)
        large_engine = CitationEngine(large_db, paper_views)
        small_rewritings = [
            r
            for r in small_engine.rewritings(query)
            if r.uses_parameterized_view()
        ]
        large_rewritings = [
            r
            for r in large_engine.rewritings(query)
            if r.uses_parameterized_view()
        ]
        small_estimate = schema_level_parameter_estimate(small_engine, small_rewritings[0])
        large_estimate = schema_level_parameter_estimate(large_engine, large_rewritings[0])
        assert large_estimate > small_estimate
