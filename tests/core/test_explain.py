"""Tests for citation explanations."""

import pytest

from repro import CitationEngine, CitationPolicy
from repro.core.explain import explain_citation, explain_coverage
from repro.workloads import gtopdb


@pytest.fixture
def engine(paper_db, paper_views):
    return CitationEngine(paper_db, paper_views)


class TestExplainCitation:
    def test_lists_both_rewritings(self, engine, paper_query):
        explanation = explain_citation(engine, paper_query)
        assert len(explanation.rewritings) == 2
        views = {tuple(entry["views"]) for entry in explanation.rewritings}
        assert ("V2", "V3") in views or ("V3", "V2") in views

    def test_selected_rewriting_is_the_cheapest(self, engine, paper_query):
        explanation = explain_citation(engine, paper_query)
        assert "V2" in explanation.selected_rewriting

    def test_tuple_entries_report_bindings(self, engine, paper_query):
        explanation = explain_citation(engine, paper_query)
        by_tuple = {entry["tuple"]: entry for entry in explanation.tuples}
        assert by_tuple[("Calcitonin",)]["bindings"] == 2
        assert by_tuple[("Adenosine",)]["bindings"] == 1

    def test_parameterized_note_present(self, engine, paper_query):
        explanation = explain_citation(engine, paper_query)
        assert any("parameterized" in note for note in explanation.notes)

    def test_text_rendering(self, engine, paper_query):
        text = explain_citation(engine, paper_query).to_text()
        assert "Query:" in text
        assert "Rewritings considered: 2" in text
        assert "Aggregate citation" in text
        assert "*" in text  # the preferred rewriting is marked

    def test_uncovered_query_is_explained(self, engine):
        explanation = explain_citation(engine, "Q(PName) :- Committee(FID, PName)")
        assert explanation.rewritings == []
        assert any("no equivalent rewriting" in note for note in explanation.notes)

    def test_fallback_configuration_is_mentioned(self, paper_db, paper_views):
        engine = CitationEngine(paper_db, paper_views, on_no_rewriting="fallback")
        explanation = explain_citation(engine, "Q(PName) :- Committee(FID, PName)")
        assert any("fall back" in note for note in explanation.notes)

    def test_aggregate_statistics_match_cite(self, paper_db, paper_views, paper_query):
        engine = CitationEngine(
            paper_db, paper_views, policy=CitationPolicy.union_everywhere()
        )
        explanation = explain_citation(engine, paper_query)
        result = engine.cite(paper_query)
        assert explanation.aggregate_records == result.citation.record_count()
        assert explanation.aggregate_size == result.citation.size()


class TestExplainCoverage:
    def test_coverage_report(self, engine):
        workload = [
            gtopdb.paper_query(),
            "Q2(FID, Text) :- FamilyIntro(FID, Text)",
            "Q3(PName) :- Committee(FID, PName)",
        ]
        rows = explain_coverage(engine, workload)
        by_name = {row["query"]: row for row in rows}
        assert by_name["Q"]["covered"] and by_name["Q"]["rewritings"] == 2
        assert by_name["Q2"]["covered"]
        assert not by_name["Q3"]["covered"]
        assert by_name["Q3"]["citation_records"] == 0
