"""Tests for timestamp-based citation evolution."""

import pytest

from repro.core.temporal import (
    TIMESTAMP_ATTRIBUTE,
    TemporalCitationEngine,
    add_timestamps,
    timestamp_view,
    timestamped_database_schema,
    timestamped_schema,
)
from repro.errors import SchemaError
from repro.workloads import gtopdb


@pytest.fixture
def temporal_db():
    """The paper instance stamped with era '2016', plus a family added in '2017'."""
    base = gtopdb.paper_instance()
    db = add_timestamps(base, "2016", relations=["Family", "FamilyIntro"])
    db.insert("Family", (20, "Orexin", "O1", "2017"))
    db.insert("FamilyIntro", (20, "orexin intro", "2017"))
    return db


@pytest.fixture
def temporal_engine(temporal_db):
    views = [
        timestamp_view("Family", temporal_db.schema, extra_parameters=["FID"]),
        timestamp_view("FamilyIntro", temporal_db.schema),
    ]
    return TemporalCitationEngine(temporal_db, views)


class TestSchemaExtension:
    def test_timestamped_schema_appends_attribute(self):
        schema = timestamped_schema(gtopdb.schema().relation("Family"))
        assert schema.attribute_names[-1] == TIMESTAMP_ATTRIBUTE
        assert schema.key == ("FID",)

    def test_timestamped_schema_is_idempotent(self):
        once = timestamped_schema(gtopdb.schema().relation("Family"))
        assert timestamped_schema(once) == once

    def test_database_schema_extension_is_selective(self):
        schema = timestamped_database_schema(gtopdb.schema(), relations=["Family"])
        assert schema.relation("Family").has_attribute(TIMESTAMP_ATTRIBUTE)
        assert not schema.relation("Committee").has_attribute(TIMESTAMP_ATTRIBUTE)

    def test_add_timestamps_stamps_rows(self, temporal_db):
        assert (11, "Calcitonin", "C1", "2016") in temporal_db.relation("Family")
        assert (20, "Orexin", "O1", "2017") in temporal_db.relation("Family")
        # untouched relation keeps its original arity
        assert temporal_db.relation_schema("Committee").arity == 2

    def test_add_timestamps_with_per_relation_values(self):
        db = add_timestamps(
            gtopdb.paper_instance(),
            {"Family": "r1", "FamilyIntro": "r2"},
            relations=["Family", "FamilyIntro"],
        )
        assert (11, "Calcitonin", "C1", "r1") in db.relation("Family")
        assert (11, "1st", "r2") in db.relation("FamilyIntro")


class TestTimestampViews:
    def test_view_requires_timestamp_attribute(self):
        with pytest.raises(SchemaError):
            timestamp_view("Committee", timestamped_database_schema(gtopdb.schema(), ["Family"]))

    def test_view_parameters_include_timestamp(self, temporal_db):
        view = timestamp_view("Family", temporal_db.schema, extra_parameters=["FID"])
        assert set(view.parameter_names()) == {TIMESTAMP_ATTRIBUTE, "FID"}

    def test_citations_differ_across_eras(self, temporal_engine):
        result = temporal_engine.cite(
            "Q(FName) :- Family(FID, FName, Desc, T), FamilyIntro(FID, Text, T2)"
        )
        eras = temporal_engine.eras_cited(
            "Q(FName) :- Family(FID, FName, Desc, T), FamilyIntro(FID, Text, T2)"
        )
        assert eras == {"2016", "2017"}
        # Calcitonin (twice, merged by set semantics), Adenosine and Orexin.
        assert result.result.rows == {("Calcitonin",), ("Adenosine",), ("Orexin",)}

    def test_cite_as_of_restricts_to_one_era(self, temporal_engine):
        query = "Q(FName) :- Family(FID, FName, Desc, T), FamilyIntro(FID, Text, T2)"
        old = temporal_engine.cite_as_of(query, "2016")
        new = temporal_engine.cite_as_of(query, "2017")
        assert ("Orexin",) not in old.result.rows
        assert new.result.rows == {("Orexin",)}
        assert temporal_engine.eras_cited(query) >= {"2016", "2017"}

    def test_timestamp_appears_in_citation_records(self, temporal_engine):
        result = temporal_engine.cite_as_of(
            "Q(FName) :- Family(FID, FName, Desc, T), FamilyIntro(FID, Text, T2)", "2017"
        )
        timestamps = set()
        for record in result.citation.records:
            parameters = dict(record.get("parameters", ()))
            if TIMESTAMP_ATTRIBUTE in parameters:
                timestamps.add(parameters[TIMESTAMP_ATTRIBUTE])
        assert timestamps == {"2017"}
