"""Tests for incremental citation maintenance (citation evolution)."""

import pytest

from repro import CitationEngine, CitationPolicy, IncrementalCitationMaintainer
from repro.workloads import gtopdb


@pytest.fixture
def engine():
    return CitationEngine(
        gtopdb.paper_instance(),
        gtopdb.citation_views(),
        policy=CitationPolicy.union_everywhere(),
    )


@pytest.fixture
def maintainer(engine, paper_query):
    return IncrementalCitationMaintainer(engine, paper_query)


class TestIrrelevantUpdates:
    def test_update_to_unrelated_relation_is_ignored(self, maintainer):
        maintainer.insert("Ligand", (1, "Ligand-1", "peptide"))
        assert maintainer.statistics.updates_ignored >= 1
        assert maintainer.statistics.rows_recomputed == 0
        maintainer.check_consistency()

    def test_committee_update_refreshes_snippets_only(self, maintainer):
        # Committee feeds only the *citation* query of V1, not the view extent:
        # the answer set is unchanged but the new member must appear in the
        # refreshed citation records.
        before_rows = {tc.row for tc in maintainer.result.tuple_citations}
        maintainer.insert("Committee", (13, "New Member"))
        after_rows = {tc.row for tc in maintainer.result.tuple_citations}
        assert before_rows == after_rows
        adenosine = maintainer.result.citation_for(("Adenosine",))
        names = set()
        for record in adenosine.records:
            value = record.as_dict().get("contributors", ())
            names.update(value if isinstance(value, tuple) else (value,))
        assert "New Member" in names
        maintainer.check_consistency()

    def test_duplicate_insert_ignored(self, maintainer):
        maintainer.insert("Family", (11, "Calcitonin", "C1"))
        assert maintainer.statistics.updates_ignored >= 1


class TestInserts:
    def test_new_family_with_intro_adds_row(self, maintainer):
        maintainer.insert("Family", (20, "Orexin", "O1"))
        maintainer.insert("FamilyIntro", (20, "orexin intro"))
        rows = {tc.row for tc in maintainer.result.tuple_citations}
        assert ("Orexin",) in rows
        maintainer.check_consistency()

    def test_family_without_intro_does_not_add_row(self, maintainer):
        maintainer.insert("Family", (21, "Ghrelin", "G1"))
        rows = {tc.row for tc in maintainer.result.tuple_citations}
        assert ("Ghrelin",) not in rows
        maintainer.check_consistency()

    def test_new_binding_for_existing_row_updates_citation(self, maintainer):
        # A third family named Calcitonin adds a binding (and a CV1 citation).
        before = maintainer.result.citation_for(("Calcitonin",))
        maintainer.insert("Family", (30, "Calcitonin", "C3"))
        maintainer.insert("FamilyIntro", (30, "3rd"))
        after = maintainer.result.citation_for(("Calcitonin",))
        assert len(after.records) > len(before.records)
        maintainer.check_consistency()

    def test_statistics_track_recomputed_rows(self, maintainer):
        maintainer.insert("Family", (20, "Orexin", "O1"))
        maintainer.insert("FamilyIntro", (20, "orexin intro"))
        assert maintainer.statistics.rows_recomputed >= 1
        assert maintainer.statistics.rows_added >= 1


class TestDeletes:
    def test_delete_intro_removes_row(self, maintainer):
        maintainer.delete("FamilyIntro", (13, "Adenosine receptors intro"))
        rows = {tc.row for tc in maintainer.result.tuple_citations}
        assert ("Adenosine",) not in rows
        maintainer.check_consistency()

    def test_delete_one_of_two_bindings_keeps_row(self, maintainer):
        maintainer.delete("FamilyIntro", (12, "2nd"))
        rows = {tc.row for tc in maintainer.result.tuple_citations}
        assert ("Calcitonin",) in rows
        citation = maintainer.result.citation_for(("Calcitonin",))
        # only the FID=11 committee citation remains among parameterized records
        parameterized = {r["parameters"] for r in citation.records if "parameters" in r}
        assert parameterized == {(("FID", 11),)}
        maintainer.check_consistency()

    def test_delete_unrelated_row_is_cheap(self, maintainer, engine):
        engine.database.insert("Ligand", (7, "Ligand-7", "peptide"))
        maintainer.delete("Ligand", (7, "Ligand-7", "peptide"))
        assert maintainer.statistics.rows_recomputed == 0

    def test_delete_missing_row_ignored(self, maintainer):
        maintainer.delete("Family", (555, "Nope", "X"))
        assert maintainer.statistics.updates_ignored >= 1


class TestUpdateStreams:
    def test_mixed_stream_stays_consistent(self, maintainer):
        maintainer.insert("Family", (40, "Histamine", "H1"))
        maintainer.insert("FamilyIntro", (40, "histamine intro"))
        maintainer.insert("Ligand", (5, "Ligand-5", "peptide"))
        maintainer.delete("FamilyIntro", (11, "1st"))
        maintainer.insert("Committee", (40, "Curator Q"))
        maintainer.check_consistency()
        assert maintainer.statistics.updates_seen == 5

    def test_aggregate_citation_follows_updates(self, maintainer):
        before_size = maintainer.citation().size()
        maintainer.insert("Family", (50, "Vasopressin", "V1desc"))
        maintainer.insert("FamilyIntro", (50, "vasopressin intro"))
        assert maintainer.citation().size() >= before_size

    def test_recompute_resets_baseline(self, maintainer):
        maintainer.insert("Family", (60, "Melatonin", "M1"))
        maintainer.insert("FamilyIntro", (60, "melatonin intro"))
        result = maintainer.recompute()
        assert ("Melatonin",) in {tc.row for tc in result.tuple_citations}
        assert maintainer.statistics.full_recomputations >= 2
