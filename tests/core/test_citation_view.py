"""Tests for citation views and the default citation function."""

import pytest

from repro.core.citation_view import CitationView, DefaultCitationFunction, views_of
from repro.errors import CitationError
from repro.query.parser import parse_query
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


@pytest.fixture
def v1():
    return gtopdb.citation_views()[0]


@pytest.fixture
def v2():
    return gtopdb.citation_views()[1]


class TestConstruction:
    def test_accepts_textual_queries(self):
        view = CitationView(
            "V(FID, Text) :- FamilyIntro(FID, Text)",
            citation_queries=["CV(D) :- D = \"GtoPdb\""],
        )
        assert view.name == "V"
        assert not view.is_parameterized

    def test_parameter_names(self, v1):
        assert v1.parameter_names() == ("FID",)
        assert v1.is_parameterized

    def test_citation_query_parameters_must_be_declared_by_view(self):
        with pytest.raises(CitationError):
            CitationView(
                "V(FID, FName) :- Family(FID, FName, D)",
                citation_queries=["lambda FID. CV(FID, P) :- Committee(FID, P)"],
            )

    def test_views_of_extracts_relational_views(self):
        views = views_of(gtopdb.citation_views())
        assert [v.name for v in views] == ["V1", "V2", "V3"]


class TestSnippetEvaluation:
    def test_snippet_results_instantiate_parameters(self, db, v1):
        snippets = v1.snippet_results(db, {"FID": 11})
        assert snippets["CV1"].rows == {(11, "D. Hoyer"), (11, "A. Davenport")}

    def test_missing_parameter_raises(self, db, v1):
        with pytest.raises(CitationError):
            v1.snippet_results(db, {})

    def test_unparameterized_view_needs_no_values(self, db, v2):
        snippets = v2.snippet_results(db)
        assert snippets["CV2"].rows == {(gtopdb.DATABASE_TITLE,)}


class TestCitationConstruction:
    def test_parameterized_citation_record(self, db, v1):
        record = v1.citation_for(db, {"FID": 11})
        assert record["contributors"] == ("A. Davenport", "D. Hoyer")
        assert record["title"] == "Calcitonin"
        assert record["view"] == "V1"
        assert record["parameters"] == (("FID", 11),)

    def test_different_parameters_give_different_citations(self, db, v1):
        assert v1.citation_for(db, {"FID": 11}) != v1.citation_for(db, {"FID": 12})

    def test_unparameterized_citation_is_constant(self, db, v2):
        record = v2.citation_for(db)
        assert record["title"] == gtopdb.DATABASE_TITLE
        assert record["publisher"] == "IUPHAR/BPS"

    def test_covers_parameters(self, v1, v2):
        assert v1.covers_parameters({"FID": 11})
        assert not v1.covers_parameters({})
        assert v2.covers_parameters({})


class TestDefaultCitationFunction:
    def test_constants_and_field_map(self, db):
        function = DefaultCitationFunction(
            constants={"publisher": "IUPHAR/BPS"}, field_map={"PName": "contributors"}
        )
        view = CitationView(
            parse_query("lambda FID. V(FID, FName, D) :- Family(FID, FName, D)"),
            citation_queries=[parse_query("lambda FID. CVx(FID, PName) :- Committee(FID, PName)")],
            citation_function=function,
        )
        record = view.citation_for(db, {"FID": 11})
        assert record["publisher"] == "IUPHAR/BPS"
        assert "A. Davenport" in record["contributors"]

    def test_single_value_collapses_to_scalar(self, db):
        view = CitationView(
            parse_query("lambda FID. V(FID, FName, D) :- Family(FID, FName, D)"),
            citation_queries=[
                parse_query("lambda FID. CVname(FID, FName) :- Family(FID, FName, D)")
            ],
        )
        record = view.citation_for(db, {"FID": 13})
        assert record["FName"] == "Adenosine"

    def test_empty_snippet_result_contributes_nothing(self, db):
        view = CitationView(
            parse_query("lambda FID. V(FID, FName, D) :- Family(FID, FName, D)"),
            citation_queries=[parse_query("lambda FID. CVc(FID, P) :- Committee(FID, P)")],
        )
        record = view.citation_for(db, {"FID": 999})
        assert "P" not in record

    def test_no_citation_queries_yields_constants_only(self, db):
        view = CitationView(
            parse_query("V(FID, Text) :- FamilyIntro(FID, Text)"),
            citation_function=DefaultCitationFunction(constants={"title": "Intros"}),
        )
        assert view.citation_for(db) == {"title": "Intros", "view": "V"}

    def test_conflicting_fields_are_collected(self):
        function = DefaultCitationFunction(constants={"title": "fixed"})
        from repro.relational.relation import Relation
        from repro.relational.schema import Attribute, RelationSchema

        snippet = Relation(
            RelationSchema("CV", [Attribute("title", object)]), [("other",)]
        )
        record = function({}, {"CV": snippet})
        assert set(record["title"]) == {"fixed", "other"}
