"""Tests for declarative citation specifications and schema defaults."""

import json

import pytest

from repro import CitationEngine
from repro.core.policy import Combinators
from repro.core.spec import (
    default_views_for_schema,
    dump_specification,
    ensure_schema_has_snippets,
    load_specification,
    validate_views_against_schema,
)
from repro.errors import CitationError
from repro.workloads import gtopdb

SPEC = {
    "policy": {
        "joint": "union",
        "alternative": "union",
        "rewrite_alternative": "min_size",
        "aggregate": "union",
    },
    "views": [
        {
            "view": "lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)",
            "citation_queries": ["lambda FID. CV1(FID, PName) :- Committee(FID, PName)"],
            "constants": {"source": "IUPHAR/BPS Guide to PHARMACOLOGY"},
            "field_map": {"PName": "contributors"},
            "description": "per-family citation",
        },
        {
            "view": "V3(FID, Text) :- FamilyIntro(FID, Text)",
            "citation_queries": ['CV3(D) :- D = "IUPHAR/BPS Guide to PHARMACOLOGY"'],
            "field_map": {"D": "title"},
        },
    ],
}


class TestLoadSpecification:
    def test_load_from_dict(self):
        views, policy = load_specification(SPEC, schema=gtopdb.schema())
        assert [view.name for view in views] == ["V1", "V3"]
        assert views[0].is_parameterized
        assert policy.rewrite_alternative is Combinators.min_size

    def test_load_from_json_string(self):
        views, _policy = load_specification(json.dumps(SPEC))
        assert len(views) == 2

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC), encoding="utf-8")
        views, _policy = load_specification(path, schema=gtopdb.schema())
        assert len(views) == 2

    def test_loaded_views_drive_an_engine(self, paper_db):
        views, policy = load_specification(SPEC, schema=paper_db.schema)
        engine = CitationEngine(paper_db, views, policy=policy)
        result = engine.cite(gtopdb.paper_query())
        assert result.citation.record_count() >= 1

    def test_missing_view_key_rejected(self):
        with pytest.raises(CitationError, match="missing the required 'view' key"):
            load_specification({"views": [{"citation_queries": []}]})

    def test_unparseable_view_rejected(self):
        with pytest.raises(CitationError, match="cannot parse view query"):
            load_specification({"views": [{"view": "not a query"}]})

    def test_unknown_policy_slot_rejected(self):
        bad = dict(SPEC, policy={"nonsense": "union"})
        with pytest.raises(CitationError, match="unknown policy slots"):
            load_specification(bad)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(CitationError, match="unknown top-level"):
            load_specification({"views": SPEC["views"], "stuff": 1})

    def test_empty_views_rejected(self):
        with pytest.raises(CitationError, match="at least one view"):
            load_specification({"views": []})

    def test_schema_mismatch_reported(self):
        bad = {
            "views": [{"view": "V(X) :- NoSuchRelation(X)"}],
        }
        with pytest.raises(CitationError, match="NoSuchRelation"):
            load_specification(bad, schema=gtopdb.schema())

    def test_dump_round_trip(self):
        views, policy = load_specification(SPEC)
        dumped = dump_specification(views, policy)
        reloaded_views, reloaded_policy = load_specification(dumped, schema=gtopdb.schema())
        assert [v.name for v in reloaded_views] == [v.name for v in views]
        assert reloaded_policy.rewrite_alternative is policy.rewrite_alternative


class TestValidation:
    def test_arity_mismatch_detected(self):
        views, _policy = load_specification(
            {"views": [{"view": "V(FID, FName) :- Family(FID, FName)"}]}
        )
        problems = validate_views_against_schema(views, gtopdb.schema())
        assert any("arity" in problem for problem in problems)

    def test_duplicate_view_names_detected(self):
        views, _policy = load_specification(
            {
                "views": [
                    {"view": "V(FID, FName, D) :- Family(FID, FName, D)"},
                    {"view": "V(FID, Text) :- FamilyIntro(FID, Text)"},
                ]
            }
        )
        problems = validate_views_against_schema(views, gtopdb.schema())
        assert any("duplicate view name" in problem for problem in problems)

    def test_clean_specification_has_no_problems(self):
        views, _policy = load_specification(SPEC)
        assert validate_views_against_schema(views, gtopdb.schema()) == []

    def test_snippetless_views_are_flagged(self):
        views = default_views_for_schema(gtopdb.schema(), per_entity=False)
        warnings = ensure_schema_has_snippets(gtopdb.schema(), views)
        assert len(warnings) == len(views)


class TestDefaultViews:
    def test_whole_table_view_per_relation(self):
        views = default_views_for_schema(gtopdb.schema(), per_entity=False)
        assert len(views) == len(gtopdb.schema().relation_names)
        assert all(not view.is_parameterized for view in views)

    def test_per_entity_views_for_relations_with_contributors(self):
        views = default_views_for_schema(gtopdb.schema())
        per_entity = [view for view in views if view.is_parameterized]
        names = {view.name for view in per_entity}
        # Family has Committee (PName), Target has Contributor (PName).
        assert "Per_Family" in names
        assert "Per_Target" in names

    def test_default_views_cover_every_single_table_query(self, paper_db):
        views = default_views_for_schema(paper_db.schema, database_title="GtoPdb")
        engine = CitationEngine(paper_db, views)
        result = engine.cite("Q(FID, FName, Desc) :- Family(FID, FName, Desc)")
        assert result.citation.record_count() >= 1

    def test_default_views_cover_the_paper_query(self, paper_db):
        views = default_views_for_schema(paper_db.schema, database_title="GtoPdb")
        engine = CitationEngine(paper_db, views)
        result = engine.cite(gtopdb.paper_query())
        assert len(result) == 2

    def test_per_entity_citation_credits_contributors(self, paper_db):
        views = default_views_for_schema(paper_db.schema, database_title="GtoPdb")
        per_family = next(view for view in views if view.name == "Per_Family")
        record = per_family.citation_for(paper_db, {"FID": 11})
        contributors = record["contributors"]
        names = contributors if isinstance(contributors, tuple) else (contributors,)
        assert "D. Hoyer" in names
