"""Tests for the citation formatters (text, BibTeX, RIS, XML, JSON)."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.core.citation import Citation
from repro.core.record import CitationRecord


@pytest.fixture
def citation():
    records = frozenset(
        {
            CitationRecord(
                {
                    "title": "Calcitonin",
                    "contributors": ("D. Hoyer", "A. Davenport"),
                    "source": "IUPHAR/BPS Guide to PHARMACOLOGY",
                    "view": "V1",
                    "parameters": {"FID": 11},
                }
            ),
            CitationRecord(
                {"title": "IUPHAR/BPS Guide to PHARMACOLOGY", "publisher": "IUPHAR/BPS", "view": "V2"}
            ),
        }
    )
    return Citation(
        records,
        query_text="Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
        version="3",
        timestamp="2017-05-14T00:00:00+00:00",
    )


class TestText:
    def test_contains_key_fields(self, citation):
        text = citation.to_text()
        assert "D. Hoyer" in text
        assert "IUPHAR/BPS Guide to PHARMACOLOGY" in text
        assert "Database version: 3" in text
        assert "Accessed: 2017" in text
        assert "Query:" in text

    def test_abbreviation_with_et_al(self):
        record = CitationRecord({"contributors": tuple(f"Person {i}" for i in range(10))})
        citation = Citation(frozenset({record}))
        text = citation.to_text(abbreviate_after=3)
        assert "et al." in text
        assert "Person 5" not in text

    def test_internal_view_field_not_rendered(self, citation):
        assert "V2" not in citation.to_text()

    def test_empty_citation_renders_metadata_only(self):
        assert Citation(frozenset()).to_text() == ""


class TestBibtex:
    def test_entries_per_record(self, citation):
        bibtex = citation.to_bibtex()
        assert bibtex.count("@misc{") == 2

    def test_author_field_joined_with_and(self, citation):
        bibtex = citation.to_bibtex()
        assert "D. Hoyer and A. Davenport" in bibtex

    def test_braces_escaped(self):
        record = CitationRecord({"title": "curly {braces}"})
        bibtex = Citation(frozenset({record})).to_bibtex()
        assert "\\{braces\\}" in bibtex

    def test_keys_are_unique(self, citation):
        bibtex = citation.to_bibtex(key_prefix="x")
        keys = [line.split("{")[1].rstrip(",") for line in bibtex.splitlines() if line.startswith("@misc")]
        assert len(keys) == len(set(keys))


class TestRis:
    def test_type_is_data(self, citation):
        ris = citation.to_ris()
        assert ris.count("TY  - DATA") == 2
        assert ris.count("ER  - ") == 2

    def test_contributors_become_au_lines(self, citation):
        assert "AU  - D. Hoyer" in citation.to_ris()

    def test_parameters_noted(self, citation):
        assert "parameters: FID=11" in citation.to_ris()


class TestXml:
    def test_well_formed(self, citation):
        root = ET.fromstring(citation.to_xml())
        assert root.tag == "citation"
        assert root.attrib["version"] == "3"
        assert len(root.findall("record")) == 2

    def test_escaping(self):
        record = CitationRecord({"title": "a < b & c"})
        root = ET.fromstring(Citation(frozenset({record})).to_xml())
        assert root.find("record/title").text == "a < b & c"

    def test_parameters_element(self, citation):
        root = ET.fromstring(citation.to_xml())
        parameters = root.findall("record/parameters/parameter")
        assert any(p.attrib["name"] == "FID" and p.text == "11" for p in parameters)


class TestJson:
    def test_round_trips_through_json(self, citation):
        payload = json.loads(citation.to_json())
        assert payload["version"] == "3"
        assert payload["size"] == citation.size()
        assert len(payload["records"]) == 2

    def test_parameters_become_object(self, citation):
        payload = json.loads(citation.to_json())
        parameterized = [r for r in payload["records"] if "parameters" in r]
        assert parameterized[0]["parameters"] == {"FID": 11}

    def test_contributors_become_list(self, citation):
        payload = json.loads(citation.to_json())
        with_contributors = [r for r in payload["records"] if "contributors" in r]
        assert isinstance(with_contributors[0]["contributors"], list)


class TestCitationObject:
    def test_size_and_record_count(self, citation):
        assert citation.record_count() == 2
        assert citation.size() >= 5

    def test_with_fixity(self, citation):
        pinned = citation.with_fixity("7", "2026-06-16")
        assert pinned.version == "7"
        assert pinned.records == citation.records

    def test_iteration_is_deterministic(self, citation):
        assert list(citation) == list(citation)

    def test_symbolic_empty_without_expression(self, citation):
        assert citation.symbolic() == ""
