"""Tests for citation-size estimation, abbreviation and reference citations."""

import pytest

from repro import CitationEngine, CitationPolicy
from repro.core.citation import Citation
from repro.core.record import CitationRecord
from repro.core.size import (
    abbreviate_citation,
    abbreviate_record,
    citation_digest,
    estimate_citation_size,
    rank_rewritings_by_size,
    reference_citation,
)
from repro.workloads import gtopdb


@pytest.fixture
def rewritings(paper_engine, paper_query):
    return paper_engine.rewritings(paper_query)


class TestEstimates:
    def test_unparameterized_rewriting_is_smaller(self, paper_db, rewritings):
        sizes = {
            frozenset(a.predicate for a in r.query.body): estimate_citation_size(r, paper_db)
            for r in rewritings
        }
        assert sizes[frozenset({"V2", "V3"})] < sizes[frozenset({"V1", "V3"})]

    def test_rank_rewritings_by_size(self, paper_db, rewritings):
        ranked = rank_rewritings_by_size(rewritings, paper_db)
        assert [s for _r, s in ranked] == sorted(s for _r, s in ranked)
        assert {a.predicate for a in ranked[0][0].query.body} == {"V2", "V3"}

    def test_parameterized_estimate_grows_with_data(self, paper_views, rewritings):
        with_v1 = next(
            r for r in rewritings if any(a.predicate == "V1" for a in r.query.body)
        )
        small = estimate_citation_size(with_v1, gtopdb.generate(families=10))
        large = estimate_citation_size(with_v1, gtopdb.generate(families=200))
        assert large > small

    def test_actual_citation_size_tracks_estimate(self, paper_views):
        # Under the union policy, citing through V1 produces one record per
        # family while V2 produces a single record: measured sizes must agree
        # with the estimated ordering.
        db = gtopdb.generate(families=30, duplicate_name_fraction=0.0)
        engine_v1 = CitationEngine(
            db, [paper_views[0], paper_views[2]], policy=CitationPolicy.union_everywhere()
        )
        engine_v2 = CitationEngine(
            db, [paper_views[1], paper_views[2]], policy=CitationPolicy.union_everywhere()
        )
        query = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        size_v1 = engine_v1.cite(query).citation.record_count()
        size_v2 = engine_v2.cite(query).citation.record_count()
        assert size_v1 > size_v2
        assert size_v1 >= 30  # one citation per family
        assert size_v2 == 2  # V2 + V3 records


class TestAbbreviation:
    def test_abbreviate_record_truncates_long_lists(self):
        record = CitationRecord({"contributors": tuple(f"P{i}" for i in range(10))})
        abbreviated = abbreviate_record(record, max_names=3)
        assert len(abbreviated["contributors"]) == 4
        assert abbreviated["contributors"][-1] == "et al."

    def test_short_lists_unchanged(self):
        record = CitationRecord({"authors": ("A", "B")})
        assert abbreviate_record(record, max_names=3) == record

    def test_abbreviate_citation_preserves_metadata(self):
        record = CitationRecord({"contributors": tuple(f"P{i}" for i in range(10))})
        citation = Citation(frozenset({record}), version="5", query_text="Q")
        abbreviated = abbreviate_citation(citation)
        assert abbreviated.version == "5"
        assert abbreviated.query_text == "Q"
        assert abbreviated.size() < citation.size()


class TestReferenceCitations:
    def test_reference_is_compact(self):
        records = frozenset(
            CitationRecord({"title": f"Record {i}", "contributors": (f"A{i}", f"B{i}")})
            for i in range(50)
        )
        citation = Citation(records, query_text="Q")
        reference = reference_citation(citation)
        assert reference.record_count() == 1
        assert reference.size() < citation.size()
        only = next(iter(reference.records))
        assert only["records"] == 50

    def test_digest_is_stable_and_content_sensitive(self):
        a = Citation(frozenset({CitationRecord({"title": "X"})}))
        b = Citation(frozenset({CitationRecord({"title": "X"})}))
        c = Citation(frozenset({CitationRecord({"title": "Y"})}))
        assert citation_digest(a) == citation_digest(b)
        assert citation_digest(a) != citation_digest(c)

    def test_reference_identifier_contains_digest(self):
        citation = Citation(frozenset({CitationRecord({"title": "X"})}))
        reference = reference_citation(citation, resolver_prefix="cite://")
        identifier = next(iter(reference.records))["identifier"]
        assert identifier.startswith("cite://")
        assert citation_digest(citation) in identifier
