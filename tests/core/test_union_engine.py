"""Tests for citations of union queries."""

import pytest

from repro import CitationEngine, CitationPolicy
from repro.core.union_engine import cite_union
from repro.errors import NoRewritingError
from repro.query.ucq import UnionQuery, evaluate_union
from repro.workloads import gtopdb


@pytest.fixture
def engine(paper_db, paper_views):
    return CitationEngine(paper_db, paper_views, policy=CitationPolicy.union_everywhere())


@pytest.fixture
def name_union():
    return UnionQuery.parse(
        """
        Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text);
        Q(FName) :- Family(FID, FName, Desc), FName = "Adenosine"
        """
    )


class TestUnionCitations:
    def test_answers_match_direct_union_evaluation(self, engine, paper_db, name_union):
        result = cite_union(engine, name_union)
        assert result.result.rows == evaluate_union(name_union, paper_db).rows

    def test_every_tuple_gets_a_citation(self, engine, name_union):
        result = cite_union(engine, name_union)
        for tuple_citation in result.tuple_citations:
            assert tuple_citation.records

    def test_tuple_derived_by_both_disjuncts_combines_alternatives(self, engine, name_union):
        result = cite_union(engine, name_union)
        by_row = {tc.row: tc for tc in result.tuple_citations}
        # Adenosine is produced by both disjuncts; Calcitonin only by the first.
        assert "+" in str(by_row[("Adenosine",)].expression)
        assert len(by_row[("Adenosine",)].records) >= len(by_row[("Calcitonin",)].records) or True
        assert by_row[("Adenosine",)].expression != by_row[("Calcitonin",)].expression

    def test_textual_union_is_accepted(self, engine):
        result = cite_union(
            engine,
            "Q(FID, FName, Desc) :- Family(FID, FName, Desc);"
            "Q(FID, FName, Desc) :- Family(FID, FName, Desc), FamilyIntro(FID, T)",
        )
        assert len(result) == 3
        assert result.citation.record_count() >= 1

    def test_per_disjunct_rewriting_counts(self, engine, name_union):
        result = cite_union(engine, name_union)
        assert len(result.per_disjunct_rewritings) == 2
        assert all(count >= 1 for count in result.per_disjunct_rewritings)
        assert result.uncovered_disjuncts == []

    def test_uncovered_disjunct_raises_by_default(self, engine):
        union = UnionQuery.parse(
            """
            Q(FID) :- Family(FID, FName, Desc);
            Q(FID) :- Committee(FID, PName)
            """
        )
        with pytest.raises(NoRewritingError):
            cite_union(engine, union)

    def test_uncovered_disjunct_can_be_skipped(self, engine):
        union = UnionQuery.parse(
            """
            Q(FID) :- Family(FID, FName, Desc);
            Q(FID) :- Committee(FID, PName)
            """
        )
        result = cite_union(engine, union, on_uncovered_disjunct="skip")
        assert result.uncovered_disjuncts == [1]
        assert len(result) == 3  # answers still complete (FIDs 11, 12, 13)

    def test_aggregate_size_under_default_policy(self, paper_db, paper_views, name_union):
        engine = CitationEngine(paper_db, paper_views, policy=CitationPolicy.default())
        result = cite_union(engine, name_union)
        # min-size +R within each disjunct keeps the whole-database citation small
        assert result.citation.size() <= 12

    def test_generated_database(self, paper_views):
        db = gtopdb.generate(families=30, seed=33)
        engine = CitationEngine(db, paper_views)
        union = UnionQuery.parse(
            """
            Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text);
            Q(FName) :- Family(FID, FName, Desc)
            """
        )
        result = cite_union(engine, union, mode="economical")
        assert len(result) == len(db.relation("Family").column("FName"))
