"""Tests for citation records."""

import pytest

from repro.core.record import CitationRecord, record_set, set_size
from repro.errors import CitationError


class TestConstruction:
    def test_mapping_protocol(self):
        record = CitationRecord({"title": "GtoPdb", "year": 2017})
        assert record["title"] == "GtoPdb"
        assert len(record) == 2
        assert set(record) == {"title", "year"}

    def test_lists_become_tuples(self):
        record = CitationRecord({"authors": ["B", "A"]})
        assert record["authors"] == ("A", "B")

    def test_sets_become_sorted_tuples(self):
        record = CitationRecord({"contributors": {"Z", "A"}})
        assert record["contributors"] == ("A", "Z")

    def test_nested_dicts_are_frozen(self):
        record = CitationRecord({"parameters": {"FID": 11}})
        assert record["parameters"] == (("FID", 11),)

    def test_invalid_field_name(self):
        with pytest.raises(CitationError):
            CitationRecord({"": "value"})

    def test_hashable_and_usable_in_sets(self):
        a = CitationRecord({"title": "X", "authors": ["P", "Q"]})
        b = CitationRecord({"authors": ["P", "Q"], "title": "X"})
        assert a == b
        assert len({a, b}) == 1

    def test_equality_with_plain_mapping(self):
        assert CitationRecord({"title": "X"}) == {"title": "X"}


class TestManipulation:
    def test_with_fields(self):
        record = CitationRecord({"title": "X"}).with_fields(year=2017)
        assert record["year"] == 2017
        assert record["title"] == "X"

    def test_without_fields(self):
        record = CitationRecord({"title": "X", "year": 2017}).without_fields("year", "missing")
        assert "year" not in record

    def test_merge_disjoint_fields(self):
        merged = CitationRecord({"title": "X"}).merge(CitationRecord({"year": 2017}))
        assert merged == {"title": "X", "year": 2017}

    def test_merge_conflicting_fields_collects_values(self):
        merged = CitationRecord({"title": "X"}).merge(CitationRecord({"title": "Y"}))
        assert merged["title"] == ("X", "Y")

    def test_merge_equal_values_do_not_duplicate(self):
        merged = CitationRecord({"title": "X"}).merge(CitationRecord({"title": "X"}))
        assert merged["title"] == "X"

    def test_merge_tuple_values(self):
        merged = CitationRecord({"authors": ["A"]}).merge(CitationRecord({"authors": ["B", "A"]}))
        assert set(merged["authors"]) == {"A", "B"}


class TestMeasurement:
    def test_size_counts_atomic_values(self):
        record = CitationRecord({"title": "X", "authors": ["A", "B", "C"]})
        assert record.size() == 4

    def test_text_length_positive(self):
        assert CitationRecord({"title": "X"}).text_length() > 0

    def test_set_size(self):
        records = record_set({"title": "X"}, {"authors": ["A", "B"]})
        assert set_size(records) == 3

    def test_record_set_accepts_records_and_mappings(self):
        record = CitationRecord({"title": "X"})
        assert record_set(record, {"title": "X"}) == frozenset({record})

    def test_as_dict_round_trip(self):
        record = CitationRecord({"title": "X", "authors": ["A"]})
        assert CitationRecord(record.as_dict()) == record
