"""Tests for citation-combination policies."""

import pytest

from repro.core.expression import Alternative, CitationAtom, Joint, RewriteAlternative
from repro.core.policy import CitationPolicy, Combinators
from repro.core.record import CitationRecord, record_set
from repro.errors import PolicyError


def rec(**fields):
    return CitationRecord(fields)


def atom(view, record, **params):
    return CitationAtom(view, params, record)


class TestCombinators:
    def test_union(self):
        a = record_set(rec(title="A"))
        b = record_set(rec(title="B"), rec(title="A"))
        assert Combinators.union([a, b]) == record_set(rec(title="A"), rec(title="B"))

    def test_union_of_nothing_is_empty(self):
        assert Combinators.union([]) == frozenset()

    def test_join_merges_fields(self):
        a = record_set(rec(title="GtoPdb"))
        b = record_set(rec(contributors=("X", "Y")))
        joined = Combinators.join([a, b])
        assert len(joined) == 1
        merged = next(iter(joined))
        assert merged["title"] == "GtoPdb"
        assert merged["contributors"] == ("X", "Y")

    def test_join_ignores_empty_operands(self):
        a = record_set(rec(title="GtoPdb"))
        assert Combinators.join([a, frozenset()]) == a

    def test_min_size_picks_smallest_set(self):
        small = record_set(rec(title="one"))
        large = record_set(rec(title="a", extra="b"), rec(title="c"))
        assert Combinators.min_size([large, small]) == small

    def test_min_size_skips_empty_operands(self):
        small = record_set(rec(title="one"))
        assert Combinators.min_size([frozenset(), small]) == small

    def test_min_size_deterministic_tie_break(self):
        a = record_set(rec(title="aaa"))
        b = record_set(rec(title="bbb"))
        assert Combinators.min_size([a, b]) == Combinators.min_size([b, a])

    def test_max_coverage(self):
        small = record_set(rec(title="one"))
        large = record_set(rec(title="a"), rec(title="b"))
        assert Combinators.max_coverage([small, large]) == large

    def test_first(self):
        small = record_set(rec(title="one"))
        assert Combinators.first([frozenset(), small]) == small
        assert Combinators.first([]) == frozenset()

    def test_named_lookup(self):
        assert Combinators.named("union") is Combinators.union
        with pytest.raises(PolicyError):
            Combinators.named("does_not_exist")


class TestPolicyEvaluation:
    def _expression(self):
        committee_11 = rec(contributors=("D. Hoyer",), view="V1")
        committee_12 = rec(contributors=("S. Alexander",), view="V1")
        whole_db = rec(title="GtoPdb", view="V2")
        intro = rec(title="GtoPdb", view="V3")
        q1 = Alternative(
            (
                Joint((atom("V1", committee_11, FID=11), atom("V3", intro))),
                Joint((atom("V1", committee_12, FID=12), atom("V3", intro))),
            )
        )
        q2 = Joint((atom("V2", whole_db), atom("V3", intro)))
        return RewriteAlternative((q1, q2)), whole_db, intro

    def test_default_policy_prefers_small_rewriting(self):
        expression, whole_db, intro = self._expression()
        result = CitationPolicy.default().evaluate(expression)
        assert result == frozenset({whole_db, intro})

    def test_union_everywhere_keeps_all_alternatives(self):
        expression, _whole_db, _intro = self._expression()
        result = CitationPolicy.union_everywhere().evaluate(expression)
        assert len(result) == 4  # V1(11), V1(12), V2, V3 records

    def test_joined_policy_merges_into_single_record(self):
        expression, _whole_db, _intro = self._expression()
        result = CitationPolicy.joined().evaluate(expression)
        assert len(result) == 1

    def test_from_names(self):
        policy = CitationPolicy.from_names("join", "union", "max_coverage", "union")
        expression, _whole_db, _intro = self._expression()
        result = policy.evaluate(expression)
        assert result  # max_coverage keeps the larger (V1-based) alternative
        assert policy.name == "join/union/max_coverage/union"

    def test_atom_without_record_evaluates_to_empty(self):
        policy = CitationPolicy.default()
        assert policy.evaluate(CitationAtom("V9", {})) == frozenset()

    def test_unknown_node_type_rejected(self):
        class Strange:
            def children(self):
                return ()

        with pytest.raises(PolicyError):
            CitationPolicy.default().evaluate(Strange())
