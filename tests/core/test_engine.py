"""Tests for the citation engine (the paper's Definitions 2.1 and 2.2)."""

import pytest

from repro import CitationEngine, CitationPolicy, parse_query
from repro.core.record import CitationRecord
from repro.core.rewriting_selector import RewritingSelector
from repro.errors import CitationError, NoRewritingError
from repro.query.evaluator import evaluate


class TestRewritings:
    def test_paper_query_has_two_rewritings(self, paper_engine, paper_query):
        rewritings = paper_engine.rewritings(paper_query)
        used = {frozenset(a.predicate for a in r.query.body) for r in rewritings}
        assert used == {frozenset({"V1", "V3"}), frozenset({"V2", "V3"})}

    def test_bucket_backend_gives_same_rewritings(self, paper_db, paper_views, paper_query):
        engine = CitationEngine(paper_db, paper_views, rewriter="bucket")
        assert len(engine.rewritings(paper_query)) == 2

    def test_accepts_query_text(self, paper_engine):
        rewritings = paper_engine.rewritings(
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        )
        assert len(rewritings) == 2


class TestCitationRecords:
    def test_record_cache_reuses_objects(self, paper_engine):
        first = paper_engine.citation_record("V1", {"FID": 11})
        second = paper_engine.citation_record("V1", {"FID": 11})
        assert first is second

    def test_unknown_view_raises(self, paper_engine):
        with pytest.raises(CitationError):
            paper_engine.citation_record("V999", {})

    def test_invalidate_caches_clears_records(self, paper_engine):
        first = paper_engine.citation_record("V1", {"FID": 11})
        paper_engine.invalidate_caches()
        assert paper_engine.citation_record("V1", {"FID": 11}) is not first


class TestCite:
    def test_result_matches_direct_evaluation(self, paper_engine, paper_query, paper_db):
        result = paper_engine.cite(paper_query)
        direct = evaluate(paper_query, paper_db)
        assert result.result.rows == direct.rows

    def test_per_tuple_expressions_match_paper(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query)
        expressions = {tc.row: str(tc.expression) for tc in result.tuple_citations}
        assert expressions[("Calcitonin",)] == (
            "((CV1(11)·CV3) + (CV1(12)·CV3)) +R (CV2·CV3)"
        )
        assert expressions[("Adenosine",)] == "(CV1(13)·CV3) +R (CV2·CV3)"

    def test_default_policy_selects_v2_citation(self, paper_engine, paper_query):
        # Final step of the paper's example: with union for ·/+/Agg and
        # min-estimated-size for +R, the citation through Q2 (V2·V3) wins.
        result = paper_engine.cite(paper_query)
        views_cited = {record["view"] for record in result.citation.records}
        assert views_cited == {"V2", "V3"}

    def test_union_policy_keeps_committee_citations(self, paper_db, paper_views, paper_query):
        engine = CitationEngine(
            paper_db, paper_views, policy=CitationPolicy.union_everywhere()
        )
        result = engine.cite(paper_query)
        views_cited = {record["view"] for record in result.citation.records}
        assert views_cited == {"V1", "V2", "V3"}
        contributors = set()
        for record in result.citation.records:
            if "contributors" not in record:
                continue
            value = record["contributors"]
            contributors.update(value if isinstance(value, tuple) else (value,))
        assert {"D. Hoyer", "A. Davenport", "S. Alexander"} <= contributors

    def test_citation_for_row_lookup(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query)
        tc = result.citation_for(("Calcitonin",))
        assert tc.row == ("Calcitonin",)
        with pytest.raises(CitationError):
            result.citation_for(("Nope",))

    def test_tuple_citation_wrapper(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query)
        citation = result.citation_for(("Adenosine",)).citation()
        assert citation.record_count() >= 1
        assert citation.size() == result.citation_for(("Adenosine",)).size()

    def test_economical_mode_uses_single_rewriting(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query, mode="economical")
        assert len(result.rewritings) == 1
        assert all("+R" not in str(tc.expression) for tc in result.tuple_citations)
        views_cited = {record["view"] for record in result.citation.records}
        assert views_cited == {"V2", "V3"}

    def test_formal_and_economical_agree_on_answer(self, paper_engine, paper_query):
        formal = paper_engine.cite(paper_query, mode="formal")
        economical = paper_engine.cite(paper_query, mode="economical")
        assert formal.result.rows == economical.result.rows

    def test_identity_query_over_family(self, paper_engine):
        result = paper_engine.cite("Q(FID, FName, Desc) :- Family(FID, FName, Desc)")
        assert len(result) == 3
        # Both V1 and V2 rewrite the query; the default policy keeps the small one.
        assert {r["view"] for r in result.citation.records} == {"V2"}

    def test_parameterized_citation_per_family(self, paper_db, paper_views):
        engine = CitationEngine(
            paper_db,
            paper_views,
            policy=CitationPolicy.union_everywhere(),
            selector=RewritingSelector(paper_db, strategy="all"),
        )
        result = engine.cite("Q(FID, FName, Desc) :- Family(FID, FName, Desc)")
        tc = result.citation_for((11, "Calcitonin", "C1"))
        parameterized = [r for r in tc.records if "parameters" in r]
        assert any(r["parameters"] == (("FID", 11),) for r in parameterized)

    def test_aggregate_size_nondecreasing_in_tuples(self, paper_engine):
        small = paper_engine.cite("Q(FName) :- Family(11, FName, Desc), FamilyIntro(11, Text)")
        large = paper_engine.cite("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        assert large.citation.size() >= small.citation.size()


class TestNoRewriting:
    def test_error_mode(self, paper_engine):
        with pytest.raises(NoRewritingError):
            paper_engine.cite("Q(PName) :- Committee(FID, PName)")

    def test_fallback_mode(self, paper_db, paper_views):
        fallback = CitationRecord({"title": "GtoPdb (whole database)"})
        engine = CitationEngine(
            paper_db, paper_views, on_no_rewriting="fallback", fallback_citation=fallback
        )
        result = engine.cite("Q(PName) :- Committee(FID, PName)")
        assert result.used_fallback
        assert result.citation.records == frozenset({fallback})
        assert len(result) == 4  # committee rows are still returned

    def test_fallback_without_custom_record(self, paper_db, paper_views):
        engine = CitationEngine(paper_db, paper_views, on_no_rewriting="fallback")
        result = engine.cite("Q(PName) :- Committee(FID, PName)")
        assert result.citation.record_count() == 1


class TestValidation:
    def test_engine_requires_views(self, paper_db):
        with pytest.raises(CitationError):
            CitationEngine(paper_db, [])

    def test_duplicate_view_names_rejected(self, paper_db, paper_views):
        with pytest.raises(CitationError):
            CitationEngine(paper_db, paper_views + [paper_views[0]])

    def test_rewriting_with_uncovered_view_rejected(self, paper_engine, paper_views):
        # Build a rewriting that mentions a view the engine does not know.
        from repro.rewriting.rewriting import Rewriting
        from repro.rewriting.view import View

        stray_view = View(parse_query("VX(FID, Text) :- FamilyIntro(FID, Text)"))
        rewriting = Rewriting(parse_query("Q(FID, Text) :- VX(FID, Text)"), [stray_view])
        with pytest.raises(CitationError):
            paper_engine.citation_for_binding(rewriting, {})


class TestCompiledJoinPrograms:
    def test_execute_attaches_programs_to_the_plan(self, paper_db, paper_views, paper_query):
        # verify_plans="off": with verification on (the suite default) the
        # verifier compiles programs eagerly, which is exactly the laziness
        # this test pins down for the production default.
        engine = CitationEngine(paper_db, paper_views, verify_plans="off")
        plan = engine.compile_plan(paper_query)
        assert all(
            plan.compiled_program(i) is None for i in range(len(plan.rewritings))
        )
        engine.execute_plan(plan)
        assert all(
            plan.compiled_program(i) is not None for i in range(len(plan.rewritings))
        )

    def test_repeated_execution_reuses_the_programs(self, paper_engine, paper_query):
        plan = paper_engine.compile_plan(paper_query)
        first = paper_engine.execute_plan(plan)
        programs = [plan.compiled_program(i) for i in range(len(plan.rewritings))]
        second = paper_engine.execute_plan(plan)
        assert [
            plan.compiled_program(i) for i in range(len(plan.rewritings))
        ] == programs
        assert first.result.rows == second.result.rows

    def test_programs_survive_data_changes(self, paper_engine, paper_query, paper_db):
        plan = paper_engine.compile_plan(paper_query)
        paper_engine.execute_plan(plan)
        programs = [plan.compiled_program(i) for i in range(len(plan.rewritings))]
        paper_db.insert("Family", (60, "Fresh", "d"))
        paper_db.insert("FamilyIntro", (60, "fresh intro"))
        result = paper_engine.execute_plan(plan)
        # Same program objects, fresh data.
        assert [
            plan.compiled_program(i) for i in range(len(plan.rewritings))
        ] == programs
        assert ("Fresh",) in result.result.rows

    def test_plans_with_programs_stay_equal_and_hashable(self, paper_engine, paper_query):
        plan = paper_engine.compile_plan(paper_query)
        twin = paper_engine.compile_plan(paper_query)
        assert plan == twin
        paper_engine.execute_plan(plan)
        assert plan == twin  # cached programs are not part of plan identity
        assert hash(plan) == hash(twin)

    def test_view_indexes_are_shared_across_executions(self, paper_engine, paper_query):
        paper_engine.cite(paper_query)
        manager = paper_engine._index_manager
        built = len(manager)
        if built:
            view_name, positions = next(iter(manager._extra))
            index = manager._extra[(view_name, positions)][0]
            paper_engine.cite(paper_query)
            assert manager._extra[(view_name, positions)][0] is index

    def test_invalidate_caches_drops_view_indexes(self, paper_engine, paper_query):
        paper_engine.cite(paper_query)
        paper_engine.invalidate_caches()
        assert len(paper_engine._index_manager) == 0


class TestReducedProgramsOnPlans:
    def test_execute_attaches_reduced_programs(self, paper_db, paper_views, paper_query):
        # verify_plans="off": strict verification (the suite default) would
        # attach the reduced programs eagerly at compile time.
        paper_engine = CitationEngine(paper_db, paper_views, verify_plans="off")
        plan = paper_engine.compile_plan(paper_query)
        assert all(
            plan.compiled_reduced(i) is None for i in range(len(plan.rewritings))
        )
        paper_engine.execute_plan(plan)
        reduced = [plan.compiled_reduced(i) for i in range(len(plan.rewritings))]
        assert all(r is not None for r in reduced)
        # Rewritings over the citation views are acyclic conjunctive queries.
        assert all(r.acyclic for r in reduced)
        paper_engine.execute_plan(plan)
        assert [
            plan.compiled_reduced(i) for i in range(len(plan.rewritings))
        ] == reduced

    @pytest.mark.parametrize("strategy", ["program", "reduced", "auto"])
    def test_every_strategy_produces_the_same_citations(
        self, paper_db, paper_views, paper_query, strategy
    ):
        baseline = CitationEngine(paper_db, paper_views).cite(paper_query)
        engine = CitationEngine(paper_db, paper_views, strategy=strategy)
        result = engine.cite(paper_query)
        assert result.result.rows == baseline.result.rows
        assert result.citation.records == baseline.citation.records
        by_row = {tc.row: tc.records for tc in result.tuple_citations}
        baseline_by_row = {tc.row: tc.records for tc in baseline.tuple_citations}
        assert by_row == baseline_by_row


class TestPreludesOnPlans:
    """Warm-prelude state rides compiled plans through the serving layer.

    The paper micro-instance is densely joining, so ``strategy="auto"``
    correctly refuses the prelude there — the warm-path tests force
    ``"reduced"`` to exercise the cache itself.
    """

    @pytest.fixture
    def reduced_engine(self, paper_db, paper_views):
        return CitationEngine(paper_db, paper_views, strategy="reduced")

    def test_execute_attaches_and_warms_preludes(self, reduced_engine, paper_query):
        paper_engine = reduced_engine
        plan = paper_engine.compile_plan(paper_query)
        assert all(
            plan.compiled_prelude(i) is None for i in range(len(plan.rewritings))
        )
        paper_engine.execute_plan(plan)
        preludes = [
            plan.compiled_prelude(i) for i in range(len(plan.rewritings))
        ]
        assert all(p is not None for p in preludes)
        paper_engine.execute_plan(plan)
        assert [
            plan.compiled_prelude(i) for i in range(len(plan.rewritings))
        ] == preludes
        assert all(p.hits >= 1 for p in preludes)

    def test_plan_preludes_are_shared_with_plain_cite(self, reduced_engine, paper_query):
        # cite() compiles a fresh plan per call, but the warmed prelude is
        # the evaluator's canonical one, so repeated cite() calls hit too.
        paper_engine = reduced_engine
        paper_engine.cite(paper_query)
        plan = paper_engine.compile_plan(paper_query)
        paper_engine.execute_plan(plan)
        assert any(
            plan.compiled_prelude(i).hits >= 1
            for i in range(len(plan.rewritings))
        )

    def test_data_drift_partially_refreshes_instead_of_recomputing(
        self, reduced_engine, paper_query, paper_db
    ):
        paper_engine = reduced_engine
        plan = paper_engine.compile_plan(paper_query)
        baseline = paper_engine.execute_plan(plan)
        paper_db.insert("Family", (99, "Novel family", "d"))
        paper_db.insert("FamilyIntro", (99, "intro"))
        drifted = paper_engine.execute_plan(plan)
        assert ("Novel family",) in drifted.result.rows
        assert baseline.result.rows <= drifted.result.rows
        preludes = [
            plan.compiled_prelude(i) for i in range(len(plan.rewritings))
        ]
        # The views re-materialise wholesale (new Relation objects), so the
        # refresh is a miss — but it reuses whatever did not change.
        assert all(p.misses >= 1 for p in preludes if p is not None)

    def test_strategy_metrics_surface_on_the_engine(self, paper_engine, paper_query):
        paper_engine.cite(paper_query)
        paper_engine.cite(paper_query)
        snapshot = paper_engine.evaluation_metrics.snapshot()
        picks = snapshot["picks"]
        assert picks["program"] + picks["reduced"] >= 2
        lookups = (
            snapshot["prelude_cache"]["hits"] + snapshot["prelude_cache"]["misses"]
        )
        assert lookups >= 0  # shape is present even when auto picked program


class TestInvalidationClearsWarmState:
    """Regression: invalidate_caches() must retire every evaluator cache."""

    def test_invalidate_clears_the_evaluator_caches(self, paper_engine, paper_query):
        paper_engine.cite(paper_query)
        evaluator = paper_engine._evaluator
        assert evaluator is not None and evaluator._programs
        paper_engine.invalidate_caches()
        assert evaluator._programs == {}
        assert evaluator._reduced == {}
        assert evaluator._preludes == {}
        assert len(paper_engine._statistics) == 0

    def test_stale_epoch_plans_drop_their_preludes(self, paper_engine, paper_query):
        plan = paper_engine.compile_plan(paper_query)
        paper_engine.execute_plan(plan)
        warmed = [
            plan.compiled_prelude(i) for i in range(len(plan.rewritings))
        ]
        assert any(p is not None for p in warmed)
        paper_engine.invalidate_caches()
        # The engine cannot reach the plan at invalidation time; the next
        # execution notices the epoch bump and rebuilds the state cold.
        result = paper_engine.execute_plan(plan)
        rebuilt = [
            plan.compiled_prelude(i) for i in range(len(plan.rewritings))
        ]
        assert all(
            p is None or p is not w for p, w in zip(rebuilt, warmed)
        )
        assert result.result.rows == paper_engine.cite(paper_query).result.rows

    def test_results_stay_exact_across_invalidation_and_drift(
        self, paper_engine, paper_query, paper_db
    ):
        plan = paper_engine.compile_plan(paper_query)
        paper_engine.execute_plan(plan)
        paper_engine.invalidate_caches()
        paper_db.insert("Family", (98, "Post-invalidation family", "d"))
        paper_db.insert("FamilyIntro", (98, "intro"))
        served = paper_engine.execute_plan(plan)
        fresh = CitationEngine(
            paper_db, paper_engine.citation_views, policy=paper_engine.policy
        ).cite(paper_query)
        assert served.result.rows == fresh.result.rows
        assert ("Post-invalidation family",) in served.result.rows
