"""Tests for the citation algebra (·, +, +R, Agg)."""

from repro.core.expression import (
    Aggregate,
    Alternative,
    CitationAtom,
    Joint,
    RewriteAlternative,
    alternative,
    joint,
    rewrite_alternative,
)
from repro.core.record import CitationRecord


def atom(view, **params):
    return CitationAtom(view, params, CitationRecord({"view": view, **{k: str(v) for k, v in params.items()}}))


class TestAtoms:
    def test_symbolic_rendering_with_parameters(self):
        assert str(atom("V1", FID=11)) == "CV1(11)"

    def test_symbolic_rendering_without_parameters(self):
        assert str(atom("V3")) == "CV3"

    def test_equality_ignores_record(self):
        a = CitationAtom("V1", {"FID": 11}, CitationRecord({"x": 1}))
        b = CitationAtom("V1", {"FID": 11}, None)
        assert a == b
        assert hash(a) == hash(b)

    def test_evaluated_records(self):
        with_record = atom("V1", FID=11)
        assert len(with_record.evaluated_records()) == 1
        assert CitationAtom("V1", {}, None).evaluated_records() == frozenset()


class TestStructure:
    def _paper_expression(self):
        # (CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)
        q1 = Alternative(
            (
                Joint((atom("V1", FID=11), atom("V3"))),
                Joint((atom("V1", FID=12), atom("V3"))),
            )
        )
        q2 = Joint((atom("V2"), atom("V3")))
        return RewriteAlternative((q1, q2))

    def test_paper_expression_rendering(self):
        expression = self._paper_expression()
        assert str(expression) == "((CV1(11)·CV3) + (CV1(12)·CV3)) +R (CV2·CV3)"

    def test_atom_count_and_depth(self):
        expression = self._paper_expression()
        assert expression.atom_count() == 6
        assert expression.depth() == 4

    def test_distinct_citations(self):
        expression = self._paper_expression()
        views = {view for view, _params in expression.distinct_citations()}
        assert views == {"V1", "V2", "V3"}
        assert len(expression.distinct_citations()) == 4

    def test_aggregate_rendering(self):
        aggregate = Aggregate((atom("V2"), atom("V3")))
        assert str(aggregate) == "Agg[CV2, CV3]"

    def test_equality_of_expressions(self):
        assert self._paper_expression() == self._paper_expression()


class TestSmartConstructors:
    def test_single_operand_collapses(self):
        only = atom("V2")
        assert joint([only]) is only
        assert alternative([only]) is only
        assert rewrite_alternative([only]) is only

    def test_alternative_deduplicates_equal_operands(self):
        duplicated = alternative([Joint((atom("V2"), atom("V3")))] * 3)
        assert isinstance(duplicated, Joint)  # collapsed to the single distinct operand

    def test_rewrite_alternative_keeps_distinct_operands(self):
        expression = rewrite_alternative(
            [Joint((atom("V1", FID=11), atom("V3"))), Joint((atom("V2"), atom("V3")))]
        )
        assert isinstance(expression, RewriteAlternative)
        assert len(expression.operands) == 2


class TestPolynomialBridge:
    def test_joint_becomes_product(self):
        expression = Joint((atom("V2"), atom("V3")))
        polynomial = expression.to_polynomial()
        assert polynomial.monomial_count() == 1
        assert polynomial.degree() == 2

    def test_alternative_becomes_sum(self):
        expression = Alternative((atom("V1", FID=11), atom("V1", FID=12)))
        assert expression.to_polynomial().monomial_count() == 2

    def test_paper_expression_polynomial_size(self):
        q1 = Alternative(
            (
                Joint((atom("V1", FID=11), atom("V3"))),
                Joint((atom("V1", FID=12), atom("V3"))),
            )
        )
        q2 = Joint((atom("V2"), atom("V3")))
        polynomial = RewriteAlternative((q1, q2)).to_polynomial()
        assert polynomial.monomial_count() == 3
        tokens = {token[0] for token in polynomial.tokens()}
        assert tokens == {"V1", "V2", "V3"}
