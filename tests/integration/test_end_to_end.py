"""Cross-subsystem integration tests: SQL front-end, fixity, evolution, scale."""

import pytest

from repro import (
    CitationEngine,
    CitationPolicy,
    IncrementalCitationMaintainer,
    parse_sql,
)
from repro.core.schema_level import cite_schema_level
from repro.versioning import CitationResolver, VersionedDatabase
from repro.workloads import gtopdb


class TestSqlToCitation:
    def test_sql_query_gets_the_same_citation_as_datalog(self, paper_db, paper_views):
        engine = CitationEngine(paper_db, paper_views)
        sql_query = parse_sql(
            "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID",
            gtopdb.schema(),
        )
        datalog_query = gtopdb.paper_query()
        assert (
            engine.cite(sql_query).citation.records
            == engine.cite(datalog_query).citation.records
        )


class TestFixityLifecycle:
    def test_cite_evolve_resolve(self, paper_views):
        versioned = VersionedDatabase(gtopdb.schema())
        source = gtopdb.paper_instance()
        for relation in source.relations():
            versioned.insert_many(relation.schema.name, relation.rows)
        versioned.commit("release 1")

        resolver = CitationResolver(versioned, paper_views)
        persistent = resolver.cite_current(
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        )

        # the database evolves: a family is renamed via delete + insert
        versioned.delete("FamilyIntro", (13, "Adenosine receptors intro"))
        versioned.delete("Committee", (13, "E. Faccenda"))
        versioned.delete("Family", (13, "Adenosine", "A1"))
        versioned.insert("Family", (13, "Adenosine receptors", "A1"))
        versioned.insert("Committee", (13, "E. Faccenda"))
        versioned.insert("FamilyIntro", (13, "updated intro"))
        versioned.commit("release 2")

        # the old citation still resolves to the old answer
        old = resolver.resolve(persistent)
        assert ("Adenosine",) in old.result.rows
        # a fresh citation sees the new answer
        fresh = resolver.cite_current(persistent.query_text)
        new = resolver.resolve(fresh)
        assert ("Adenosine receptors",) in new.result.rows
        assert resolver.has_drifted(persistent)

    def test_persistent_citation_survives_serialisation(self, paper_views):
        versioned = VersionedDatabase(gtopdb.schema())
        source = gtopdb.paper_instance()
        for relation in source.relations():
            versioned.insert_many(relation.schema.name, relation.rows)
        versioned.commit("release 1")
        resolver = CitationResolver(versioned, paper_views)
        persistent = resolver.cite_current(
            "Q(FID, FName, Desc) :- Family(FID, FName, Desc)"
        )
        from repro.versioning.persistent import PersistentCitation

        reloaded = PersistentCitation.from_json(persistent.to_json())
        assert resolver.resolve(reloaded).result.rows == {
            (11, "Calcitonin", "C1"),
            (12, "Calcitonin", "C2"),
            (13, "Adenosine", "A1"),
        }


class TestEvolutionAtScale:
    def test_incremental_maintenance_on_generated_database(self):
        db = gtopdb.generate(families=30, seed=21)
        engine = CitationEngine(
            db, gtopdb.citation_views(), policy=CitationPolicy.union_everywhere()
        )
        maintainer = IncrementalCitationMaintainer(engine, gtopdb.paper_query())
        next_fid = 1000
        for step in range(5):
            maintainer.insert("Family", (next_fid + step, f"NewFam {step}", "desc"))
            maintainer.insert("FamilyIntro", (next_fid + step, f"intro {step}"))
            maintainer.insert("Ligand", (5000 + step, f"L{step}", "peptide"))
        maintainer.check_consistency()
        assert maintainer.statistics.updates_seen == 15


class TestScale:
    def test_economical_mode_handles_larger_instances(self):
        db = gtopdb.generate(families=200, targets_per_family=3, ligands=300, seed=8)
        engine = CitationEngine(db, gtopdb.citation_views(extended=True))
        result = engine.cite(gtopdb.paper_query(), mode="economical")
        assert len(result) > 0
        assert result.citation.size() <= 10

    def test_schema_level_and_tuple_level_agree_at_scale(self):
        db = gtopdb.generate(families=100, seed=8)
        engine = CitationEngine(
            db, gtopdb.citation_views(), policy=CitationPolicy.union_everywhere()
        )
        schema_level = cite_schema_level(engine, gtopdb.paper_query())
        tuple_level = engine.cite(gtopdb.paper_query(), mode="economical")
        assert schema_level.citation.records == tuple_level.citation.records

    @pytest.mark.parametrize("policy_name", ["default", "union_everywhere", "joined"])
    def test_all_policies_run_end_to_end(self, policy_name):
        db = gtopdb.generate(families=25, seed=4)
        policy = getattr(CitationPolicy, policy_name)()
        engine = CitationEngine(db, gtopdb.citation_views(), policy=policy)
        result = engine.cite(gtopdb.paper_query())
        assert result.citation.record_count() >= 1

    def test_multiple_queries_share_engine_caches(self):
        db = gtopdb.generate(families=40, seed=4)
        engine = CitationEngine(db, gtopdb.citation_views(extended=True))
        for query in gtopdb.example_queries():
            try:
                engine.cite(query, mode="economical")
            except Exception as error:  # only NoRewritingError is acceptable
                from repro.errors import NoRewritingError

                assert isinstance(error, NoRewritingError)
