"""End-to-end reproduction of the paper's Section 2 worked example (E1).

The paper walks through:

* relations Family / Committee / FamilyIntro with two families named
  ``Calcitonin`` (FIDs 11 and 12),
* citation views V1 (λ FID, committee members), V2 and V3 (whole-table),
* the query Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text),
* its two rewritings Q1 (V1 ⋈ V3) and Q2 (V2 ⋈ V3),
* the citation of the result tuple ``Calcitonin``::

      (CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)

* and, under union for ``·``/``+``/``Agg`` and minimum-estimated-size for
  ``+R``, the final choice of the citation through Q2 (CV2·CV3).

These tests assert each of those statements against the implementation.
"""

import pytest

from repro import CitationEngine, CitationPolicy
from repro.rewriting.cost import RewritingCostModel, cheapest_rewriting


class TestRewritingsOfTheExample:
    def test_q_can_be_rewritten_in_terms_of_v1_v3_and_v2_v3(self, paper_engine, paper_query):
        rewritings = paper_engine.rewritings(paper_query)
        assert len(rewritings) == 2
        combos = {frozenset(a.predicate for a in r.query.body) for r in rewritings}
        assert combos == {frozenset({"V1", "V3"}), frozenset({"V2", "V3"})}

    def test_rewritings_return_the_same_answers_as_the_query(self, paper_engine, paper_query, paper_db):
        from repro.query.evaluator import QueryEvaluator
        from repro.rewriting.view import materialize_views

        views = [cv.view for cv in paper_engine.citation_views]
        relations = materialize_views(views, paper_db)
        evaluator = QueryEvaluator(paper_db, extra_relations=relations)
        direct = QueryEvaluator(paper_db).evaluate(paper_query).rows
        for rewriting in paper_engine.rewritings(paper_query):
            assert evaluator.evaluate(rewriting.query).rows == direct


class TestCalcitoninCitation:
    def test_two_bindings_for_calcitonin(self, paper_db, paper_query):
        from repro.query.evaluator import evaluate_with_bindings

        bindings = evaluate_with_bindings(paper_query, paper_db)
        assert len(bindings[("Calcitonin",)]) == 2

    def test_symbolic_citation_matches_the_paper(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query)
        calcitonin = result.citation_for(("Calcitonin",))
        assert str(calcitonin.expression) == (
            "((CV1(11)·CV3) + (CV1(12)·CV3)) +R (CV2·CV3)"
        )

    def test_parameters_11_and_12_are_passed_to_v1(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query)
        calcitonin = result.citation_for(("Calcitonin",))
        v1_params = {
            atom.parameter_values["FID"]
            for atom in calcitonin.expression.atoms()
            if atom.view_name == "V1"
        }
        assert v1_params == {11, 12}

    def test_committee_members_differ_per_parameter(self, paper_engine):
        record_11 = paper_engine.citation_record("V1", {"FID": 11})
        record_12 = paper_engine.citation_record("V1", {"FID": 12})
        assert record_11["contributors"] == ("A. Davenport", "D. Hoyer")
        assert record_12["contributors"] == "S. Alexander"
        assert record_11 != record_12

    def test_unparameterized_views_have_constant_citations(self, paper_engine):
        assert paper_engine.citation_record("V2", {}) == paper_engine.citation_record("V2", {})
        assert paper_engine.citation_record("V3", {})["title"].startswith("IUPHAR/BPS")


class TestFinalPolicyStep:
    def test_estimated_size_of_q1_is_proportional_to_family(self, paper_engine, paper_query, paper_db):
        rewritings = paper_engine.rewritings(paper_query)
        model = RewritingCostModel(paper_db)
        by_views = {
            frozenset(a.predicate for a in r.query.body): model.citation_size(r)
            for r in rewritings
        }
        assert by_views[frozenset({"V1", "V3"})] == pytest.approx(
            len(paper_db.relation("Family")) + 1
        )
        assert by_views[frozenset({"V2", "V3"})] == pytest.approx(2)

    def test_minimum_size_rewriting_is_q2(self, paper_engine, paper_query, paper_db):
        best = cheapest_rewriting(
            paper_engine.rewritings(paper_query), RewritingCostModel(paper_db)
        )
        assert {a.predicate for a in best.query.body} == {"V2", "V3"}

    def test_final_citation_is_cv2_dot_cv3(self, paper_engine, paper_query):
        result = paper_engine.cite(paper_query)
        assert {record["view"] for record in result.citation.records} == {"V2", "V3"}
        titles = {record["title"] for record in result.citation.records}
        assert titles == {"IUPHAR/BPS Guide to PHARMACOLOGY"}

    def test_union_policy_retains_the_full_alternative_structure(
        self, paper_db, paper_views, paper_query
    ):
        engine = CitationEngine(paper_db, paper_views, policy=CitationPolicy.union_everywhere())
        result = engine.cite(paper_query)
        # Aggregate citation now credits the committees of families 11, 12 and 13.
        parameterized = {
            record["parameters"] for record in result.citation.records if "parameters" in record
        }
        assert parameterized == {(("FID", 11),), (("FID", 12),), (("FID", 13),)}

    def test_rendering_of_the_final_citation(self, paper_engine, paper_query):
        citation = paper_engine.cite(paper_query).citation
        text = citation.to_text()
        assert "IUPHAR/BPS Guide to PHARMACOLOGY" in text
        bibtex = citation.to_bibtex()
        assert "@misc{" in bibtex
        assert "IUPHAR/BPS Guide to PHARMACOLOGY" in bibtex
