"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing attribute {name}"

    def test_core_all_resolves(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert hasattr(core, name)

    def test_query_all_resolves(self):
        query = importlib.import_module("repro.query")
        for name in query.__all__:
            assert hasattr(query, name)

    def test_rdf_all_resolves(self):
        rdf = importlib.import_module("repro.rdf")
        for name in rdf.__all__:
            assert hasattr(rdf, name)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.relational",
            "repro.query",
            "repro.rewriting",
            "repro.provenance",
            "repro.core",
            "repro.versioning",
            "repro.rdf",
            "repro.workloads",
            "repro.baselines",
            "repro.cli",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        assert importlib.import_module(module) is not None

    def test_every_public_symbol_has_a_docstring(self):
        missing = []
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"public symbols without docstrings: {missing}"

    def test_quickstart_from_module_docstring_runs(self):
        from repro import CitationEngine, parse_query
        from repro.workloads import gtopdb

        engine = CitationEngine(gtopdb.paper_instance(), gtopdb.citation_views())
        result = engine.cite(
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        )
        assert result.citation.to_text()
