"""Tests for the tuple-level provenance and manual-citation baselines."""

import pytest

from repro import CitationEngine, CitationPolicy, parse_query
from repro.baselines.full_provenance import (
    FullProvenanceCitationBaseline,
    default_tuple_citation,
    owner_effort_comparison,
)
from repro.baselines.manual_citation import ManualCitationBaseline
from repro.core.record import CitationRecord
from repro.errors import CitationError
from repro.workloads import gtopdb


class TestFullProvenanceBaseline:
    def test_per_tuple_citations_follow_lineage(self, paper_db, paper_query):
        baseline = FullProvenanceCitationBaseline(paper_db)
        per_tuple, _aggregate = baseline.cite(paper_query)
        calcitonin = per_tuple[("Calcitonin",)]
        identifiers = {record["identifier"] for record in calcitonin.records}
        assert "Family:11/Calcitonin/C1" in identifiers
        assert "Family:12/Calcitonin/C2" in identifiers
        assert "FamilyIntro:11/1st" in identifiers
        assert len(identifiers) == 4

    def test_aggregate_covers_all_contributing_tuples(self, paper_db, paper_query):
        baseline = FullProvenanceCitationBaseline(paper_db)
        _per_tuple, aggregate = baseline.cite(paper_query)
        assert aggregate.record_count() == 6  # 3 Family + 3 FamilyIntro tuples

    def test_citation_size_grows_with_result(self, paper_views):
        small = gtopdb.generate(families=10)
        large = gtopdb.generate(families=50)
        query = gtopdb.paper_query()
        assert (
            FullProvenanceCitationBaseline(large).citation_size(query)
            > FullProvenanceCitationBaseline(small).citation_size(query)
        )

    def test_view_based_citation_is_smaller_under_default_policy(self, paper_views):
        db = gtopdb.generate(families=40)
        query = gtopdb.paper_query()
        baseline_size = FullProvenanceCitationBaseline(db).citation_size(query)
        engine = CitationEngine(db, paper_views, policy=CitationPolicy.default())
        view_based_size = engine.cite(query, mode="economical").citation.size()
        assert view_based_size < baseline_size

    def test_owner_effort_comparison(self, paper_db):
        effort = owner_effort_comparison(paper_db, citation_view_count=3)
        assert effort["tuple_level_annotations"] == paper_db.total_rows()
        assert effort["view_level_specifications"] == 3

    def test_custom_tuple_citation_function(self, paper_db, paper_query):
        def custom(relation, row):
            return CitationRecord({"source": relation, "note": "custom"})

        baseline = FullProvenanceCitationBaseline(paper_db, tuple_citation=custom)
        _per_tuple, aggregate = baseline.cite(paper_query)
        assert all(record["note"] == "custom" for record in aggregate.records)

    def test_default_tuple_citation_fields(self):
        record = default_tuple_citation("Family", (11, "Calcitonin", "C1"))
        assert record["source"] == "Family"
        assert record["identifier"].startswith("Family:")

    def test_annotations_required_equals_database_size(self, paper_db):
        baseline = FullProvenanceCitationBaseline(paper_db)
        assert baseline.annotations_required() == paper_db.total_rows()


class TestManualCitationBaseline:
    def _baseline(self, strict=False):
        return ManualCitationBaseline(
            {
                "P1(FID, FName, Desc) :- Family(FID, FName, Desc)": {
                    "title": "GtoPdb family list page"
                },
                "P2(FID, Text) :- FamilyIntro(FID, Text)": {
                    "title": "GtoPdb family introductions page"
                },
            },
            database_citation={"title": "IUPHAR/BPS Guide to PHARMACOLOGY"},
            strict=strict,
        )

    def test_exact_page_view_is_covered(self):
        baseline = self._baseline()
        assert baseline.covers("Q(FID, FName, Desc) :- Family(FID, FName, Desc)")

    def test_equivalence_not_just_syntactic_match(self):
        baseline = self._baseline()
        assert baseline.covers("Other(A, B, C) :- Family(A, B, C)")

    def test_general_query_not_covered(self, paper_query):
        baseline = self._baseline()
        assert not baseline.covers(paper_query)

    def test_fallback_citation_for_general_query(self, paper_query):
        baseline = self._baseline()
        citation = baseline.cite(paper_query)
        assert citation.record_count() == 1
        assert next(iter(citation.records))["title"].startswith("IUPHAR")

    def test_strict_mode_raises(self, paper_query):
        baseline = self._baseline(strict=True)
        with pytest.raises(CitationError):
            baseline.cite(paper_query)

    def test_page_view_citation_returned(self):
        baseline = self._baseline()
        citation = baseline.cite("Q(FID, Text) :- FamilyIntro(FID, Text)")
        assert next(iter(citation.records))["title"] == "GtoPdb family introductions page"

    def test_coverage_fraction(self, paper_query):
        baseline = self._baseline()
        workload = [
            parse_query("Q(FID, FName, Desc) :- Family(FID, FName, Desc)"),
            paper_query,
        ]
        assert baseline.coverage(workload) == pytest.approx(0.5)
        assert baseline.coverage([]) == 0.0

    def test_view_based_engine_covers_what_manual_cannot(self, paper_db, paper_views, paper_query):
        manual = self._baseline()
        engine = CitationEngine(paper_db, paper_views)
        assert not manual.covers(paper_query)
        result = engine.cite(paper_query)
        assert result.citation.record_count() >= 1
