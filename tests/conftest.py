"""Shared fixtures: the paper's running example and small synthetic instances."""

from __future__ import annotations

import pytest

from repro import CitationEngine, parse_query
from repro.workloads import drugbank, gtopdb, reactome


@pytest.fixture
def paper_db():
    """The GtoPdb micro-instance of the paper's Section 2 example."""
    return gtopdb.paper_instance()


@pytest.fixture
def paper_views():
    """The citation views V1, V2, V3 of the paper's example."""
    return gtopdb.citation_views()


@pytest.fixture
def paper_query():
    """Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)."""
    return parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")


@pytest.fixture
def paper_engine(paper_db, paper_views):
    """A citation engine over the paper instance with the default policy."""
    return CitationEngine(paper_db, paper_views)


@pytest.fixture
def small_gtopdb():
    """A small synthetic GtoPdb instance (fast enough for unit tests)."""
    return gtopdb.generate(families=20, targets_per_family=2, ligands=30, seed=3)


@pytest.fixture
def small_reactome():
    """A small synthetic Reactome instance."""
    return reactome.generate(pathways=8, reactions_per_pathway=3, seed=3)


@pytest.fixture
def small_drugbank():
    """A small synthetic DrugBank instance."""
    return drugbank.generate(drugs=15, proteins=10, interactions=15, seed=3)
