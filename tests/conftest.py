"""Shared fixtures: the paper's running example and small synthetic instances.

This conftest also makes ``tests/strategies.py`` — the shared hypothesis
generators — importable as ``strategies`` from every test package, and
registers pinned hypothesis profiles:

* ``dev`` (default): no deadline (CI machines and laptops differ too much
  for per-example deadlines to be signal), random seeding;
* ``ci`` (selected via ``HYPOTHESIS_PROFILE=ci``): additionally
  derandomized, so CI failures reproduce deterministically.
"""

from __future__ import annotations

import os
import sys

import pytest
from hypothesis import settings

sys.path.insert(0, os.path.dirname(__file__))  # `import strategies` everywhere

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

# Deliberately after the sys.path / hypothesis-profile setup above.
from repro import CitationEngine, parse_query  # noqa: E402
from repro.workloads import drugbank, gtopdb, reactome  # noqa: E402

# Every engine the suite builds verifies its compiled plans and *raises* on
# any I-code finding: the whole test suite doubles as the IR verifier's
# corpus.  Production keeps the cheap default ("off"); see
# ``CitationEngine.DEFAULT_VERIFY_PLANS``.
CitationEngine.DEFAULT_VERIFY_PLANS = "strict"


@pytest.fixture
def paper_db():
    """The GtoPdb micro-instance of the paper's Section 2 example."""
    return gtopdb.paper_instance()


@pytest.fixture
def paper_views():
    """The citation views V1, V2, V3 of the paper's example."""
    return gtopdb.citation_views()


@pytest.fixture
def paper_query():
    """Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)."""
    return parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")


@pytest.fixture
def paper_engine(paper_db, paper_views):
    """A citation engine over the paper instance with the default policy."""
    return CitationEngine(paper_db, paper_views)


@pytest.fixture
def small_gtopdb():
    """A small synthetic GtoPdb instance (fast enough for unit tests)."""
    return gtopdb.generate(families=20, targets_per_family=2, ligands=30, seed=3)


@pytest.fixture
def small_reactome():
    """A small synthetic Reactome instance."""
    return reactome.generate(pathways=8, reactions_per_pathway=3, seed=3)


@pytest.fixture
def small_drugbank():
    """A small synthetic DrugBank instance."""
    return drugbank.generate(drugs=15, proteins=10, interactions=15, seed=3)
