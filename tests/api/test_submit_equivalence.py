"""Equivalence tests: ``CitationService.submit`` vs the underlying engines.

The acceptance bar of the API redesign: one ``submit(CitationRequest)`` path
serves all five backend families and returns citations identical to calling
the underlying engines directly — including on cache-warm second calls, with
the plan cache demonstrably applied to the CQ, union and temporal families.
"""

from __future__ import annotations

import pytest

from repro import CitationEngine, CitationPolicy, CitationService
from repro.api import (
    CitationRequest,
    RDFBackend,
    TemporalBackend,
    VersionedBackend,
)
from repro.core.temporal import TemporalCitationEngine, add_timestamps, timestamp_view
from repro.core.union_engine import cite_union
from repro.errors import CitationError
from repro.rdf.bgp import BGPQuery, TriplePattern
from repro.rdf.citation_rdf import ClassCitationView, RDFCitationEngine
from repro.rdf.ontology import Ontology
from repro.rdf.triples import RDF_TYPE, TripleStore
from repro.versioning.persistent import CitationResolver
from repro.versioning.version_store import VersionedDatabase
from repro.workloads import gtopdb

CQ = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
UCQ = (
    "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)\n"
    "Q(FName) :- Family(FID, FName, Desc)"
)
TEMPORAL_CQ = "Q(FName) :- Family(FID, FName, Desc, T), FamilyIntro(FID, Text, T2)"


def _same_cited_result(left, right) -> None:
    assert {tc.row for tc in left.tuple_citations} == {
        tc.row for tc in right.tuple_citations
    }
    assert left.citation.records == right.citation.records
    assert {tc.row: tc.records for tc in left.tuple_citations} == {
        tc.row: tc.records for tc in right.tuple_citations
    }


@pytest.fixture
def engine():
    return CitationEngine(
        gtopdb.paper_instance(),
        gtopdb.citation_views(extended=True),
        policy=CitationPolicy.default(),
    )


@pytest.fixture
def temporal_engine():
    base = gtopdb.paper_instance()
    db = add_timestamps(base, "2016", relations=["Family", "FamilyIntro"])
    db.insert("Family", (20, "Orexin", "O1", "2017"))
    db.insert("FamilyIntro", (20, "orexin intro", "2017"))
    views = [
        timestamp_view("Family", db.schema, extra_parameters=["FID"]),
        timestamp_view("FamilyIntro", db.schema),
    ]
    return TemporalCitationEngine(db, views)


@pytest.fixture
def rdf_engine():
    store = TripleStore(
        [
            ("r1", RDF_TYPE, "CellLine"),
            ("r1", "rdfs:label", "HeLa"),
            ("r1", "createdBy", "Smith Lab"),
            ("r2", RDF_TYPE, "Reagent"),
            ("r2", "rdfs:label", "Buffer X"),
        ]
    )
    ontology = Ontology()
    ontology.add_subclass("CellLine", "Reagent")
    ontology.add_subclass("Reagent", "Resource")
    views = [
        ClassCitationView("Resource", constants={"source": "eagle-i"}),
        ClassCitationView(
            "CellLine", property_map={"createdBy": "authors"}, priority=2
        ),
    ]
    return RDFCitationEngine(store, ontology, views)


@pytest.fixture
def resolver():
    versioned = VersionedDatabase(gtopdb.schema())
    source = gtopdb.paper_instance()
    for relation in source.relations():
        versioned.insert_many(relation.schema.name, relation.rows)
    versioned.commit("initial")
    versioned.insert("Family", (20, "Orexin", "O1"))
    versioned.insert("FamilyIntro", (20, "orexin intro"))
    versioned.commit("v1")
    return CitationResolver(versioned, gtopdb.citation_views())


class TestRelationalEquivalence:
    def test_submit_matches_engine_cite_cold_and_warm(self, engine):
        reference = CitationEngine(
            gtopdb.paper_instance(),
            gtopdb.citation_views(extended=True),
            policy=CitationPolicy.default(),
        ).cite(CQ)
        with CitationService(engine) as service:
            cold = service.submit(CitationRequest(query=CQ))
            warm = service.submit(CitationRequest(query=CQ))
            assert not cold.cached and warm.cached
            _same_cited_result(cold.unwrap(), reference)
            _same_cited_result(warm.unwrap(), reference)

    def test_warm_call_hits_plan_cache(self, engine):
        with CitationService(engine, cache_results=False) as service:
            service.submit(CitationRequest(query=CQ))
            service.submit(CitationRequest(query=CQ))
            assert service.metrics.counter("plan_compilations") == 1
            assert service.metrics.counter("plan_cache_hits") == 1
            backends = service.metrics.backend_stats()
            assert backends["relational"]["compilations"] == 1
            assert backends["relational"]["plan_hits"] == 1

    def test_policy_override_changes_records_and_skips_result_cache(self, engine):
        with CitationService(engine) as service:
            default = service.submit(CitationRequest(query=CQ)).unwrap()
            overridden = service.submit(
                CitationRequest(query=CQ, policy=CitationPolicy.union_everywhere())
            ).unwrap()
            # The override executed fresh (no cached-result reuse) and the
            # compiled plan was shared (plans are policy-independent).
            assert service.metrics.counter("executions") == 2
            assert service.metrics.counter("plan_compilations") == 1
            assert overridden.policy is not default.policy


class TestUnionEquivalence:
    def test_submit_matches_cite_union(self, engine):
        reference_engine = CitationEngine(
            gtopdb.paper_instance(),
            gtopdb.citation_views(extended=True),
            policy=CitationPolicy.default(),
        )
        reference = cite_union(reference_engine, UCQ)
        with CitationService(engine) as service:
            response = service.submit(CitationRequest(query=UCQ))
            assert response.backend == "union"
            result = response.unwrap()
            _same_cited_result(result, reference)
            assert result.result.rows == reference.result.rows
            assert result.per_disjunct_rewritings == reference.per_disjunct_rewritings
            assert result.uncovered_disjuncts == reference.uncovered_disjuncts

    def test_warm_union_call_is_cached_and_identical(self, engine):
        with CitationService(engine) as service:
            cold = service.submit(CitationRequest(query=UCQ))
            warm = service.submit(CitationRequest(query=UCQ))
            assert not cold.cached and warm.cached
            _same_cited_result(cold.unwrap(), warm.unwrap())
            assert service.metrics.backend_stats()["union"]["result_hits"] == 1

    def test_warm_union_call_hits_plan_cache(self, engine):
        with CitationService(engine, cache_results=False) as service:
            service.submit(CitationRequest(query=UCQ))
            service.submit(CitationRequest(query=UCQ))
            backends = service.metrics.backend_stats()
            assert backends["union"]["compilations"] == 1
            assert backends["union"]["plan_hits"] == 1
            assert backends["union"]["executions"] == 2

    def test_isomorphic_union_shares_cache_and_keeps_its_schema(self, engine):
        # Same head predicate, alpha-renamed variables, reordered atoms AND
        # reordered disjuncts: one fingerprint, one execution.
        renamed = (
            "Q(N) :- Family(F, N, D)\n"
            "Q(N) :- FamilyIntro(F, T), Family(F, N, D)"
        )
        with CitationService(engine) as service:
            original = service.submit(CitationRequest(query=UCQ)).unwrap()
            variant_response = service.submit(CitationRequest(query=renamed))
            assert variant_response.cached
            variant = variant_response.unwrap()
            assert variant.result.rows == original.result.rows
            assert variant.citation.records == original.citation.records
            assert [a.name for a in variant.result.schema.attributes] == ["N"]

    def test_mutation_invalidates_union_results(self, engine):
        with CitationService(engine) as service:
            before = service.submit(CitationRequest(query=UCQ)).unwrap()
            engine.database.insert("Family", (30, "Fresh family", "d"))
            after = service.submit(CitationRequest(query=UCQ)).unwrap()
            assert ("Fresh family",) in after.result.rows
            assert ("Fresh family",) not in before.result.rows


class TestTemporalEquivalence:
    def test_submit_matches_cite_as_of(self, temporal_engine):
        for era in ("2016", "2017"):
            reference = temporal_engine.cite_as_of(TEMPORAL_CQ, era)
            service = CitationService(backends=[TemporalBackend(temporal_engine)])
            response = service.submit(
                CitationRequest(query=TEMPORAL_CQ, backend="temporal", as_of=era)
            )
            result = response.unwrap()
            _same_cited_result(result, reference)
            assert result.result.rows == reference.result.rows
            service.close()

    def test_eras_get_separate_cache_slots(self, temporal_engine):
        service = CitationService(backends=[TemporalBackend(temporal_engine)])
        old = service.submit(
            CitationRequest(query=TEMPORAL_CQ, backend="temporal", as_of="2016")
        ).unwrap()
        new = service.submit(
            CitationRequest(query=TEMPORAL_CQ, backend="temporal", as_of="2017")
        ).unwrap()
        assert old.result.rows != new.result.rows
        assert service.metrics.counter("plan_compilations") == 2
        assert service.metrics.counter("result_cache_hits") == 0
        service.close()

    def test_warm_temporal_call_hits_plan_cache(self, temporal_engine):
        service = CitationService(
            backends=[TemporalBackend(temporal_engine)], cache_results=False
        )
        reference = temporal_engine.cite_as_of(TEMPORAL_CQ, "2017")
        request = CitationRequest(query=TEMPORAL_CQ, backend="temporal", as_of="2017")
        service.submit(request)
        warm = service.submit(request)
        _same_cited_result(warm.unwrap(), reference)
        backends = service.metrics.backend_stats()
        assert backends["temporal"]["compilations"] == 1
        assert backends["temporal"]["plan_hits"] == 1
        service.close()

    def test_unrestricted_temporal_request(self, temporal_engine):
        reference = temporal_engine.cite(TEMPORAL_CQ)
        service = CitationService(backends=[TemporalBackend(temporal_engine)])
        result = service.submit(
            CitationRequest(query=TEMPORAL_CQ, backend="temporal")
        ).unwrap()
        _same_cited_result(result, reference)
        service.close()


class TestRDFEquivalence:
    BGP = BGPQuery(("s",), (TriplePattern("?s", RDF_TYPE, "CellLine"),))

    def test_submit_matches_cite_query(self, rdf_engine):
        solutions, citation = rdf_engine.cite_query(self.BGP)
        service = CitationService(backends=[RDFBackend(rdf_engine)])
        response = service.submit(CitationRequest(query=self.BGP))
        result = response.unwrap()
        assert result.solutions == solutions
        assert result.citation.records == citation.records
        assert response.row_count == len(solutions)
        service.close()

    def test_warm_rdf_call_served_from_result_cache(self, rdf_engine):
        service = CitationService(backends=[RDFBackend(rdf_engine)])
        cold = service.submit(CitationRequest(query=self.BGP))
        warm = service.submit(CitationRequest(query=self.BGP))
        assert not cold.cached and warm.cached
        assert warm.unwrap().citation.records == cold.unwrap().citation.records
        # No plan cache for BGPs: the phases to skip are parse+execute only.
        assert service.metrics.counter("plan_compilations") == 0
        assert service.metrics.backend_stats()["rdf"]["result_hits"] == 1
        service.close()

    def test_store_mutation_invalidates_rdf_results(self, rdf_engine):
        service = CitationService(backends=[RDFBackend(rdf_engine)])
        before = service.submit(CitationRequest(query=self.BGP)).unwrap()
        rdf_engine.store.add(("r9", RDF_TYPE, "CellLine"))
        after = service.submit(CitationRequest(query=self.BGP)).unwrap()
        assert {s["s"] for s in before.solutions} == {"r1"}
        assert {s["s"] for s in after.solutions} == {"r1", "r9"}
        assert service.metrics.counter("executions") == 2
        service.close()

    def test_same_shape_different_projection_names_do_not_collide(self, rdf_engine):
        other = BGPQuery(("x",), (TriplePattern("?x", RDF_TYPE, "CellLine"),))
        service = CitationService(backends=[RDFBackend(rdf_engine)])
        first = service.submit(CitationRequest(query=self.BGP)).unwrap()
        second = service.submit(CitationRequest(query=other)).unwrap()
        assert {tuple(s) for s in first.solutions} == {("s",)}
        assert {tuple(s) for s in second.solutions} == {("x",)}
        assert service.metrics.counter("result_cache_hits") == 0
        service.close()


class TestVersionedEquivalence:
    QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"

    def test_submit_matches_cite_at_per_version(self, resolver):
        service = CitationService(backends=[VersionedBackend(resolver)])
        for version_id in (0, 1):
            reference = resolver.cite_at(self.QUERY, version_id)
            response = service.submit(
                CitationRequest(query=self.QUERY, as_of=version_id)
            )
            persistent = response.unwrap()
            assert persistent == reference
        service.close()

    def test_default_version_is_latest_committed(self, resolver):
        reference = resolver.cite_current(self.QUERY)
        service = CitationService(backends=[VersionedBackend(resolver)])
        persistent = service.submit(CitationRequest(query=self.QUERY)).unwrap()
        assert persistent == reference
        service.close()

    def test_warm_versioned_call_is_cached_and_identical(self, resolver):
        service = CitationService(backends=[VersionedBackend(resolver)])
        cold = service.submit(CitationRequest(query=self.QUERY, as_of=0))
        warm = service.submit(CitationRequest(query=self.QUERY, as_of=0))
        assert not cold.cached and warm.cached
        assert warm.unwrap() == cold.unwrap()
        assert service.metrics.counter("executions") == 1
        service.close()

    def test_versions_get_separate_cache_slots(self, resolver):
        service = CitationService(backends=[VersionedBackend(resolver)])
        v0 = service.submit(CitationRequest(query=self.QUERY, as_of=0)).unwrap()
        v1 = service.submit(CitationRequest(query=self.QUERY, as_of=1)).unwrap()
        assert v0.content_hash != v1.content_hash
        assert service.metrics.counter("result_cache_hits") == 0
        service.close()

    def test_non_integer_version_rejected(self, resolver):
        service = CitationService(backends=[VersionedBackend(resolver)])
        response = service.submit(CitationRequest(query=self.QUERY, as_of="v0"))
        assert not response.ok and isinstance(response.error, CitationError)
        service.close()


class TestMixedBatches:
    def test_submit_batch_spans_backends_and_deduplicates(
        self, engine, temporal_engine
    ):
        with CitationService(
            engine, backends=[TemporalBackend(temporal_engine)]
        ) as service:
            requests = [
                CitationRequest(query=CQ),
                CitationRequest(query=UCQ),
                CitationRequest(query=CQ),  # duplicate: deduplicated in-batch
                CitationRequest(query=TEMPORAL_CQ, backend="temporal", as_of="2017"),
                CitationRequest(query="broken ::"),
            ]
            responses = service.submit_batch(requests)
            assert [r.ok for r in responses] == [True, True, True, True, False]
            assert [r.backend for r in responses[:4]] == [
                "relational",
                "union",
                "relational",
                "temporal",
            ]
            assert responses[2].cached
            assert service.metrics.counter("deduplicated") == 1
            assert service.metrics.counter("requests") == 5
            _same_cited_result(responses[0].unwrap(), responses[2].unwrap())

    def test_policy_override_is_never_deduplicated(self, engine):
        # A request carrying a policy override must not share an execution
        # with (or serve as representative for) plain requests of the same
        # shape: its citations are evaluated under a different policy.
        with CitationService(engine) as service:
            responses = service.submit_batch(
                [
                    CitationRequest(query=CQ),
                    CitationRequest(
                        query=CQ, policy=CitationPolicy.union_everywhere()
                    ),
                    CitationRequest(query=CQ),
                ]
            )
            assert all(response.ok for response in responses)
            assert responses[1].unwrap().policy is not responses[0].unwrap().policy
            assert service.metrics.counter("executions") == 2
            assert service.metrics.counter("deduplicated") == 1
            # Plans are policy-free and still shared across all three.
            assert service.metrics.counter("plan_compilations") == 1

    def test_resolver_engine_cache_is_bounded(self, resolver):
        resolver.max_cached_engines = 1
        resolver.engine_for(0)
        resolver.engine_for(1)
        assert list(resolver._engines) == [1]
        resolver.engine_for(0)  # re-materialised, evicting version 1
        assert list(resolver._engines) == [0]

    def test_batch_timeout_isolated(self, engine, monkeypatch):
        import time as time_module

        original = engine.execute_plan

        def slow_execute(plan, query=None):
            time_module.sleep(0.25)
            return original(plan, query)

        monkeypatch.setattr(engine, "execute_plan", slow_execute)
        with CitationService(engine) as service:
            responses = service.submit_batch(
                [CitationRequest(query=CQ)], timeout=0.01
            )
            assert not responses[0].ok
            assert isinstance(responses[0].error, TimeoutError)
            assert service.metrics.counter("timeouts") == 1
