"""Tests for the request/response envelope, backend protocol and registry."""

from __future__ import annotations

import pytest

from repro import CitationEngine, CitationPolicy
from repro.api import (
    BackendRegistry,
    CitationRequest,
    RDFBackend,
    RelationalBackend,
    TemporalBackend,
    UnionBackend,
)
from repro.core.temporal import TemporalCitationEngine, add_timestamps, timestamp_view
from repro.errors import CitationError
from repro.query.parser import parse_query
from repro.query.ucq import UnionQuery
from repro.rdf.bgp import BGPQuery, TriplePattern
from repro.rdf.citation_rdf import ClassCitationView, RDFCitationEngine
from repro.rdf.ontology import Ontology
from repro.rdf.triples import RDF_TYPE, TripleStore
from repro.service import CitationService
from repro.workloads import gtopdb

CQ = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
UCQ = (
    "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)\n"
    "Q(FName) :- Family(FID, FName, Desc)"
)


@pytest.fixture
def engine():
    return CitationEngine(
        gtopdb.paper_instance(),
        gtopdb.citation_views(extended=True),
        policy=CitationPolicy.default(),
    )


class TestEnvelope:
    def test_request_defaults(self):
        request = CitationRequest(query=CQ)
        assert request.backend is None
        assert request.dialect == "auto"
        assert request.mode is None and request.as_of is None
        assert request.request_id is None

    def test_with_id_assigns_once(self):
        request = CitationRequest(query=CQ).with_id()
        assert request.request_id.startswith("req-")
        assert request.with_id() is request

    def test_explicit_request_id_is_kept(self, engine):
        with CitationService(engine) as service:
            response = service.submit(
                CitationRequest(query=CQ, request_id="my-correlation-id")
            )
        assert response.request_id == "my-correlation-id"
        assert response.to_payload()["request_id"] == "my-correlation-id"

    def test_response_payload_shape(self, engine):
        with CitationService(engine) as service:
            payload = service.submit(CitationRequest(query=CQ)).to_payload()
        assert payload["ok"] is True
        assert payload["backend"] == "relational"
        assert payload["rows"] == 2
        assert payload["citation"]["records"]
        bad = service.submit(CitationRequest(query="nope ::")).to_payload()
        assert bad["ok"] is False and "error" in bad and "error_type" in bad

    def test_unwrap_reraises(self, engine):
        with CitationService(engine) as service:
            response = service.submit(CitationRequest(query="nope ::"))
        assert not response.ok
        with pytest.raises(Exception):
            response.unwrap()


class TestRegistry:
    def test_duplicate_name_rejected(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        with pytest.raises(CitationError):
            registry.register(RelationalBackend(engine))
        registry.register(RelationalBackend(engine), replace=True)
        assert registry.names() == ["relational"]

    def test_unknown_backend_error_names_known_ones(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        with pytest.raises(CitationError, match="relational"):
            registry.get("nope")

    def test_unregister(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        registry.unregister("relational")
        assert len(registry) == 0
        with pytest.raises(CitationError):
            registry.unregister("relational")

    def test_capabilities_summary(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        registry.register(UnionBackend(engine))
        capabilities = registry.capabilities()
        assert set(capabilities) == {"relational", "union"}
        assert capabilities["relational"]["supports_plan_cache"] is True
        assert "datalog" in capabilities["relational"]["dialects"]


class TestRouting:
    def test_single_rule_string_routes_relational(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        registry.register(UnionBackend(engine))
        assert registry.route(CitationRequest(query=CQ)).name == "relational"
        assert (
            registry.route(CitationRequest(query=parse_query(CQ))).name == "relational"
        )

    def test_program_string_and_union_query_route_union(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        registry.register(UnionBackend(engine))
        assert registry.route(CitationRequest(query=UCQ)).name == "union"
        union_query = UnionQuery.parse(UCQ)
        assert registry.route(CitationRequest(query=union_query)).name == "union"
        assert (
            registry.route(CitationRequest(query=UCQ, dialect="program")).name
            == "union"
        )

    def test_bgp_routes_rdf(self, engine):
        store = TripleStore([("r1", RDF_TYPE, "CellLine")])
        ontology = Ontology()
        rdf_engine = RDFCitationEngine(
            store, ontology, [ClassCitationView("CellLine")]
        )
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        registry.register(RDFBackend(rdf_engine))
        bgp = BGPQuery(("s",), (TriplePattern("?s", RDF_TYPE, "CellLine"),))
        assert registry.route(CitationRequest(query=bgp)).name == "rdf"

    def test_as_of_only_goes_to_time_travel_backends(self, engine):
        db = add_timestamps(gtopdb.paper_instance(), "2016", relations=["Family"])
        temporal = TemporalCitationEngine(
            db, [timestamp_view("Family", db.schema)]
        )
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        with pytest.raises(CitationError):
            registry.route(CitationRequest(query=CQ, as_of="2016"))
        registry.register(TemporalBackend(temporal))
        assert registry.route(CitationRequest(query=CQ, as_of="2016")).name == "temporal"

    def test_explicit_backend_name_wins(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        registry.register(UnionBackend(engine))
        assert registry.route(CitationRequest(query=CQ, backend="union")).name == "union"

    def test_unroutable_payload(self, engine):
        registry = BackendRegistry()
        registry.register(RelationalBackend(engine))
        with pytest.raises(CitationError, match="no registered backend"):
            registry.route(CitationRequest(query=12345))


class TestServiceBackendManagement:
    def test_service_auto_registers_relational_and_union(self, engine):
        with CitationService(engine) as service:
            assert service.registry.names() == ["relational", "union"]
            assert set(service.capabilities()) == {"relational", "union"}

    def test_service_requires_engine_or_backends(self):
        with pytest.raises(CitationError):
            CitationService()

    def test_service_without_engine_uses_explicit_backends(self, engine):
        service = CitationService(backends=[RelationalBackend(engine)])
        response = service.submit(CitationRequest(query=CQ))
        assert response.ok and response.backend == "relational"
        assert "engine" not in service.stats()
        service.close()

    def test_register_backend_after_construction(self, engine):
        with CitationService(engine) as service:
            service.register_backend(
                RelationalBackend(engine, name="relational-2")
            )
            response = service.submit(
                CitationRequest(query=CQ, backend="relational-2")
            )
            assert response.ok
            assert service.stats()["backends"]["relational-2"]["requests"] == 1
