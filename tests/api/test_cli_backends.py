"""Tests for the CLI on the unified API: --backend, --as-of, --version."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import main
from repro.core.temporal import add_timestamps
from repro.relational.csvio import dump_database_json
from repro.workloads import gtopdb

CQ = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
UCQ_LINE = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text); Q(FName) :- Family(FID, FName, Desc)"


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "gtopdb.json"
    dump_database_json(gtopdb.paper_instance(), path)
    return str(path)


@pytest.fixture
def temporal_database_file(tmp_path):
    base = gtopdb.paper_instance()
    db = add_timestamps(base, "2016", relations=["Family", "FamilyIntro"])
    db.insert("Family", (20, "Orexin", "O1", "2017"))
    db.insert("FamilyIntro", (20, "orexin intro", "2017"))
    path = tmp_path / "gtopdb_temporal.json"
    dump_database_json(db, path)
    return str(path)


def _parse_jsonl(out: str) -> list[dict]:
    return [json.loads(line) for line in out.strip().splitlines() if line.strip()]


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestBackendSelector:
    def test_cite_union_program(self, database_file, capsys):
        code = main(
            ["cite", "--database", database_file, "--backend", "union", UCQ_LINE]
        )
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_cite_auto_routes_multi_rule_to_union(self, database_file, capsys):
        code = main(["cite", "--database", database_file, "--show-answers", UCQ_LINE])
        assert code == 0
        captured = capsys.readouterr()
        assert "answer tuple" in captured.err

    def test_batch_mixed_backends_reports_backend(self, database_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(f"{CQ}\n{UCQ_LINE}\n", encoding="utf-8")
        code = main(["batch", "--database", database_file, str(queries)])
        assert code == 0
        lines = _parse_jsonl(capsys.readouterr().out)
        assert [line["backend"] for line in lines] == ["relational", "union"]
        assert all(line["ok"] for line in lines)

    def test_batch_stats_include_backend_counters(
        self, database_file, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text(f"{CQ}\n{CQ}\n{UCQ_LINE}\n", encoding="utf-8")
        code = main(
            ["batch", "--database", database_file, "--stats", str(queries)]
        )
        assert code == 0
        captured = capsys.readouterr()
        stats = json.loads(captured.err)
        assert stats["backends"]["relational"]["requests"] == 2
        assert stats["backends"]["union"]["requests"] == 1
        assert stats["registered_backends"] == ["relational", "union"]

    def test_cite_as_of_uses_temporal_backend(self, temporal_database_file, capsys):
        query = "Q(FName) :- Family(FID, FName, Desc, T), FamilyIntro(FID, Text, T2)"
        code = main(
            [
                "cite",
                "--database",
                temporal_database_file,
                "--as-of",
                "2017",
                "--show-answers",
                query,
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Orexin" in captured.err
        assert "Calcitonin" not in captured.err

    def test_temporal_backend_requires_timestamped_relations(
        self, database_file, capsys
    ):
        code = main(
            ["cite", "--database", database_file, "--backend", "temporal", CQ]
        )
        assert code == 2
        assert "timestamp attribute" in capsys.readouterr().err


class TestServeDirectives:
    def test_backends_directive_lists_capabilities(
        self, database_file, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(".backends\n.quit\n"))
        code = main(["serve", "--database", database_file])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert set(payload) == {"relational", "union"}
        assert payload["union"]["dialects"] == ["program"]


class TestExplainBackends:
    def test_explain_reports_backend_and_fingerprint(self, database_file, capsys):
        code = main(["explain", "--database", database_file, CQ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# backend: relational" in out
        assert "# fingerprint:" in out
        assert "Rewritings considered" in out

    def test_explain_union_per_disjunct(self, database_file, capsys):
        code = main(
            ["explain", "--database", database_file, "--backend", "union", UCQ_LINE]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# backend: union" in out
        assert "# disjunct 0" in out and "# disjunct 1" in out
