"""Tests for rewriting representation, expansion and verification."""

import pytest

from repro.errors import RewritingError
from repro.query.containment import is_equivalent_to
from repro.query.parser import parse_query
from repro.rewriting.rewriting import (
    Rewriting,
    deduplicate_rewritings,
    expand_rewriting,
    is_contained_rewriting,
    is_equivalent_rewriting,
    minimize_rewriting,
)
from repro.rewriting.view import View, views_by_name


@pytest.fixture
def paper_views():
    return [
        View(parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)")),
    ]


@pytest.fixture
def paper_query():
    return parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")


class TestExpansion:
    def test_expanding_single_view_atom(self, paper_views):
        rewriting_query = parse_query("Q(FName) :- V1(FID, FName, Desc), V3(FID, Text)")
        expansion = expand_rewriting(rewriting_query, views_by_name(paper_views))
        assert expansion.predicates() == {"Family", "FamilyIntro"}
        assert len(expansion.body) == 2

    def test_expansion_is_equivalent_to_original_query(self, paper_views, paper_query):
        rewriting = Rewriting(
            parse_query("Q(FName) :- V1(FID, FName, Desc), V3(FID, Text)"), paper_views
        )
        assert is_equivalent_to(rewriting.expansion, paper_query)

    def test_existential_variables_are_fresh_per_occurrence(self, paper_views):
        # V3 hides nothing, so use a view with an existential variable.
        views = [View(parse_query("VP(FID) :- Committee(FID, PName)"))]
        rewriting_query = parse_query("Q(A, B) :- VP(A), VP(B)")
        expansion = expand_rewriting(rewriting_query, views_by_name(views))
        committee_atoms = [a for a in expansion.body if a.predicate == "Committee"]
        assert len(committee_atoms) == 2
        second_terms = {committee_atoms[0].terms[1], committee_atoms[1].terms[1]}
        assert len(second_terms) == 2  # PName was renamed apart

    def test_constant_in_rewriting_atom_propagates(self, paper_views):
        rewriting_query = parse_query("Q(FName) :- V1(11, FName, Desc)")
        expansion = expand_rewriting(rewriting_query, views_by_name(paper_views))
        family_atom = expansion.body[0]
        assert family_atom.terms[0].value == 11

    def test_base_atoms_kept_in_partial_rewritings(self, paper_views):
        rewriting_query = parse_query("Q(FName) :- V1(FID, FName, Desc), Committee(FID, P)")
        expansion = expand_rewriting(rewriting_query, views_by_name(paper_views))
        assert "Committee" in expansion.predicates()

    def test_arity_mismatch_raises(self, paper_views):
        with pytest.raises(RewritingError):
            expand_rewriting(
                parse_query("Q(X) :- V1(X, Y)"), views_by_name(paper_views)
            )

    def test_view_with_equality_is_inlined(self):
        views = [View(parse_query('VC(FID, D) :- Family(FID, F, De), D = "note"'))]
        expansion = expand_rewriting(
            parse_query("Q(FID, D) :- VC(FID, D)"), views_by_name(views)
        )
        assert expansion.predicates() == {"Family"}


class TestRewritingObject:
    def test_views_used_in_first_use_order(self, paper_views):
        rewriting = Rewriting(
            parse_query("Q(FName) :- V3(FID, Text), V1(FID, FName, Desc)"), paper_views
        )
        assert [v.name for v in rewriting.views_used()] == ["V3", "V1"]

    def test_unknown_view_predicate_rejected(self, paper_views):
        with pytest.raises(RewritingError):
            Rewriting(parse_query("Q(X) :- Nope(X)"), paper_views)

    def test_uses_parameterized_view(self, paper_views):
        with_v1 = Rewriting(
            parse_query("Q(FName) :- V1(FID, FName, D), V3(FID, T)"), paper_views
        )
        with_v2 = Rewriting(
            parse_query("Q(FName) :- V2(FID, FName, D), V3(FID, T)"), paper_views
        )
        assert with_v1.uses_parameterized_view()
        assert not with_v2.uses_parameterized_view()

    def test_equality_of_rewritings(self, paper_views):
        first = Rewriting(parse_query("Q(F) :- V2(I, F, D), V3(I, T)"), paper_views)
        second = Rewriting(parse_query("Q(F) :- V2(I, F, D), V3(I, T)"), paper_views)
        assert first == second


class TestVerification:
    def test_equivalent_rewriting_accepted(self, paper_views, paper_query):
        rewriting = Rewriting(
            parse_query("Q(FName) :- V2(FID, FName, Desc), V3(FID, Text)"), paper_views
        )
        assert is_equivalent_rewriting(paper_query, rewriting)

    def test_non_equivalent_rewriting_rejected(self, paper_views, paper_query):
        only_family = Rewriting(
            parse_query("Q(FName) :- V2(FID, FName, Desc)"), paper_views
        )
        assert not is_equivalent_rewriting(paper_query, only_family)
        # ... but the expansion is a superset of the query's answers, so it is
        # not a *contained* rewriting either (it is a containing one).
        assert not is_contained_rewriting(paper_query, only_family)

    def test_contained_rewriting(self, paper_views):
        query = parse_query("Q(FName) :- Family(FID, FName, Desc)")
        narrower = Rewriting(
            parse_query("Q(FName) :- V2(FID, FName, Desc), V3(FID, Text)"), paper_views
        )
        assert is_contained_rewriting(query, narrower)
        assert not is_equivalent_rewriting(query, narrower)

    def test_minimize_rewriting_drops_redundant_atom(self, paper_views, paper_query):
        redundant = Rewriting(
            parse_query(
                "Q(FName) :- V2(FID, FName, Desc), V2(FID, FName, Desc2), V3(FID, Text)"
            ),
            paper_views,
        )
        minimal = minimize_rewriting(redundant)
        assert len(minimal.query.body) == 2
        assert is_equivalent_rewriting(paper_query, minimal)

    def test_deduplicate_rewritings(self, paper_views):
        first = Rewriting(parse_query("Q(F) :- V2(I, F, D), V3(I, T)"), paper_views)
        second = Rewriting(parse_query("Q(F) :- V3(J, U), V2(J, F, E)"), paper_views)
        third = Rewriting(parse_query("Q(F) :- V1(I, F, D), V3(I, T)"), paper_views)
        assert len(deduplicate_rewritings([first, second, third])) == 2
