"""Tests for the rewriting cost model."""

import pytest

from repro.query.parser import parse_query
from repro.rewriting.cost import RewritingCostModel, cheapest_rewriting, cost_table
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.rewriting import Rewriting
from repro.rewriting.view import View
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


@pytest.fixture
def views():
    return [
        View(parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)")),
    ]


@pytest.fixture
def rewritings(views):
    query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
    return MiniConRewriter(views).rewrite(query)


def _by_view(rewritings, name):
    for rewriting in rewritings:
        if any(atom.predicate == name for atom in rewriting.query.body):
            return rewriting
    raise AssertionError(f"no rewriting uses {name}")


class TestCitationSize:
    def test_parameterized_view_costs_more(self, db, views, rewritings):
        model = RewritingCostModel(db)
        with_v1 = _by_view(rewritings, "V1")
        with_v2 = _by_view(rewritings, "V2")
        assert model.citation_size(with_v1) > model.citation_size(with_v2)

    def test_unparameterized_rewriting_has_unit_cost_per_view(self, db, views, rewritings):
        model = RewritingCostModel(db)
        with_v2 = _by_view(rewritings, "V2")
        assert model.citation_size(with_v2) == pytest.approx(2.0)  # V2 + V3

    def test_parameterized_cost_tracks_family_count(self, views):
        # With a larger database the estimated citation size of the V1
        # rewriting grows proportionally to |Family|.
        small = gtopdb.generate(families=10)
        large = gtopdb.generate(families=100)
        query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        rewritings_small = MiniConRewriter(views).rewrite(query)
        with_v1 = _by_view(rewritings_small, "V1")
        small_cost = RewritingCostModel(small).citation_size(with_v1)
        large_cost = RewritingCostModel(large).citation_size(with_v1)
        assert large_cost > small_cost * 5

    def test_without_database_uses_default_cardinality(self, views, rewritings):
        model = RewritingCostModel(None, default_cardinality=500)
        with_v1 = _by_view(rewritings, "V1")
        assert model.citation_size(with_v1) > 1


class TestRanking:
    def test_paper_choice_v2_wins(self, db, rewritings):
        model = RewritingCostModel(db)
        best = cheapest_rewriting(rewritings, model)
        assert any(atom.predicate == "V2" for atom in best.query.body)

    def test_rank_orders_by_citation_size(self, db, rewritings):
        ranked = RewritingCostModel(db).rank(rewritings)
        sizes = [cost.citation_size for _rewriting, cost in ranked]
        assert sizes == sorted(sizes)

    def test_cheapest_of_empty_is_none(self, db):
        assert cheapest_rewriting([], RewritingCostModel(db)) is None

    def test_cost_table_fields(self, db, rewritings):
        rows = cost_table(rewritings, RewritingCostModel(db))
        assert len(rows) == len(rewritings)
        assert {"rewriting", "views", "evaluation_cost", "citation_size"} <= set(rows[0])

    def test_evaluation_cost_grows_with_views_used(self, db, views):
        query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        single = Rewriting(parse_query("Q(FID, FName, Desc) :- V2(FID, FName, Desc)"), views)
        double = Rewriting(
            parse_query("Q(FName) :- V2(FID, FName, Desc), V3(FID, Text)"), views
        )
        model = RewritingCostModel(db, join_selectivity=1.0)
        assert model.evaluation_cost(double) > model.evaluation_cost(single)
        assert query is not None  # silence unused warning

    def test_total_combines_components(self, db, rewritings):
        model = RewritingCostModel(db)
        cost = model.cost(rewritings[0])
        assert cost.total() == pytest.approx(cost.evaluation_cost + cost.citation_size)
