"""Tests for the MiniCon rewriting algorithm."""

import pytest

from repro.query.parser import parse_query
from repro.rewriting.bucket import BucketRewriter
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.rewriting import is_equivalent_rewriting
from repro.rewriting.view import View
from repro.workloads.query_workload import chain_query, chain_views, star_query, star_views


@pytest.fixture
def paper_views():
    return [
        View(parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)")),
    ]


@pytest.fixture
def paper_query():
    return parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")


class TestPaperExample:
    def test_finds_both_rewritings(self, paper_views, paper_query):
        rewritings = MiniConRewriter(paper_views).rewrite(paper_query)
        used = {frozenset(a.predicate for a in r.query.body) for r in rewritings}
        assert used == {frozenset({"V1", "V3"}), frozenset({"V2", "V3"})}

    def test_results_verified_equivalent(self, paper_views, paper_query):
        for rewriting in MiniConRewriter(paper_views).rewrite(paper_query):
            assert is_equivalent_rewriting(paper_query, rewriting)

    def test_statistics(self, paper_views, paper_query):
        rewriter = MiniConRewriter(paper_views)
        rewriter.rewrite(paper_query)
        stats = rewriter.last_statistics
        assert stats.mcds >= 3
        assert stats.candidates_verified >= 2


class TestMcdProperty:
    def test_view_hiding_join_variable_must_cover_both_subgoals(self):
        # V hides the join variable Y (existential), so an MCD starting at R must
        # also cover S — and it can, because V contains both atoms.
        views = [View(parse_query("V(X, Z) :- R(X, Y), S(Y, Z)"))]
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        rewritings = MiniConRewriter(views).rewrite(query)
        assert len(rewritings) == 1
        assert len(rewritings[0].query.body) == 1

    def test_view_hiding_join_variable_cannot_combine(self):
        # Each view hides Y, and neither covers both subgoals -> no rewriting.
        views = [
            View(parse_query("VR(X) :- R(X, Y)")),
            View(parse_query("VS(Z) :- S(Y, Z)")),
        ]
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        assert MiniConRewriter(views).rewrite(query) == []

    def test_views_exposing_join_variable_combine(self):
        views = [
            View(parse_query("VR(X, Y) :- R(X, Y)")),
            View(parse_query("VS(Y, Z) :- S(Y, Z)")),
        ]
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        rewritings = MiniConRewriter(views).rewrite(query)
        assert len(rewritings) == 1
        assert len(rewritings[0].query.body) == 2

    def test_head_variable_hidden_by_view_is_rejected(self):
        views = [View(parse_query("VH(Y) :- R(X, Y)"))]
        query = parse_query("Q(X) :- R(X, Y)")
        assert MiniConRewriter(views).rewrite(query) == []


class TestAgreementWithBucket:
    @pytest.mark.parametrize("length,window", [(2, 1), (3, 1), (4, 1)])
    def test_chain_workloads_agree(self, length, window):
        views = [cv.view for cv in chain_views(length, window=window)]
        query = chain_query(length)
        bucket = BucketRewriter(views).rewrite(query)
        minicon = MiniConRewriter(views).rewrite(query)
        bucket_sets = {frozenset(a.predicate for a in r.query.body) for r in bucket}
        minicon_sets = {frozenset(a.predicate for a in r.query.body) for r in minicon}
        assert minicon_sets == bucket_sets

    def test_minicon_strictly_more_complete_on_wide_windows(self):
        # The window-2 views hide their middle join variable; Bucket misses the
        # rewriting, MiniCon finds it (the motivating example of the MiniCon paper).
        views = [cv.view for cv in chain_views(4, window=2)]
        query = chain_query(4)
        assert BucketRewriter(views).rewrite(query) == []
        minicon = MiniConRewriter(views).rewrite(query)
        assert len(minicon) == 1
        assert is_equivalent_rewriting(query, minicon[0])

    @pytest.mark.parametrize("arms", [2, 3])
    def test_star_workloads_agree(self, arms):
        views = [cv.view for cv in star_views(arms)]
        query = star_query(arms)
        bucket = BucketRewriter(views).rewrite(query)
        minicon = MiniConRewriter(views).rewrite(query)
        assert bool(bucket) == bool(minicon)
        for rewriting in minicon:
            assert is_equivalent_rewriting(query, rewriting)

    def test_paper_example_agrees_with_bucket(self, paper_views, paper_query):
        bucket = BucketRewriter(paper_views).rewrite(paper_query)
        minicon = MiniConRewriter(paper_views).rewrite(paper_query)
        assert len(bucket) == len(minicon) == 2

    def test_minicon_explores_fewer_candidates_on_chains(self):
        length, window = 4, 1
        views = [cv.view for cv in chain_views(length, window=window)]
        query = chain_query(length)
        bucket = BucketRewriter(views)
        minicon = MiniConRewriter(views)
        bucket.rewrite(query)
        minicon.rewrite(query)
        assert (
            minicon.last_statistics.combinations_considered
            <= bucket.last_statistics.candidates_considered
        )
