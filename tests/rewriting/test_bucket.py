"""Tests for the Bucket rewriting algorithm."""

import pytest

from repro.query.parser import parse_query
from repro.rewriting.bucket import BucketRewriter
from repro.rewriting.rewriting import is_equivalent_rewriting
from repro.rewriting.view import View
from repro.workloads.query_workload import chain_query, chain_views


@pytest.fixture
def paper_views():
    return [
        View(parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)")),
        View(parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)")),
    ]


@pytest.fixture
def paper_query():
    return parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")


class TestPaperExample:
    def test_finds_both_rewritings(self, paper_views, paper_query):
        rewriter = BucketRewriter(paper_views)
        rewritings = rewriter.rewrite(paper_query)
        assert len(rewritings) == 2
        used = {frozenset(a.predicate for a in r.query.body) for r in rewritings}
        assert used == {frozenset({"V1", "V3"}), frozenset({"V2", "V3"})}

    def test_all_results_are_equivalent_rewritings(self, paper_views, paper_query):
        for rewriting in BucketRewriter(paper_views).rewrite(paper_query):
            assert is_equivalent_rewriting(paper_query, rewriting)

    def test_statistics_are_recorded(self, paper_views, paper_query):
        rewriter = BucketRewriter(paper_views)
        rewriter.rewrite(paper_query)
        stats = rewriter.last_statistics
        assert stats is not None
        assert stats.buckets == [2, 1]  # Family covered by V1/V2, FamilyIntro by V3
        assert stats.candidate_space == 2
        assert stats.candidates_verified >= 2


class TestCoverage:
    def test_no_rewriting_when_a_subgoal_is_uncovered(self, paper_views):
        query = parse_query("Q(PName) :- Committee(FID, PName)")
        assert BucketRewriter(paper_views).rewrite(query) == []

    def test_no_rewriting_when_view_hides_needed_variable(self):
        # The view projects away the attribute the query needs in its head.
        views = [View(parse_query("VP(FID) :- Family(FID, FName, Desc)"))]
        query = parse_query("Q(FName) :- Family(FID, FName, Desc)")
        assert BucketRewriter(views).rewrite(query) == []

    def test_no_equivalent_rewriting_when_view_is_more_selective(self):
        views = [View(parse_query('VS(FID, FName) :- Family(FID, FName, "fixed")'))]
        query = parse_query("Q(FID, FName) :- Family(FID, FName, Desc)")
        assert BucketRewriter(views).rewrite(query) == []

    def test_identity_rewriting_single_view(self):
        views = [View(parse_query("V(FID, FName, Desc) :- Family(FID, FName, Desc)"))]
        query = parse_query("Q(FID, FName) :- Family(FID, FName, Desc)")
        rewritings = BucketRewriter(views).rewrite(query)
        assert len(rewritings) == 1
        assert rewritings[0].query.body[0].predicate == "V"

    def test_join_view_covering_both_subgoals(self, paper_query):
        views = [
            View(
                parse_query(
                    "VJ(FID, FName, Desc, Text) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
                )
            )
        ]
        rewritings = BucketRewriter(views).rewrite(paper_query)
        assert len(rewritings) == 1
        assert len(rewritings[0].query.body) == 1

    def test_constant_in_query_requires_distinguished_view_variable(self):
        views = [View(parse_query("VP(FName) :- Family(FID, FName, Desc)"))]
        query = parse_query("Q(FName) :- Family(11, FName, Desc)")
        # FID = 11 cannot be checked through VP, so no equivalent rewriting exists.
        assert BucketRewriter(views).rewrite(query) == []


class TestChains:
    def test_chain_query_covered_by_single_step_views(self):
        length = 3
        views = [cv.view for cv in chain_views(length, window=1)]
        query = chain_query(length)
        rewritings = BucketRewriter(views).rewrite(query)
        assert rewritings, "expected at least one rewriting from window views"
        for rewriting in rewritings:
            assert is_equivalent_rewriting(query, rewriting)

    def test_known_limitation_on_wide_window_views(self):
        # A window-2 view must cover two query subgoals through its hidden
        # middle variable; the classical Bucket algorithm misses this
        # rewriting (MiniCon finds it — see test_minicon.py).
        length = 4
        views = [cv.view for cv in chain_views(length, window=2)]
        assert BucketRewriter(views).rewrite(chain_query(length)) == []

    def test_candidate_cap_limits_search(self):
        length = 4
        views = [cv.view for cv in chain_views(length, window=1)]
        rewriter = BucketRewriter(views, max_candidates=1)
        rewriter.rewrite(chain_query(length))
        assert rewriter.last_statistics.candidates_considered <= 2

    def test_minimization_removes_overlapping_views(self):
        # Windows overlap, so naive combinations contain redundant view atoms.
        length = 3
        views = [cv.view for cv in chain_views(length, window=1)]
        query = chain_query(length)
        for rewriting in BucketRewriter(views).rewrite(query):
            assert len(rewriting.query.body) <= length
