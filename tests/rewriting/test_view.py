"""Tests for view definitions and materialisation."""

import pytest

from repro.errors import RewritingError
from repro.query.parser import parse_query
from repro.rewriting.view import View, materialize_views, views_by_name
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


class TestView:
    def test_name_and_arity(self):
        view = View(parse_query("V1(FID, FName, Desc) :- Family(FID, FName, Desc)"))
        assert view.name == "V1"
        assert view.arity == 3

    def test_parameters_exposed(self):
        view = View(parse_query("lambda FID. V1(FID, FName) :- Family(FID, FName, D)"))
        assert [p.name for p in view.parameters] == ["FID"]

    def test_parameter_positions(self):
        view = View(
            parse_query("lambda FID. V1(FName, FID) :- Family(FID, FName, D)")
        )
        assert view.parameter_positions() == {"FID": 1}

    def test_unparameterized_view_has_no_positions(self):
        view = View(parse_query("V2(FID, FName) :- Family(FID, FName, D)"))
        assert view.parameter_positions() == {}

    def test_materialize_ignores_parameters(self, db):
        view = View(parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)"))
        assert len(view.materialize(db)) == 3

    def test_materialize_join_view(self, db):
        view = View(
            parse_query("VJ(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)")
        )
        result = view.materialize(db)
        assert ("Calcitonin", "1st") in result

    def test_equality_and_hash(self):
        a = View(parse_query("V(X) :- R(X, Y)"))
        b = View(parse_query("V(X) :- R(X, Y)"))
        assert a == b
        assert hash(a) == hash(b)


class TestHelpers:
    def test_materialize_views_keyed_by_name(self, db):
        views = [
            View(parse_query("V1(FID, FName, Desc) :- Family(FID, FName, Desc)")),
            View(parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)")),
        ]
        relations = materialize_views(views, db)
        assert set(relations) == {"V1", "V3"}
        assert relations["V1"].schema.name == "V1"
        assert len(relations["V3"]) == 3

    def test_duplicate_view_names_rejected(self, db):
        views = [
            View(parse_query("V(X) :- Family(X, Y, Z)")),
            View(parse_query("V(A) :- FamilyIntro(A, B)")),
        ]
        with pytest.raises(RewritingError):
            materialize_views(views, db)
        with pytest.raises(RewritingError):
            views_by_name(views)
