"""Tests for attributes, relation schemas and database schemas."""

import pytest

from repro.errors import ArityError, SchemaError, UnknownRelationError
from repro.relational.schema import Attribute, DatabaseSchema, ForeignKey, RelationSchema


class TestAttribute:
    def test_defaults_to_string_type(self):
        assert Attribute("name").dtype is str

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_unsupported_type(self):
        with pytest.raises(SchemaError):
            Attribute("x", dict)

    def test_accepts_none_values(self):
        assert Attribute("x", int).accepts(None)

    def test_accepts_matching_type(self):
        assert Attribute("x", int).accepts(3)
        assert not Attribute("x", int).accepts("3")

    def test_object_type_accepts_anything(self):
        attribute = Attribute("x", object)
        assert attribute.accepts(3)
        assert attribute.accepts("three")
        assert attribute.accepts((1, 2))

    def test_float_attribute_accepts_int(self):
        assert Attribute("x", float).accepts(3)

    def test_numeric_attribute_rejects_bool(self):
        assert not Attribute("x", int).accepts(True)
        assert not Attribute("x", float).accepts(False)


class TestRelationSchema:
    def test_attribute_names_in_order(self):
        schema = RelationSchema("Family", ["FID", "FName", "Desc"])
        assert schema.attribute_names == ("FID", "FName", "Desc")
        assert schema.arity == 3

    def test_strings_become_attributes(self):
        schema = RelationSchema("R", ["a", "b"])
        assert all(isinstance(a, Attribute) for a in schema.attributes)

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_key_must_reference_existing_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"], key=["missing"])

    def test_position_lookup(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        assert schema.position("b") == 1
        with pytest.raises(SchemaError):
            schema.position("z")

    def test_key_positions(self):
        schema = RelationSchema("R", ["a", "b", "c"], key=["c", "a"])
        assert schema.key_positions() == (2, 0)
        assert RelationSchema("R", ["a"]).key_positions() is None

    def test_validate_row_checks_arity(self):
        schema = RelationSchema("R", ["a", "b"])
        with pytest.raises(ArityError):
            schema.validate_row((1,))

    def test_validate_row_checks_types(self):
        schema = RelationSchema("R", [Attribute("a", int)])
        with pytest.raises(SchemaError):
            schema.validate_row(("not an int",))

    def test_row_from_mapping_requires_all_attributes(self):
        schema = RelationSchema("R", ["a", "b"])
        assert schema.row_from_mapping({"a": "x", "b": "y"}) == ("x", "y")
        with pytest.raises(SchemaError):
            schema.row_from_mapping({"a": "x"})

    def test_row_round_trip_via_mapping(self):
        schema = RelationSchema("R", ["a", "b"])
        row = ("x", "y")
        assert schema.row_from_mapping(schema.row_to_mapping(row)) == row

    def test_key_of_projects_key_columns(self):
        schema = RelationSchema("R", [Attribute("a", int), Attribute("b", str)], key=["a"])
        assert schema.key_of((7, "x")) == (7,)

    def test_equality_and_hash(self):
        first = RelationSchema("R", ["a", "b"], key=["a"])
        second = RelationSchema("R", ["a", "b"], key=["a"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != RelationSchema("R", ["a", "b"])

    def test_immutable(self):
        schema = RelationSchema("R", ["a"])
        with pytest.raises(AttributeError):
            schema.name = "S"


class TestDatabaseSchema:
    def _schema(self):
        return DatabaseSchema(
            [
                RelationSchema("Family", ["FID", "FName"], key=["FID"]),
                RelationSchema("Committee", ["FID", "PName"]),
            ],
            foreign_keys=[ForeignKey("Committee", ("FID",), "Family", ("FID",))],
        )

    def test_relation_lookup(self):
        schema = self._schema()
        assert schema.relation("Family").arity == 2
        assert schema.has_relation("Committee")
        assert "Family" in schema

    def test_unknown_relation_raises(self):
        with pytest.raises(UnknownRelationError):
            self._schema().relation("Nope")

    def test_duplicate_relation_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", ["a"]), RelationSchema("R", ["b"])])

    def test_foreign_key_validation(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema(
                [RelationSchema("A", ["x"])],
                foreign_keys=[ForeignKey("A", ("x",), "Missing", ("y",))],
            )

    def test_foreign_key_column_counts_must_match(self):
        with pytest.raises(SchemaError):
            ForeignKey("A", ("x", "y"), "B", ("z",))

    def test_extend_creates_new_schema(self):
        schema = self._schema()
        extended = schema.extend([RelationSchema("Extra", ["id"])])
        assert extended.has_relation("Extra")
        assert not schema.has_relation("Extra")

    def test_iteration_and_length(self):
        schema = self._schema()
        assert len(schema) == 2
        assert {rs.name for rs in schema} == {"Family", "Committee"}
