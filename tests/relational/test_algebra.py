"""Tests for the relational-algebra operators."""

import pytest

from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def employees():
    schema = RelationSchema(
        "Employee", [Attribute("id", int), Attribute("name", str), Attribute("dept", str)]
    )
    return Relation(
        schema,
        [(1, "Ada", "eng"), (2, "Grace", "eng"), (3, "Edsger", "math")],
    )


@pytest.fixture
def departments():
    schema = RelationSchema("Dept", [Attribute("dept", str), Attribute("city", str)])
    return Relation(schema, [("eng", "Zurich"), ("math", "Austin")])


class TestUnaryOperators:
    def test_select_by_predicate(self, employees):
        engineers = algebra.select(employees, lambda row: row["dept"] == "eng")
        assert len(engineers) == 2

    def test_select_eq(self, employees):
        assert len(algebra.select_eq(employees, "dept", "math")) == 1

    def test_project_removes_duplicates(self, employees):
        depts = algebra.project(employees, ["dept"])
        assert depts.rows == {("eng",), ("math",)}

    def test_project_reorders_columns(self, employees):
        projected = algebra.project(employees, ["name", "id"])
        assert (("Ada", 1)) in projected.rows

    def test_rename(self, employees):
        renamed = algebra.rename(employees, {"dept": "department"})
        assert renamed.schema.has_attribute("department")
        assert not renamed.schema.has_attribute("dept")


class TestSetOperators:
    def test_union(self, employees):
        extra = Relation(employees.schema, [(4, "Alan", "cs")])
        assert len(algebra.union(employees, extra)) == 4

    def test_union_arity_mismatch(self, employees, departments):
        with pytest.raises(SchemaError):
            algebra.union(employees, departments)

    def test_difference(self, employees):
        minus = Relation(employees.schema, [(1, "Ada", "eng")])
        assert len(algebra.difference(employees, minus)) == 2

    def test_intersection(self, employees):
        other = Relation(employees.schema, [(1, "Ada", "eng"), (9, "Nobody", "x")])
        assert algebra.intersection(employees, other).rows == {(1, "Ada", "eng")}


class TestJoins:
    def test_cartesian_product_size(self, employees, departments):
        product = algebra.cartesian_product(employees, departments)
        assert len(product) == len(employees) * len(departments)

    def test_natural_join_on_shared_attribute(self, employees, departments):
        joined = algebra.natural_join(employees, departments)
        assert len(joined) == 3
        assert joined.schema.has_attribute("city")

    def test_natural_join_without_shared_attributes_is_product(self, employees):
        other = Relation(RelationSchema("Other", [Attribute("x", int)]), [(1,), (2,)])
        assert len(algebra.natural_join(employees, other)) == 6

    def test_equi_join(self, employees, departments):
        joined = algebra.equi_join(employees, departments, [("dept", "dept")])
        assert len(joined) == 3

    def test_semi_join(self, employees, departments):
        only_eng = Relation(departments.schema, [("eng", "Zurich")])
        result = algebra.semi_join(employees, only_eng, [("dept", "dept")])
        assert {row[1] for row in result} == {"Ada", "Grace"}


class TestSelfJoins:
    """Regression: R ⋈ R used to emit duplicate prefixed attributes (``R.a``
    twice) and die with SchemaError in the output-schema constructor."""

    def test_cartesian_product_with_itself(self, employees):
        product = algebra.cartesian_product(employees, employees)
        assert len(product) == len(employees) ** 2
        names = product.schema.attribute_names
        assert len(set(names)) == len(names)
        assert names == (
            "Employee.id",
            "Employee.name",
            "Employee.dept",
            "Employee.id_2",
            "Employee.name_2",
            "Employee.dept_2",
        )

    def test_equi_join_with_itself(self, employees):
        joined = algebra.equi_join(employees, employees, [("dept", "dept")])
        # eng×eng gives 4 pairs, math×math gives 1.
        assert len(joined) == 5
        names = joined.schema.attribute_names
        assert len(set(names)) == len(names)
        assert (1, "Ada", "eng", 2, "Grace", "eng") in joined

    def test_self_equi_join_on_key_is_identity_pairing(self, employees):
        joined = algebra.equi_join(employees, employees, [("id", "id")])
        assert len(joined) == len(employees)
        assert all(row[:3] == row[3:] for row in joined)

    def test_right_suffix_is_deterministic(self, employees):
        first = algebra.cartesian_product(employees, employees)
        second = algebra.cartesian_product(employees, employees)
        assert first.schema.attribute_names == second.schema.attribute_names


class TestAggregation:
    def test_group_count(self, employees):
        counts = algebra.group_count(employees, ["dept"])
        assert dict((row[0], row[1]) for row in counts) == {"eng": 2, "math": 1}
