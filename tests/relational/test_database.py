"""Tests for the Database: updates, constraints, indexes, hashing."""

import pytest

from repro.errors import IntegrityError, UnknownRelationError
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, ForeignKey, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema("Family", [Attribute("FID", int), Attribute("FName", str)], key=["FID"]),
            RelationSchema("Committee", [Attribute("FID", int), Attribute("PName", str)]),
        ],
        foreign_keys=[ForeignKey("Committee", ("FID",), "Family", ("FID",))],
    )


@pytest.fixture
def db(schema):
    database = Database(schema)
    database.insert("Family", (1, "Calcitonin"))
    database.insert("Family", (2, "Adenosine"))
    database.insert("Committee", (1, "D. Hoyer"))
    return database


class TestUpdates:
    def test_insert_and_contains(self, db):
        assert (1, "Calcitonin") in db.relation("Family")

    def test_insert_mapping(self, db):
        db.insert("Family", {"FID": 3, "FName": "Opioid"})
        assert db.relation("Family").lookup_key((3,)) == (3, "Opioid")

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.insert("Nope", (1,))

    def test_foreign_key_enforced_on_insert(self, db):
        with pytest.raises(IntegrityError):
            db.insert("Committee", (42, "Nobody"))

    def test_foreign_key_enforced_on_delete(self, db):
        with pytest.raises(IntegrityError):
            db.delete("Family", (1, "Calcitonin"))

    def test_delete_unreferenced_row(self, db):
        assert db.delete("Family", (2, "Adenosine"))

    def test_foreign_key_can_be_disabled(self, schema):
        database = Database(schema, enforce_foreign_keys=False)
        database.insert("Committee", (42, "Nobody"))
        assert database.validate()  # reports the dangling reference

    def test_validate_clean_instance(self, db):
        assert db.validate() == []

    def test_insert_many(self, db):
        added = db.insert_many("Family", [(5, "A"), (6, "B"), (5, "A")])
        assert added == 2


class TestIndexes:
    def test_index_lookup(self, db):
        index = db.index_on("Family", ["FName"])
        assert list(index.lookup(("Calcitonin",))) == [(1, "Calcitonin")]

    def test_index_is_maintained_on_insert(self, db):
        index = db.index_on("Family", ["FName"])
        db.insert("Family", (7, "Calcitonin"))
        assert len(list(index.lookup(("Calcitonin",)))) == 2

    def test_index_is_maintained_on_delete(self, db):
        index = db.index_on("Family", ["FName"])
        db.delete("Family", (2, "Adenosine"))
        assert list(index.lookup(("Adenosine",))) == []

    def test_index_is_cached(self, db):
        assert db.index_on("Family", ["FName"]) is db.index_on("Family", ["FName"])


class TestInspection:
    def test_total_rows_and_sizes(self, db):
        assert db.total_rows() == 3
        assert db.sizes() == {"Family": 2, "Committee": 1}

    def test_content_hash_changes_with_content(self, db):
        before = db.content_hash()
        db.insert("Family", (9, "New"))
        assert db.content_hash() != before

    def test_content_hash_is_order_independent(self, schema):
        a = Database(schema)
        b = Database(schema)
        rows = [(1, "X"), (2, "Y"), (3, "Z")]
        a.insert_many("Family", rows)
        b.insert_many("Family", list(reversed(rows)))
        assert a.content_hash() == b.content_hash()

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.insert("Family", (10, "Clone"))
        assert db.sizes()["Family"] == 2
        assert clone.sizes()["Family"] == 3

    def test_copy_preserves_content(self, db):
        assert db.copy() == db

    def test_repr_mentions_sizes(self, db):
        assert "Family=2" in repr(db)
