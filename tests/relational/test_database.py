"""Tests for the Database: updates, constraints, indexes, hashing."""

import pytest

from repro.errors import IntegrityError, UnknownRelationError
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, ForeignKey, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema("Family", [Attribute("FID", int), Attribute("FName", str)], key=["FID"]),
            RelationSchema("Committee", [Attribute("FID", int), Attribute("PName", str)]),
        ],
        foreign_keys=[ForeignKey("Committee", ("FID",), "Family", ("FID",))],
    )


@pytest.fixture
def db(schema):
    database = Database(schema)
    database.insert("Family", (1, "Calcitonin"))
    database.insert("Family", (2, "Adenosine"))
    database.insert("Committee", (1, "D. Hoyer"))
    return database


class TestUpdates:
    def test_insert_and_contains(self, db):
        assert (1, "Calcitonin") in db.relation("Family")

    def test_insert_mapping(self, db):
        db.insert("Family", {"FID": 3, "FName": "Opioid"})
        assert db.relation("Family").lookup_key((3,)) == (3, "Opioid")

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.insert("Nope", (1,))

    def test_foreign_key_enforced_on_insert(self, db):
        with pytest.raises(IntegrityError):
            db.insert("Committee", (42, "Nobody"))

    def test_foreign_key_enforced_on_delete(self, db):
        with pytest.raises(IntegrityError):
            db.delete("Family", (1, "Calcitonin"))

    def test_delete_unreferenced_row(self, db):
        assert db.delete("Family", (2, "Adenosine"))

    def test_foreign_key_can_be_disabled(self, schema):
        database = Database(schema, enforce_foreign_keys=False)
        database.insert("Committee", (42, "Nobody"))
        assert database.validate()  # reports the dangling reference

    def test_validate_clean_instance(self, db):
        assert db.validate() == []

    def test_insert_many(self, db):
        added = db.insert_many("Family", [(5, "A"), (6, "B"), (5, "A")])
        assert added == 2


class TestIndexes:
    def test_index_lookup(self, db):
        index = db.index_on("Family", ["FName"])
        assert list(index.lookup(("Calcitonin",))) == [(1, "Calcitonin")]

    def test_index_is_maintained_on_insert(self, db):
        index = db.index_on("Family", ["FName"])
        db.insert("Family", (7, "Calcitonin"))
        assert len(list(index.lookup(("Calcitonin",)))) == 2

    def test_index_is_maintained_on_delete(self, db):
        index = db.index_on("Family", ["FName"])
        db.delete("Family", (2, "Adenosine"))
        assert list(index.lookup(("Adenosine",))) == []

    def test_index_is_cached(self, db):
        assert db.index_on("Family", ["FName"]) is db.index_on("Family", ["FName"])

    def test_index_on_positions_matches_index_on(self, db):
        assert db.index_on_positions("Family", (1,)) is db.index_on("Family", ["FName"])


class TestOutOfBandMutations:
    """Mutations applied directly to a database-owned Relation (bypassing
    Database.insert/delete) used to leave indexes stale and the generation
    unchanged, so index lookups silently missed rows and generation-keyed
    caches kept serving stale data.  The database now detects the drift via
    Relation.version."""

    def test_direct_insert_used_to_miss_in_index_now_visible(self, db):
        index = db.index_on("Family", ["FName"])
        assert list(index.lookup(("Rogue",))) == []
        # Bypass the database update path entirely.
        db.relation("Family").insert((42, "Rogue"))
        # The stale index object no longer sees the row (that was the silent
        # wrong-answer path)...
        assert list(index.lookup(("Rogue",))) == []
        # ...but the database notices the drift: a fresh index_on call
        # returns a rebuilt index that does.
        rebuilt = db.index_on("Family", ["FName"])
        assert rebuilt is not index
        assert list(rebuilt.lookup(("Rogue",))) == [(42, "Rogue")]

    def test_direct_mutation_bumps_generation(self, db):
        before = db.generation
        db.relation("Family").insert((43, "OutOfBand"))
        assert db.generation > before
        # Reading the generation folds the drift in exactly once.
        assert db.generation == before + 1

    def test_direct_delete_detected(self, db):
        index = db.index_on("Committee", ["PName"])
        assert list(index.lookup(("D. Hoyer",)))
        before = db.generation
        db.relation("Committee").delete((1, "D. Hoyer"))
        assert db.generation == before + 1
        assert list(db.index_on("Committee", ["PName"]).lookup(("D. Hoyer",))) == []

    def test_drift_not_swallowed_by_subsequent_applied_insert(self, db):
        # Regression: an in-band insert on the same relation used to record
        # the post-mutation version unconditionally, silently absorbing
        # out-of-band drift that never bumped the generation or dropped the
        # stale indexes.
        index = db.index_on("Family", ["FName"])
        before = db.generation
        db.relation("Family").insert((42, "Rogue"))  # out of band, unobserved
        db.insert("Family", (43, "Next"))  # in band, before any generation read
        assert db.generation == before + 2  # drift + applied insert
        rebuilt = db.index_on("Family", ["FName"])
        assert rebuilt is not index
        assert list(rebuilt.lookup(("Rogue",))) == [(42, "Rogue")]

    def test_drift_not_swallowed_by_subsequent_applied_delete(self, db):
        before = db.generation
        db.relation("Family").insert((42, "Rogue"))  # out of band, unobserved
        db.delete("Family", (42, "Rogue"))  # in band, same relation
        assert db.generation == before + 2

    def test_concurrent_readers_fold_one_drift_exactly_once(self, db):
        # generation reads and index probes run on the serving layer's thread
        # pool; one out-of-band drift must bump the generation once and never
        # crash a reader mid-drop.
        from concurrent.futures import ThreadPoolExecutor

        db.index_on("Family", ["FName"])
        before = db.generation
        db.relation("Family").insert((42, "Rogue"))

        def read(_i):
            db.index_on("Family", ["FName"])
            return db.generation

        with ThreadPoolExecutor(max_workers=8) as pool:
            generations = list(pool.map(read, range(64)))
        assert set(generations) == {before + 1}

    def test_applied_updates_do_not_double_count(self, db):
        before = db.generation
        db.insert("Family", (44, "Applied"))
        assert db.generation == before + 1
        assert db.generation == before + 1  # repeated reads are stable

    def test_evaluator_sees_out_of_band_rows(self, db):
        from repro.query.evaluator import QueryEvaluator
        from repro.query.parser import parse_query

        evaluator = QueryEvaluator(db)
        query = parse_query('Q(FID) :- Family(FID, "Calcitonin")')
        assert evaluator.evaluate(query).rows == {(1,)}
        db.relation("Family").insert((77, "Calcitonin"))
        assert evaluator.evaluate(query).rows == {(1,), (77,)}


class TestInspection:
    def test_total_rows_and_sizes(self, db):
        assert db.total_rows() == 3
        assert db.sizes() == {"Family": 2, "Committee": 1}

    def test_content_hash_changes_with_content(self, db):
        before = db.content_hash()
        db.insert("Family", (9, "New"))
        assert db.content_hash() != before

    def test_content_hash_is_order_independent(self, schema):
        a = Database(schema)
        b = Database(schema)
        rows = [(1, "X"), (2, "Y"), (3, "Z")]
        a.insert_many("Family", rows)
        b.insert_many("Family", list(reversed(rows)))
        assert a.content_hash() == b.content_hash()

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.insert("Family", (10, "Clone"))
        assert db.sizes()["Family"] == 2
        assert clone.sizes()["Family"] == 3

    def test_copy_preserves_content(self, db):
        assert db.copy() == db

    def test_repr_mentions_sizes(self, db):
        assert "Family=2" in repr(db)
