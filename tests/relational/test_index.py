"""Tests for the hash index."""

from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema


def make_relation():
    schema = RelationSchema("R", [Attribute("a", int), Attribute("b", str)])
    return Relation(schema, [(1, "x"), (2, "x"), (3, "y")])


class TestHashIndex:
    def test_lookup_groups_rows_by_key(self):
        index = HashIndex(make_relation(), positions=[1])
        assert sorted(index.lookup(("x",))) == [(1, "x"), (2, "x")]
        assert list(index.lookup(("z",))) == []

    def test_composite_key(self):
        index = HashIndex(make_relation(), positions=[0, 1])
        assert list(index.lookup((3, "y"))) == [(3, "y")]

    def test_add_and_remove(self):
        relation = make_relation()
        index = HashIndex(relation, positions=[1])
        index.add((4, "y"))
        assert sorted(index.lookup(("y",))) == [(3, "y"), (4, "y")]
        index.remove((3, "y"))
        assert list(index.lookup(("y",))) == [(4, "y")]
        assert len(index) == 3

    def test_remove_missing_row_is_noop(self):
        index = HashIndex(make_relation(), positions=[0])
        index.remove((99, "zz"))
        assert len(index) == 3

    def test_keys_enumerates_distinct_keys(self):
        index = HashIndex(make_relation(), positions=[1])
        assert set(index.keys()) == {("x",), ("y",)}
