"""Tests for relation instances (set semantics, keys, lookups)."""

import pytest

from repro.errors import IntegrityError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def family_schema():
    return RelationSchema(
        "Family", [Attribute("FID", int), Attribute("FName", str)], key=["FID"]
    )


@pytest.fixture
def family(family_schema):
    return Relation(family_schema, [(1, "Calcitonin"), (2, "Adenosine")])


class TestInsertDelete:
    def test_insert_returns_true_on_change(self, family):
        assert family.insert((3, "Opioid"))
        assert len(family) == 3

    def test_duplicate_insert_is_noop(self, family):
        assert not family.insert((1, "Calcitonin"))
        assert len(family) == 2

    def test_insert_mapping(self, family):
        family.insert({"FID": 5, "FName": "Orexin"})
        assert (5, "Orexin") in family

    def test_key_violation_raises(self, family):
        with pytest.raises(IntegrityError):
            family.insert((1, "Different name"))

    def test_insert_many_counts_changes(self, family):
        added = family.insert_many([(3, "A"), (3, "A"), (4, "B")])
        assert added == 2

    def test_delete_existing(self, family):
        assert family.delete((1, "Calcitonin"))
        assert (1, "Calcitonin") not in family
        # the key becomes free again
        family.insert((1, "Reused"))

    def test_delete_missing_returns_false(self, family):
        assert not family.delete((99, "Nope"))

    def test_delete_where(self, family):
        removed = family.delete_where(lambda row: row[0] == 2)
        assert removed == 1
        assert len(family) == 1

    def test_clear(self, family):
        family.clear()
        assert len(family) == 0
        family.insert((1, "Again"))  # key index was cleared too


class TestLookup:
    def test_lookup_key(self, family):
        assert family.lookup_key((1,)) == (1, "Calcitonin")
        assert family.lookup_key((42,)) is None

    def test_lookup_key_requires_declared_key(self):
        keyless = Relation(RelationSchema("R", ["a"]))
        with pytest.raises(IntegrityError):
            keyless.lookup_key(("x",))

    def test_select_returns_new_relation(self, family):
        selected = family.select(lambda row: row[1].startswith("C"))
        assert len(selected) == 1
        assert len(family) == 2

    def test_rows_matching(self, family):
        assert list(family.rows_matching({1: "Adenosine"})) == [(2, "Adenosine")]

    def test_project_positions(self, family):
        assert family.project_positions([1]) == {("Calcitonin",), ("Adenosine",)}

    def test_column(self, family):
        assert family.column("FName") == {"Calcitonin", "Adenosine"}


class TestViews:
    def test_rows_snapshot_is_immutable_copy(self, family):
        snapshot = family.rows
        family.insert((3, "New"))
        assert len(snapshot) == 2

    def test_sorted_rows_deterministic(self, family):
        assert family.sorted_rows() == [(1, "Calcitonin"), (2, "Adenosine")]

    def test_sorted_rows_with_uncomparable_values(self):
        relation = Relation(RelationSchema("R", [Attribute("x", object)]))
        relation.insert((1,))
        relation.insert(("a",))
        assert len(relation.sorted_rows()) == 2

    def test_as_dicts(self, family):
        assert family.as_dicts()[0] == {"FID": 1, "FName": "Calcitonin"}

    def test_copy_is_independent(self, family):
        clone = family.copy()
        clone.insert((9, "Clone only"))
        assert len(family) == 2

    def test_equality(self, family, family_schema):
        same = Relation(family_schema, [(2, "Adenosine"), (1, "Calcitonin")])
        assert family == same
