"""Tests for CSV / JSON import-export."""

import pytest

from repro.errors import SchemaError
from repro.relational.csvio import (
    database_from_dicts,
    database_to_dicts,
    dump_database_json,
    load_database_json,
    relation_from_csv,
    relation_to_csv,
)
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.workloads import gtopdb


@pytest.fixture
def family_schema():
    return RelationSchema(
        "Family",
        [Attribute("FID", int), Attribute("FName", str), Attribute("Score", float)],
        key=["FID"],
    )


class TestCsv:
    def test_round_trip(self, tmp_path, family_schema):
        relation = Relation(family_schema, [(1, "Calcitonin", 0.5), (2, "Adenosine", 1.5)])
        path = tmp_path / "family.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv(family_schema, path)
        assert loaded == relation

    def test_none_round_trips_as_empty_cell(self, tmp_path, family_schema):
        relation = Relation(family_schema, [(1, "Calcitonin", None)])
        path = tmp_path / "family.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv(family_schema, path)
        assert (1, "Calcitonin", None) in loaded

    def test_header_mismatch_raises(self, tmp_path, family_schema):
        path = tmp_path / "bad.csv"
        path.write_text("A,B,C\n1,2,3\n", encoding="utf-8")
        with pytest.raises(SchemaError):
            relation_from_csv(family_schema, path)

    def test_empty_file_yields_empty_relation(self, tmp_path, family_schema):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        assert len(relation_from_csv(family_schema, path)) == 0


class TestDictsAndJson:
    def test_database_dict_round_trip(self):
        db = gtopdb.paper_instance()
        data = database_to_dicts(db)
        rebuilt = database_from_dicts(db.schema, data)
        assert rebuilt == db

    def test_json_round_trip(self, tmp_path):
        db = gtopdb.paper_instance()
        path = tmp_path / "gtopdb.json"
        dump_database_json(db, path)
        loaded = load_database_json(path)
        assert loaded.sizes() == db.sizes()
        assert loaded.relation("Family").rows == db.relation("Family").rows

    def test_json_preserves_schema(self, tmp_path):
        schema = DatabaseSchema([RelationSchema("R", [Attribute("a", int)], key=["a"])])
        db = Database(schema)
        db.insert("R", (5,))
        path = tmp_path / "simple.json"
        dump_database_json(db, path)
        loaded = load_database_json(path)
        assert loaded.relation_schema("R").key == ("a",)
        assert (5,) in loaded.relation("R")
