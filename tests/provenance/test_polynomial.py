"""Tests for provenance polynomials and their universality."""

from repro.provenance.polynomial import Monomial, Polynomial, PolynomialSemiring
from repro.provenance.semirings import BooleanSemiring, CountingSemiring, TropicalSemiring


class TestMonomial:
    def test_from_tokens_counts_multiplicity(self):
        monomial = Monomial.from_tokens(["x", "y", "x"])
        assert dict(monomial.powers) == {"x": 2, "y": 1}
        assert monomial.degree() == 3

    def test_times_adds_exponents(self):
        a = Monomial.from_tokens(["x"])
        b = Monomial.from_tokens(["x", "y"])
        assert dict(a.times(b).powers) == {"x": 2, "y": 1}

    def test_unit(self):
        assert Monomial.unit().degree() == 0
        assert str(Monomial.unit()) == "1"

    def test_str(self):
        assert str(Monomial.from_tokens(["x", "x", "y"])) in ("x^2·y", "y·x^2")


class TestPolynomialArithmetic:
    def test_zero_and_one(self):
        x = Polynomial.variable("x")
        assert (x + Polynomial.zero()) == x
        assert (x * Polynomial.one()) == x
        assert (x * Polynomial.zero()).is_zero()

    def test_addition_collects_coefficients(self):
        x = Polynomial.variable("x")
        double = x + x
        assert double.terms[0][1] == 2
        assert double.monomial_count() == 1

    def test_distribution(self):
        x, y, z = (Polynomial.variable(v) for v in "xyz")
        assert x * (y + z) == x * y + x * z

    def test_commutativity(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert x * y == y * x
        assert x + y == y + x

    def test_join_of_sums(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        product = (x + y) * (x + y)
        # x^2 + 2xy + y^2
        assert product.monomial_count() == 3
        assert product.degree() == 2

    def test_tokens(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert (x * y + x).tokens() == {"x", "y"}


class TestEvaluation:
    def test_evaluation_into_counting(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        polynomial = x * x + x * y  # x² + xy
        value = polynomial.evaluate(CountingSemiring(), {"x": 2, "y": 3})
        assert value == 4 + 6

    def test_evaluation_into_boolean(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        polynomial = x * y
        assert polynomial.evaluate(BooleanSemiring(), {"x": True, "y": False}) is False
        assert polynomial.evaluate(BooleanSemiring(), {"x": True, "y": True}) is True

    def test_evaluation_into_tropical(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        polynomial = x * y + x  # min(cost(x)+cost(y), cost(x))
        assert polynomial.evaluate(TropicalSemiring(), {"x": 1.0, "y": 5.0}) == 1.0

    def test_evaluation_with_callable_valuation(self):
        x = Polynomial.variable(("R", (1,)))
        value = x.evaluate(CountingSemiring(), lambda token: 7)
        assert value == 7

    def test_homomorphism_property(self):
        # evaluate(a op b) == evaluate(a) op evaluate(b) for a sample valuation
        semiring = CountingSemiring()
        valuation = {"x": 2, "y": 3, "z": 5}
        a = Polynomial.variable("x") * Polynomial.variable("y")
        b = Polynomial.variable("z") + Polynomial.variable("x")
        left = (a + b).evaluate(semiring, valuation)
        right = semiring.plus(a.evaluate(semiring, valuation), b.evaluate(semiring, valuation))
        assert left == right
        left = (a * b).evaluate(semiring, valuation)
        right = semiring.times(a.evaluate(semiring, valuation), b.evaluate(semiring, valuation))
        assert left == right


class TestPolynomialSemiring:
    def test_axioms_on_small_sample(self):
        semiring = PolynomialSemiring()
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        semiring.check_axioms([semiring.zero(), semiring.one(), x, y, x + y, x * y])

    def test_str_rendering(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert str(Polynomial.zero()) == "0"
        assert "x" in str(x * y + x)
