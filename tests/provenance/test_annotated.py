"""Tests for annotated relations and annotation-propagating evaluation."""

import pytest

from repro.errors import ProvenanceError
from repro.provenance.annotated import (
    AnnotatedDatabase,
    AnnotatedRelation,
    evaluate_annotated,
    lineage_of,
)
from repro.provenance.polynomial import Polynomial
from repro.provenance.semirings import BooleanSemiring, CountingSemiring
from repro.query.parser import parse_query
from repro.relational.schema import Attribute, RelationSchema
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


class TestAnnotatedRelation:
    def _relation(self):
        schema = RelationSchema("R", [Attribute("a", int)])
        return AnnotatedRelation(schema, CountingSemiring())

    def test_set_and_get(self):
        relation = self._relation()
        relation.set((1,), 3)
        assert relation.annotation((1,)) == 3
        assert relation.annotation((2,)) == 0

    def test_zero_annotation_removes_row(self):
        relation = self._relation()
        relation.set((1,), 3)
        relation.set((1,), 0)
        assert len(relation) == 0

    def test_add_combines_with_plus(self):
        relation = self._relation()
        relation.add((1,), 2)
        relation.add((1,), 3)
        assert relation.annotation((1,)) == 5

    def test_support(self):
        relation = self._relation()
        relation.set((1,), 2)
        relation.set((2,), 1)
        assert len(relation.support()) == 2


class TestAnnotatedDatabase:
    def test_tuple_tokens_annotate_every_row(self, db):
        annotated = AnnotatedDatabase.with_tuple_tokens(db)
        family = annotated.relation("Family")
        assert len(family) == 3
        annotation = family.annotation((11, "Calcitonin", "C1"))
        assert annotation.tokens() == {("Family", (11, "Calcitonin", "C1"))}

    def test_annotate_missing_tuple_raises(self, db):
        annotated = AnnotatedDatabase(db, CountingSemiring())
        with pytest.raises(ProvenanceError):
            annotated.annotate("Family", (999, "Nope", "X"), 1)


class TestAnnotatedEvaluation:
    def test_polynomial_propagation_on_paper_query(self, db):
        annotated = AnnotatedDatabase.with_tuple_tokens(db)
        query = parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)")
        result = evaluate_annotated(query, annotated)
        calcitonin = result.annotation(("Calcitonin",))
        # two derivations (families 11 and 12), each joining two base tuples
        assert calcitonin.monomial_count() == 2
        assert calcitonin.degree() == 2
        adenosine = result.annotation(("Adenosine",))
        assert adenosine.monomial_count() == 1

    def test_counting_semiring_counts_derivations(self, db):
        annotated = AnnotatedDatabase(db, CountingSemiring())
        for relation in db.relations():
            for row in relation:
                annotated.annotate(relation.schema.name, row, 1)
        query = parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)")
        result = evaluate_annotated(query, annotated)
        assert result.annotation(("Calcitonin",)) == 2
        assert result.annotation(("Adenosine",)) == 1

    def test_boolean_semiring_matches_set_semantics(self, db):
        annotated = AnnotatedDatabase(db, BooleanSemiring())
        query = parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)")
        result = evaluate_annotated(query, annotated, default_annotation=True)
        assert set(result.support().rows) == {("Calcitonin",), ("Adenosine",)}

    def test_default_annotation_used_for_unannotated_tuples(self, db):
        annotated = AnnotatedDatabase(db, CountingSemiring())
        query = parse_query("Q(FName) :- Family(FID, FName, D)")
        result = evaluate_annotated(query, annotated, default_annotation=1)
        assert result.annotation(("Adenosine",)) == 1

    def test_lineage_of_collects_contributing_tuples(self, db):
        query = parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)")
        lineage = lineage_of(query, db)
        assert ("Family", (13, "Adenosine", "A1")) in lineage[("Adenosine",)]
        assert ("FamilyIntro", (13, "Adenosine receptors intro")) in lineage[("Adenosine",)]
        assert len(lineage[("Calcitonin",)]) == 4

    def test_constants_in_query_are_respected(self, db):
        annotated = AnnotatedDatabase.with_tuple_tokens(db)
        query = parse_query("Q(FName) :- Family(11, FName, D)")
        result = evaluate_annotated(query, annotated)
        assert len(result) == 1
        polynomial = result.annotation(("Calcitonin",))
        assert isinstance(polynomial, Polynomial)
        assert polynomial.degree() == 1
