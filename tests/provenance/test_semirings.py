"""Tests for the standard provenance semirings."""

import math

import pytest

from repro.errors import ProvenanceError
from repro.provenance.semirings import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    SecuritySemiring,
    TropicalSemiring,
    WhySemiring,
)


class TestBoolean:
    def test_operations(self):
        semiring = BooleanSemiring()
        assert semiring.plus(True, False) is True
        assert semiring.times(True, False) is False
        assert semiring.zero() is False
        assert semiring.one() is True

    def test_axioms(self):
        BooleanSemiring().check_axioms([True, False])


class TestCounting:
    def test_operations(self):
        semiring = CountingSemiring()
        assert semiring.plus(2, 3) == 5
        assert semiring.times(2, 3) == 6

    def test_folds(self):
        semiring = CountingSemiring()
        assert semiring.sum([1, 2, 3]) == 6
        assert semiring.product([2, 3, 4]) == 24
        assert semiring.sum([]) == 0
        assert semiring.product([]) == 1

    def test_axioms(self):
        CountingSemiring().check_axioms([0, 1, 2, 5])


class TestTropical:
    def test_operations(self):
        semiring = TropicalSemiring()
        assert semiring.plus(3.0, 5.0) == 3.0
        assert semiring.times(3.0, 5.0) == 8.0
        assert semiring.zero() == math.inf
        assert semiring.one() == 0.0

    def test_axioms(self):
        TropicalSemiring().check_axioms([0.0, 1.0, 2.5, math.inf])


class TestLineage:
    def test_union_behaviour(self):
        semiring = LineageSemiring()
        a = frozenset({"t1"})
        b = frozenset({"t2"})
        assert semiring.plus(a, b) == frozenset({"t1", "t2"})
        assert semiring.times(a, b) == frozenset({"t1", "t2"})

    def test_zero_annihilates(self):
        semiring = LineageSemiring()
        a = frozenset({"t1"})
        assert semiring.times(a, semiring.zero()) == semiring.zero()
        assert semiring.plus(a, semiring.zero()) == a

    def test_axioms(self):
        semiring = LineageSemiring()
        samples = [semiring.zero(), semiring.one(), frozenset({"a"}), frozenset({"a", "b"})]
        semiring.check_axioms(samples)


class TestWhy:
    def test_witness_combination(self):
        semiring = WhySemiring()
        a = frozenset({frozenset({"t1"})})
        b = frozenset({frozenset({"t2"}), frozenset({"t3"})})
        product = semiring.times(a, b)
        assert frozenset({"t1", "t2"}) in product
        assert frozenset({"t1", "t3"}) in product
        assert len(product) == 2

    def test_plus_is_union_of_witness_sets(self):
        semiring = WhySemiring()
        a = frozenset({frozenset({"t1"})})
        b = frozenset({frozenset({"t2"})})
        assert len(semiring.plus(a, b)) == 2

    def test_axioms(self):
        semiring = WhySemiring()
        samples = [
            semiring.zero(),
            semiring.one(),
            frozenset({frozenset({"a"})}),
            frozenset({frozenset({"a"}), frozenset({"b"})}),
        ]
        semiring.check_axioms(samples)


class TestSecurity:
    def test_operations(self):
        semiring = SecuritySemiring(top=3)
        assert semiring.plus(1, 2) == 1  # most permissive alternative
        assert semiring.times(1, 2) == 2  # most restrictive joint use
        assert semiring.zero() == 4

    def test_axioms(self):
        semiring = SecuritySemiring(top=3)
        semiring.check_axioms([0, 1, 2, 3, 4])


class TestAxiomChecker:
    def test_detects_violation(self):
        class Broken(BooleanSemiring):
            name = "broken"

            def times(self, left, right):  # not commutative with plus identity
                return left

        with pytest.raises(ProvenanceError):
            Broken().check_axioms([True, False])
