"""Tests for the multi-version database."""

import pytest

from repro.errors import VersionError
from repro.versioning.version_store import VersionedDatabase
from repro.workloads import gtopdb


def _counter_clock():
    state = {"n": 0}

    def clock():
        state["n"] += 1
        return f"2026-06-16T00:00:{state['n']:02d}+00:00"

    return clock


@pytest.fixture
def vdb():
    versioned = VersionedDatabase(gtopdb.schema(), clock=_counter_clock())
    source = gtopdb.paper_instance()
    for relation in source.relations():
        versioned.insert_many(relation.schema.name, relation.rows)
    versioned.commit("initial load")
    return versioned


class TestCommits:
    def test_initial_commit_metadata(self, vdb):
        version = vdb.current_version
        assert version.version_id == 0
        assert version.parent is None
        assert version.message == "initial load"
        assert version.content_hash == vdb.working.content_hash()

    def test_subsequent_commits_chain(self, vdb):
        vdb.insert("Family", (20, "Orexin", "O1"))
        version = vdb.commit("add orexin")
        assert version.version_id == 1
        assert version.parent == 0
        assert len(vdb.versions) == 2

    def test_uncommitted_changes_flag(self, vdb):
        assert not vdb.has_uncommitted_changes()
        vdb.insert("Family", (20, "Orexin", "O1"))
        assert vdb.has_uncommitted_changes()
        vdb.commit("")
        assert not vdb.has_uncommitted_changes()

    def test_unknown_version_rejected(self, vdb):
        with pytest.raises(VersionError):
            vdb.version(99)
        with pytest.raises(VersionError):
            vdb.materialize(99)

    def test_no_commit_yet(self):
        empty = VersionedDatabase(gtopdb.schema())
        with pytest.raises(VersionError):
            empty.current_version

    def test_insert_then_delete_within_a_version_cancels(self, vdb):
        vdb.insert("Family", (20, "Orexin", "O1"))
        vdb.delete("Family", (20, "Orexin", "O1"))
        version = vdb.commit("net zero")
        assert vdb.materialize(version.version_id).sizes()["Family"] == 3


class TestMaterialization:
    def test_old_version_is_reconstructed(self, vdb):
        vdb.insert("Family", (20, "Orexin", "O1"))
        vdb.commit("v1")
        vdb.delete("Committee", (13, "E. Faccenda"))
        vdb.commit("v2")
        v0 = vdb.materialize(0)
        assert v0.sizes()["Family"] == 3
        assert (13, "E. Faccenda") in v0.relation("Committee")

    def test_latest_version_matches_working_copy(self, vdb):
        vdb.insert("Family", (20, "Orexin", "O1"))
        version = vdb.commit("v1")
        assert vdb.materialize(version.version_id) == vdb.working

    def test_deletes_are_replayed(self, vdb):
        vdb.delete("Committee", (13, "E. Faccenda"))
        version = vdb.commit("drop one")
        materialized = vdb.materialize(version.version_id)
        assert (13, "E. Faccenda") not in materialized.relation("Committee")

    def test_verify_content_hash(self, vdb):
        for i in range(5):
            vdb.insert("Family", (100 + i, f"F{i}", "d"))
            vdb.commit(f"v{i + 1}")
        assert all(vdb.verify(v.version_id) for v in vdb.versions)

    def test_many_versions_with_sparse_snapshots(self):
        versioned = VersionedDatabase(gtopdb.schema(), snapshot_interval=5, clock=_counter_clock())
        source = gtopdb.paper_instance()
        for relation in source.relations():
            versioned.insert_many(relation.schema.name, relation.rows)
        versioned.commit("v0")
        for i in range(12):
            versioned.insert("Family", (50 + i, f"Fam{i}", "d"))
            versioned.commit(f"v{i + 1}")
        middle = versioned.materialize(6)
        assert middle.sizes()["Family"] == 3 + 6
        assert versioned.verify(12)


class TestStorageStrategies:
    def _populated(self, storage, snapshot_interval=10):
        versioned = VersionedDatabase(
            gtopdb.schema(), storage=storage, snapshot_interval=snapshot_interval,
            clock=_counter_clock(),
        )
        source = gtopdb.paper_instance()
        for relation in source.relations():
            versioned.insert_many(relation.schema.name, relation.rows)
        versioned.commit("v0")
        for i in range(8):
            versioned.insert("Family", (70 + i, f"S{i}", "d"))
            versioned.commit(f"v{i + 1}")
        return versioned

    def test_snapshot_storage_keeps_full_copies(self):
        versioned = self._populated("snapshot")
        assert versioned.storage_cost()["snapshots"] == 9

    def test_delta_storage_is_smaller(self):
        delta = self._populated("delta")
        snapshot = self._populated("snapshot")
        assert (
            delta.storage_cost()["snapshot_rows"] < snapshot.storage_cost()["snapshot_rows"]
        )

    def test_both_strategies_reconstruct_identically(self):
        delta = self._populated("delta")
        snapshot = self._populated("snapshot")
        for version_id in (0, 4, 8):
            assert delta.materialize(version_id) == snapshot.materialize(version_id)
