"""Tests for persistent, resolvable citations (fixity)."""

import json

import pytest

from repro.errors import VersionError
from repro.versioning.persistent import CitationResolver, PersistentCitation
from repro.versioning.version_store import VersionedDatabase
from repro.workloads import gtopdb

QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"


@pytest.fixture
def vdb():
    versioned = VersionedDatabase(gtopdb.schema())
    source = gtopdb.paper_instance()
    for relation in source.relations():
        versioned.insert_many(relation.schema.name, relation.rows)
    versioned.commit("initial")
    return versioned


@pytest.fixture
def resolver(vdb):
    return CitationResolver(vdb, gtopdb.citation_views())


class TestCreation:
    def test_cite_current_records_version_and_hash(self, vdb, resolver):
        persistent = resolver.cite_current(QUERY)
        assert persistent.version_id == 0
        assert persistent.content_hash == vdb.version(0).content_hash
        assert persistent.query_text == QUERY

    def test_citation_snippets_included(self, resolver):
        persistent = resolver.cite_current(QUERY)
        citation = persistent.citation()
        assert citation.record_count() >= 1
        assert citation.version == "0"

    def test_cite_at_specific_version(self, vdb, resolver):
        vdb.insert("Family", (20, "Orexin", "O1"))
        vdb.insert("FamilyIntro", (20, "orexin intro"))
        vdb.commit("v1")
        old = resolver.cite_at(QUERY, 0)
        new = resolver.cite_at(QUERY, 1)
        assert old.version_id == 0
        assert new.version_id == 1
        assert old.content_hash != new.content_hash

    def test_json_round_trip(self, resolver):
        persistent = resolver.cite_current(QUERY)
        text = persistent.to_json()
        parsed = PersistentCitation.from_json(text)
        assert parsed.version_id == persistent.version_id
        assert parsed.content_hash == persistent.content_hash
        assert json.loads(text)["query"] == QUERY


class TestResolution:
    def test_resolve_returns_data_as_cited(self, vdb, resolver):
        persistent = resolver.cite_current(QUERY)
        # the database evolves after the citation is minted
        vdb.insert("Family", (20, "Orexin", "O1"))
        vdb.insert("FamilyIntro", (20, "orexin intro"))
        vdb.commit("v1")
        resolved = resolver.resolve(persistent)
        assert resolved.result.rows == {("Calcitonin",), ("Adenosine",)}

    def test_resolving_new_version_sees_new_data(self, vdb, resolver):
        vdb.insert("Family", (20, "Orexin", "O1"))
        vdb.insert("FamilyIntro", (20, "orexin intro"))
        vdb.commit("v1")
        persistent = resolver.cite_current(QUERY)
        resolved = resolver.resolve(persistent)
        assert ("Orexin",) in resolved.result.rows

    def test_has_drifted(self, vdb, resolver):
        persistent = resolver.cite_current(QUERY)
        assert not resolver.has_drifted(persistent)
        vdb.insert("Family", (21, "Ghrelin", "G1"))
        assert resolver.has_drifted(persistent)

    def test_fixity_violation_detected(self, vdb, resolver):
        persistent = resolver.cite_current(QUERY)
        tampered = PersistentCitation(
            query_text=persistent.query_text,
            version_id=persistent.version_id,
            version_timestamp=persistent.version_timestamp,
            content_hash="0" * 64,
            citation_json=persistent.citation_json,
        )
        with pytest.raises(VersionError):
            resolver.resolve(tampered)

    def test_resolve_without_verification_skips_hash_check(self, resolver):
        persistent = resolver.cite_current(QUERY)
        tampered = PersistentCitation(
            query_text=persistent.query_text,
            version_id=persistent.version_id,
            version_timestamp=persistent.version_timestamp,
            content_hash="0" * 64,
            citation_json=persistent.citation_json,
        )
        resolved = resolver.resolve(tampered, verify=False)
        assert len(resolved.result) == 2

    def test_unknown_version_rejected(self, resolver, vdb):
        persistent = resolver.cite_current(QUERY)
        bad = PersistentCitation(
            query_text=persistent.query_text,
            version_id=42,
            version_timestamp=persistent.version_timestamp,
            content_hash=persistent.content_hash,
            citation_json=persistent.citation_json,
        )
        with pytest.raises(VersionError):
            resolver.resolve(bad)
