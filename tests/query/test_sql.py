"""Tests for the SQL front-end."""

import pytest

from repro.errors import ParseError, UnknownRelationError
from repro.query.containment import is_equivalent_to
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.sql import parse_sql
from repro.workloads import gtopdb


@pytest.fixture
def schema():
    return gtopdb.schema()


@pytest.fixture
def db():
    return gtopdb.paper_instance()


class TestTranslation:
    def test_simple_select(self, schema):
        query = parse_sql("SELECT FID, FName FROM Family", schema)
        assert query.predicates() == {"Family"}
        assert len(query.head_terms) == 2

    def test_select_star(self, schema):
        query = parse_sql("SELECT * FROM Family", schema)
        assert len(query.head_terms) == 3

    def test_join_via_where(self, schema):
        sql = "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID"
        query = parse_sql(sql, schema)
        datalog = parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)")
        assert is_equivalent_to(query, datalog)

    def test_join_with_as_alias(self, schema):
        sql = "SELECT f.FName FROM Family AS f, FamilyIntro AS i WHERE f.FID = i.FID"
        assert parse_sql(sql, schema).predicates() == {"Family", "FamilyIntro"}

    def test_literal_predicate(self, schema, db):
        sql = "SELECT FName FROM Family WHERE FID = 11"
        query = parse_sql(sql, schema)
        assert evaluate(query, db).rows == {("Calcitonin",)}

    def test_string_literal_predicate(self, schema, db):
        sql = "SELECT FID FROM Family WHERE FName = 'Calcitonin'"
        assert evaluate(parse_sql(sql, schema), db).rows == {(11,), (12,)}

    def test_literal_on_left_side(self, schema, db):
        sql = "SELECT FID FROM Family WHERE 11 = FID"
        assert evaluate(parse_sql(sql, schema), db).rows == {(11,)}

    def test_unqualified_column_resolution(self, schema):
        sql = "SELECT FName FROM Family WHERE FID = 11"
        query = parse_sql(sql, schema)
        assert query.predicates() == {"Family"}

    def test_evaluation_matches_datalog(self, schema, db):
        sql = (
            "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID"
        )
        sql_result = evaluate(parse_sql(sql, schema), db)
        datalog_result = evaluate(
            parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)"), db
        )
        assert sql_result.rows == datalog_result.rows

    def test_three_table_join(self, schema, db):
        sql = (
            "SELECT f.FName, c.PName FROM Family f, Committee c, FamilyIntro i "
            "WHERE f.FID = c.FID AND f.FID = i.FID"
        )
        result = evaluate(parse_sql(sql, schema), db)
        assert ("Calcitonin", "D. Hoyer") in result


class TestErrors:
    def test_unknown_table(self, schema):
        with pytest.raises(UnknownRelationError):
            parse_sql("SELECT x FROM Nope", schema)

    def test_unknown_column(self, schema):
        with pytest.raises(ParseError):
            parse_sql("SELECT Unknown FROM Family", schema)

    def test_ambiguous_column(self, schema):
        with pytest.raises(ParseError):
            parse_sql("SELECT FID FROM Family, FamilyIntro", schema)

    def test_unknown_alias(self, schema):
        with pytest.raises(ParseError):
            parse_sql("SELECT z.FID FROM Family f", schema)

    def test_non_select_rejected(self, schema):
        with pytest.raises(ParseError):
            parse_sql("DELETE FROM Family", schema)

    def test_inequality_rejected(self, schema):
        with pytest.raises(ParseError):
            parse_sql("SELECT FID FROM Family WHERE FID > 3", schema)

    def test_duplicate_alias_rejected(self, schema):
        with pytest.raises(ParseError):
            parse_sql("SELECT f.FID FROM Family f, FamilyIntro f", schema)
