"""Regression tests for acyclicity detection and strategy auto-selection.

Hand-built fixtures — paths, stars, triangles, squares — pin down exactly
which query shapes the GYO analysis classifies as α-acyclic, which executor
``strategy="auto"`` picks for them, and that cyclic queries fall back to the
plain join program while staying correct under a forced ``"reduced"``.
"""

import pytest

from strategies import brute_force

from repro.query.compiler import is_acyclic, join_forest
from repro.query.evaluator import QueryEvaluator
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("S", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("T", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema(
            "H", [Attribute("a", int), Attribute("b", int), Attribute("c", int)]
        ),
    ]
)

PATH = parse_query("Q(A, D) :- R(A, B), S(B, C), T(C, D)")
STAR = parse_query("Q(A, B, C) :- H(A, B, C), R(A, X), S(B, Y), T(C, Z)")
TRIANGLE = parse_query("Q(X) :- R(X, Y), S(Y, Z), T(Z, X)")
SQUARE = parse_query("Q(X) :- R(X, Y), S(Y, Z), T(Z, W), R(W, X)")
COVERED_TRIANGLE = parse_query("Q(X) :- R(X, Y), S(Y, Z), T(Z, X), H(X, Y, Z)")
SELF_JOIN_PATH = parse_query("Q(X, Z) :- R(X, Y), R(Y, Z)")
SINGLE = parse_query("Q(X) :- R(X, Y)")
CARTESIAN = parse_query("Q(X, Z) :- R(X, Y), S(Z, W)")


@pytest.fixture
def db():
    database = Database(SCHEMA)
    for name in ("R", "S", "T"):
        database.insert_many(name, [(i % 4, (i + 1) % 4) for i in range(8)])
    database.insert_many("H", [(i % 4, (i + 1) % 4, (i + 2) % 4) for i in range(8)])
    return database


class TestIsAcyclic:
    @pytest.mark.parametrize(
        "query", [PATH, STAR, COVERED_TRIANGLE, SELF_JOIN_PATH, SINGLE, CARTESIAN]
    )
    def test_acyclic_shapes(self, query):
        assert is_acyclic(query)

    @pytest.mark.parametrize("query", [TRIANGLE, SQUARE])
    def test_cyclic_shapes(self, query):
        assert not is_acyclic(query)

    def test_equality_bound_corner_breaks_the_cycle(self):
        # X is effectively a constant, so the triangle degenerates to a path.
        pinned = parse_query("Q(Y) :- R(X, Y), S(Y, Z), T(Z, X), X = 1")
        assert is_acyclic(pinned)

    def test_join_forest_is_deterministic_and_spans_all_atoms(self):
        varsets = [{"A", "B"}, {"B", "C"}, {"C", "D"}]
        forest = join_forest(varsets)
        assert forest == join_forest(varsets)
        assert forest is not None and len(forest) == len(varsets) - 1

    def test_join_forest_rejects_the_triangle(self):
        assert join_forest([{"X", "Y"}, {"Y", "Z"}, {"Z", "X"}]) is None


class TestReduceProgramStructure:
    def test_acyclic_program_gets_a_join_tree(self, db):
        evaluator = QueryEvaluator(db)
        reduced = evaluator.reduce(PATH)
        assert reduced.acyclic
        # A tree over n atoms has n - 1 edges.
        assert len(reduced.semi_joins) == len(PATH.body) - 1

    def test_cyclic_program_gets_no_join_tree(self, db):
        reduced = QueryEvaluator(db).reduce(TRIANGLE)
        assert not reduced.acyclic
        assert reduced.semi_joins == ()

    def test_reduce_is_cached_per_evaluator(self, db):
        evaluator = QueryEvaluator(db)
        assert evaluator.reduce(PATH) is evaluator.reduce(PATH)


def _legacy_evaluator(db, **kwargs):
    """An evaluator on the deprecated cardinality-threshold gate."""
    with pytest.warns(DeprecationWarning):
        return QueryEvaluator(db, **kwargs)


class TestLegacyThresholdSelection:
    """The deprecated ``reduction_threshold`` escape hatch keeps its gate."""

    def test_threshold_zero_reduces_every_acyclic_query(self, db):
        evaluator = _legacy_evaluator(db, reduction_threshold=0)
        for query in (PATH, STAR, SELF_JOIN_PATH):
            assert evaluator.select_strategy(query) == "reduced"

    def test_threshold_gate_falls_back_to_program_for_cyclic_queries(self, db):
        evaluator = _legacy_evaluator(db, reduction_threshold=0)
        for query in (TRIANGLE, SQUARE):
            assert evaluator.select_strategy(query) == "program"

    def test_the_cardinality_threshold_is_respected(self, db):
        # 8 + 8 + 8 body rows: below a threshold of 100, above one of 10.
        small = _legacy_evaluator(db, reduction_threshold=100)
        large = _legacy_evaluator(db, reduction_threshold=10)
        assert small.select_strategy(PATH) == "program"
        assert large.select_strategy(PATH) == "reduced"

    def test_threshold_gate_skips_single_atoms(self, db):
        evaluator = _legacy_evaluator(db, reduction_threshold=0)
        assert evaluator.select_strategy(SINGLE) == "program"


class TestAutoSelection:
    def test_auto_falls_back_to_program_for_cyclic_queries(self, db):
        evaluator = QueryEvaluator(db)
        for query in (TRIANGLE, SQUARE):
            assert evaluator.select_strategy(query) == "program"

    def test_auto_picks_program_for_single_atoms(self, db):
        evaluator = QueryEvaluator(db)
        assert evaluator.select_strategy(SINGLE) == "program"

    def test_auto_picks_program_when_nothing_dangles(self, db):
        # Every key of every relation joins through its neighbours, so the
        # prelude cannot prune anything: the cost model must refuse to pay
        # for it — regardless of how large the instance grows.
        for name in ("R", "S", "T"):
            db.insert_many(name, [(i % 4, (i + 1) % 4) for i in range(256)])
        evaluator = QueryEvaluator(db)
        assert evaluator.select_strategy(PATH) == "program"

    def test_auto_picks_reduced_on_dangling_heavy_data(self):
        # A chain with fan-out 15 per probe whose last relation is almost
        # disjoint: the plain program enumerates thousands of doomed partial
        # bindings before the final probe kills them, so the prelude's
        # pruning dwarfs its linear passes — even though the instance is far
        # below the old 4096-row threshold.
        database = Database(SCHEMA)
        database.insert_many("R", [(i, i % 20) for i in range(300)])
        database.insert_many("S", [(i % 20, i) for i in range(300)])
        database.insert_many(
            "T", [(i, i) for i in range(6)] + [(300 + i, i) for i in range(294)]
        )
        evaluator = QueryEvaluator(database)
        assert evaluator.select_strategy(PATH) == "reduced"

    def test_cost_strategy_matches_auto_by_default(self, db):
        assert QueryEvaluator(db, strategy="cost").select_strategy(
            PATH
        ) == QueryEvaluator(db).select_strategy(PATH)

    def test_warm_prelude_overrides_the_cost_model(self, db):
        # Dense data: cold, the cost model refuses the prelude ...
        for name in ("R", "S", "T"):
            db.insert_many(name, [(i % 4, (i + 1) % 4) for i in range(64)])
        evaluator = QueryEvaluator(db)
        assert evaluator.select_strategy(PATH) == "program"
        # ... but once a forced run warmed the prelude, re-running it is
        # free, so auto switches to the reduction until the data drifts.
        evaluator.evaluate(PATH, strategy="reduced")
        assert evaluator.select_strategy(PATH) == "reduced"
        db.insert("R", (77, 78))
        assert evaluator.select_strategy(PATH) == "program"

    def test_forced_strategies_ignore_the_analysis(self, db):
        assert (
            QueryEvaluator(db, strategy="reduced").select_strategy(TRIANGLE)
            == "reduced"
        )
        assert (
            _legacy_evaluator(db, strategy="program", reduction_threshold=0)
            .select_strategy(PATH)
            == "program"
        )

    def test_unknown_strategy_is_rejected(self, db):
        with pytest.raises(ValueError):
            QueryEvaluator(db, strategy="yannakakis")
        with pytest.raises(ValueError):
            QueryEvaluator(db).evaluate(PATH, strategy="yannakakis")


class TestCorrectnessOfFallbacks:
    @pytest.mark.parametrize(
        "query",
        [PATH, STAR, TRIANGLE, SQUARE, COVERED_TRIANGLE, SELF_JOIN_PATH, CARTESIAN],
    )
    def test_every_strategy_matches_brute_force(self, db, query):
        reference = brute_force(query, db)
        for strategy in ("program", "reduced", "auto", "cost"):
            evaluator = QueryEvaluator(db, strategy=strategy)
            assert evaluator.evaluate(query).rows == reference, strategy

    def test_reduction_prunes_dangling_tuples(self, db):
        db.insert("R", (9, 9))  # dangles: 9 never joins through S
        evaluator = QueryEvaluator(db)
        reduced = evaluator.reduce(PATH)
        relations = {name: db.relation(name) for name in ("R", "S", "T")}
        candidates = reduced.reduce_relations(relations, evaluator.index_manager)
        assert candidates is not None
        surviving = [
            rows if rows is not None else list(relations[step.predicate])
            for rows, step in zip(candidates, reduced.program.steps)
        ]
        by_predicate = {
            step.predicate: rows
            for step, rows in zip(reduced.program.steps, surviving)
        }
        assert (9, 9) not in by_predicate["R"]

    def test_empty_extension_short_circuits(self, db):
        db2 = Database(SCHEMA)  # S stays empty
        db2.insert_many("R", [(1, 2)])
        evaluator = QueryEvaluator(db2)
        reduced = evaluator.reduce(PATH)
        relations = {name: db2.relation(name) for name in ("R", "S", "T")}
        assert reduced.reduce_relations(relations, evaluator.index_manager) is None
        assert evaluator.evaluate(PATH, strategy="reduced").rows == set()


class TestStaleReductionRegression:
    def test_explicit_program_never_pairs_with_a_stale_reduction(self):
        """A caller-passed program must be executed with a reduction of that
        very program — not a cached analysis of an older compile whose
        variable→slot layout differs (frames would project wrongly)."""
        from repro.query.compiler import compile_query

        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        database = Database(SCHEMA)
        database.insert_many("R", [(1, 2)])
        database.insert_many("S", [(2, 3), (2, 4), (5, 6)])
        evaluator = QueryEvaluator(database, strategy="reduced")
        first = evaluator.evaluate_with_bindings(query)  # caches program+reduction
        assert set(first) == {(1, 3), (1, 4)}
        # Drift the cardinalities so a fresh compile orders the atoms (and
        # hence assigns slots) differently, and pass that program explicitly.
        database.insert_many("R", [(i, i) for i in range(10, 20)])
        relations = {name: database.relation(name) for name in ("R", "S")}
        recompiled = compile_query(query, relations)
        again = evaluator.evaluate_with_bindings(query, program=recompiled)
        assert set(again) == {(1, 3), (1, 4)}
