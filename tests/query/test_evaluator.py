"""Tests for conjunctive-query evaluation."""

import pytest

from repro.errors import QueryError, UnknownRelationError
from repro.query.ast import Variable
from repro.query.evaluator import QueryEvaluator, evaluate, evaluate_with_bindings, result_schema
from repro.query.parser import parse_query
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


class TestEvaluate:
    def test_single_atom_scan(self, db):
        result = evaluate(parse_query("Q(FID, FName, Desc) :- Family(FID, FName, Desc)"), db)
        assert len(result) == 3

    def test_projection_removes_duplicates(self, db):
        result = evaluate(parse_query("Q(FName) :- Family(FID, FName, Desc)"), db)
        assert result.rows == {("Calcitonin",), ("Adenosine",)}

    def test_join(self, db):
        query = parse_query("Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)")
        result = evaluate(query, db)
        assert ("Calcitonin", "1st") in result
        assert ("Calcitonin", "2nd") in result
        assert ("Adenosine", "Adenosine receptors intro") in result

    def test_constant_selection(self, db):
        query = parse_query("Q(FName) :- Family(11, FName, Desc)")
        assert evaluate(query, db).rows == {("Calcitonin",)}

    def test_constant_in_head(self, db):
        query = parse_query('Q(FID, "label") :- Family(FID, FName, Desc)')
        assert (11, "label") in evaluate(query, db)

    def test_repeated_variable_forces_equality(self, db):
        db.insert("Family", (99, "SelfDesc", "SelfDesc"))
        query = parse_query("Q(FID) :- Family(FID, X, X)")
        assert evaluate(query, db).rows == {(99,)}

    def test_equality_atom_binding(self, db):
        query = parse_query('Q(FID, D) :- Family(FID, FName, Desc), D = "note"')
        assert (11, "note") in evaluate(query, db)

    def test_empty_result(self, db):
        query = parse_query("Q(FName) :- Family(999, FName, Desc)")
        assert len(evaluate(query, db)) == 0

    def test_unknown_relation_raises(self, db):
        with pytest.raises(UnknownRelationError):
            evaluate(parse_query("Q(X) :- Missing(X)"), db)

    def test_arity_mismatch_raises(self, db):
        with pytest.raises(QueryError):
            evaluate(parse_query("Q(X) :- Family(X)"), db)

    def test_three_way_join(self, db):
        query = parse_query(
            "Q(FName, PName, Text) :- Family(FID, FName, D), Committee(FID, PName), "
            "FamilyIntro(FID, Text)"
        )
        result = evaluate(query, db)
        assert ("Calcitonin", "D. Hoyer", "1st") in result
        assert ("Calcitonin", "S. Alexander", "2nd") in result

    def test_cartesian_product_when_no_join(self, db):
        query = parse_query("Q(A, B) :- Family(A, X, Y), FamilyIntro(B, T)")
        assert len(evaluate(query, db)) == 9

    def test_without_indexes(self, db):
        query = parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)")
        with_idx = QueryEvaluator(db, use_indexes=True).evaluate(query)
        without_idx = QueryEvaluator(db, use_indexes=False).evaluate(query)
        assert with_idx.rows == without_idx.rows


class TestBindings:
    def test_all_bindings_per_tuple(self, db):
        query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        bindings = evaluate_with_bindings(query, db)
        assert len(bindings[("Calcitonin",)]) == 2
        assert len(bindings[("Adenosine",)]) == 1

    def test_binding_contains_all_variables(self, db):
        query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        bindings = evaluate_with_bindings(query, db)
        one = bindings[("Adenosine",)][0]
        assert one[Variable("FID")] == 13
        assert one[Variable("Text")] == "Adenosine receptors intro"

    def test_equality_atom_appears_in_binding(self, db):
        query = parse_query('Q(FID, D) :- Family(FID, F, De), D = "x"')
        bindings = evaluate_with_bindings(query, db)
        assert all(b[Variable("D")] == "x" for bs in bindings.values() for b in bs)

    def test_parameterized_evaluation(self, db):
        view = parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)")
        evaluator = QueryEvaluator(db)
        result = evaluator.evaluate_parameterized(view, {"FID": 11})
        assert result.rows == {(11, "Calcitonin", "C1")}

    def test_parameterized_evaluation_missing_value(self, db):
        view = parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)")
        with pytest.raises(QueryError):
            QueryEvaluator(db).evaluate_parameterized(view, {})


class TestExtraRelations:
    def test_extra_relations_are_visible(self, db):
        schema = RelationSchema("Extra", [Attribute("FID", object), Attribute("Tag", object)])
        extra = Relation(schema, [(11, "tag")])
        evaluator = QueryEvaluator(db, extra_relations={"Extra": extra})
        query = parse_query("Q(FName, Tag) :- Family(FID, FName, D), Extra(FID, Tag)")
        assert evaluator.evaluate(query).rows == {("Calcitonin", "tag")}

    def test_extra_relation_shadows_database(self, db):
        schema = RelationSchema(
            "Family", [Attribute("FID", object), Attribute("FName", object), Attribute("D", object)]
        )
        shadow = Relation(schema, [(1, "OnlyThis", "x")])
        evaluator = QueryEvaluator(db, extra_relations={"Family": shadow})
        result = evaluator.evaluate(parse_query("Q(FName) :- Family(FID, FName, D)"))
        assert result.rows == {("OnlyThis",)}


class TestResultSchema:
    def test_attribute_names_follow_head_variables(self):
        query = parse_query("Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)")
        schema = result_schema(query)
        assert schema.attribute_names == ("FName", "Text")

    def test_constants_get_positional_names(self):
        query = parse_query('Q(FName, "x") :- Family(FID, FName, D)')
        assert result_schema(query).attribute_names == ("FName", "const_1")

    def test_duplicate_head_variables_get_unique_names(self):
        query = parse_query("Q(X, X) :- R(X, Y)")
        names = result_schema(query).attribute_names
        assert len(set(names)) == 2
