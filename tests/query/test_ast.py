"""Tests for the conjunctive-query AST."""

import pytest

from repro.errors import QueryError
from repro.query.ast import (
    Atom,
    ConjunctiveQuery,
    Constant,
    EqualityAtom,
    Variable,
    fresh_variable,
    make_query,
)


class TestTerms:
    def test_variable_identity(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")
        assert Variable("X").is_variable()

    def test_constant_identity(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")
        assert not Constant(1).is_variable()

    def test_variable_requires_name(self):
        with pytest.raises(QueryError):
            Variable("")

    def test_string_constant_rendering(self):
        assert str(Constant("abc")) == '"abc"'
        assert str(Constant(3)) == "3"

    def test_fresh_variables_are_distinct(self):
        assert fresh_variable() != fresh_variable()


class TestAtom:
    def test_variables_and_constants(self):
        atom = Atom("R", (Variable("X"), Constant(1), Variable("X")))
        assert atom.variables() == (Variable("X"), Variable("X"))
        assert atom.constants() == (Constant(1),)
        assert atom.arity == 3

    def test_substitute(self):
        atom = Atom("R", (Variable("X"), Variable("Y")))
        substituted = atom.substitute({Variable("X"): Constant(5)})
        assert substituted == Atom("R", (Constant(5), Variable("Y")))

    def test_rejects_non_terms(self):
        with pytest.raises(QueryError):
            Atom("R", ("not a term",))

    def test_str(self):
        assert str(Atom("R", (Variable("X"), Constant(2)))) == "R(X, 2)"


class TestEqualityAtom:
    def test_substitution_keeps_unbound_variable(self):
        eq = EqualityAtom(Variable("D"), Constant("text"))
        assert eq.substitute({}) == eq

    def test_substitution_with_equal_constant_disappears(self):
        eq = EqualityAtom(Variable("D"), Constant("text"))
        assert eq.substitute({Variable("D"): Constant("text")}) is None

    def test_substitution_with_conflicting_constant_raises(self):
        eq = EqualityAtom(Variable("D"), Constant("text"))
        with pytest.raises(QueryError):
            eq.substitute({Variable("D"): Constant("other")})


class TestConjunctiveQuery:
    def _paper_query(self):
        return make_query(
            "Q",
            ["FName"],
            [("Family", ["FID", "FName", "Desc"]), ("FamilyIntro", ["FID", "Text"])],
        )

    def test_basic_structure(self):
        query = self._paper_query()
        assert query.name == "Q"
        assert query.predicates() == {"Family", "FamilyIntro"}
        assert query.head_variables() == {Variable("FName")}
        assert Variable("FID") in query.existential_variables()

    def test_join_variables(self):
        assert self._paper_query().join_variables() == {Variable("FID")}

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(Atom("Q", (Variable("X"),)), [])

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            make_query("Q", ["Y"], [("R", ["X"])])

    def test_equality_atom_makes_head_safe(self):
        query = make_query("CV2", ["D"], [], equalities={"D": "GtoPdb"})
        assert query.constant_bindings() == {Variable("D"): Constant("GtoPdb")}

    def test_parameter_must_be_in_head(self):
        with pytest.raises(QueryError):
            make_query("V", ["FName"], [("Family", ["FID", "FName", "D"])], parameters=["FID"])

    def test_parameterized_query(self):
        query = make_query(
            "V1",
            ["FID", "FName"],
            [("Family", ["FID", "FName", "Desc"])],
            parameters=["FID"],
        )
        assert query.is_parameterized
        assert query.without_parameters().parameters == ()
        assert query.without_parameters().body == query.body

    def test_substitute_renames_consistently(self):
        query = self._paper_query()
        renamed = query.substitute({Variable("FID"): Variable("Z")})
        assert Variable("Z") in renamed.join_variables()
        assert Variable("FID") not in renamed.variables()

    def test_rename_apart_produces_disjoint_variables(self):
        query = self._paper_query()
        renamed = query.rename_apart("_1")
        assert not (query.variables() & renamed.variables())

    def test_inline_equalities_substitutes_body(self):
        query = make_query(
            "Q", ["X"], [("R", ["X", "D"])], equalities={"D": "fixed"}
        )
        inlined = query.inline_equalities()
        assert Constant("fixed") in inlined.body[0].terms

    def test_canonical_instance(self):
        query = self._paper_query()
        canonical = query.canonical_instance()
        assert set(canonical) == {"Family", "FamilyIntro"}
        assert ("?FID", "?FName", "?Desc") in canonical["Family"]

    def test_equality_and_hash(self):
        assert self._paper_query() == self._paper_query()
        assert hash(self._paper_query()) == hash(self._paper_query())

    def test_immutability(self):
        query = self._paper_query()
        with pytest.raises(AttributeError):
            query.head = None

    def test_str_contains_lambda_prefix(self):
        query = make_query(
            "V1", ["FID"], [("Family", ["FID", "FName", "Desc"])], parameters=["FID"]
        )
        assert str(query).startswith("λ FID. ")

    def test_atoms_with_variable(self):
        query = self._paper_query()
        assert len(query.atoms_with_variable(Variable("FID"))) == 2
        assert len(query.atoms_with_variable(Variable("Text"))) == 1
