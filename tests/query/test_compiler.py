"""Tests for compilation of conjunctive queries into join programs."""

import pytest

from repro.query.ast import Variable
from repro.query.compiler import compile_query, reduce_program
from repro.query.evaluator import QueryEvaluator
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.index import IndexManager
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


def _relations(db, query):
    return {atom.predicate: db.relation(atom.predicate) for atom in query.body}


class TestCompile:
    def test_every_variable_gets_one_slot(self, db):
        query = parse_query(
            "Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)"
        )
        program = compile_query(query, _relations(db, query))
        assert set(program.variables) == {
            Variable("FID"),
            Variable("FName"),
            Variable("D"),
            Variable("Text"),
        }
        assert program.slot_count == 4

    def test_atom_order_is_fixed_and_bound_first(self, db):
        # The constant-selected atom must run first regardless of body order.
        query = parse_query(
            'Q(FName, Text) :- FamilyIntro(FID, Text), Family(FID, FName, "C1")'
        )
        program = compile_query(query, _relations(db, query))
        assert program.steps[0].predicate == "Family"
        # The second atom probes FID, which is bound after the first step.
        assert 0 in program.steps[1].key_positions

    def test_join_variable_becomes_probe_after_binding(self, db):
        query = parse_query(
            "Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)"
        )
        program = compile_query(query, _relations(db, query))
        first, second = program.steps
        assert first.key_positions == ()  # nothing bound yet: a scan
        assert second.key_positions == (0,)  # FID probe
        assert second.key_slots != (None,)  # ... read from a slot, not a constant

    def test_equalities_seed_slots(self, db):
        query = parse_query('Q(FID, D) :- Family(FID, F, De), D = "x"')
        program = compile_query(query, _relations(db, query))
        assert len(program.seed) == 1
        slot, value = program.seed[0]
        assert program.variables[slot] == Variable("D")
        assert value == "x"

    def test_repeated_variable_within_atom_checks(self, db):
        query = parse_query("Q(FID) :- Family(FID, X, X)")
        program = compile_query(query, _relations(db, query))
        (step,) = program.steps
        assert len(step.post_checks) == 1

    def test_deterministic_order_for_ties(self, db):
        query = parse_query(
            "Q(A, B) :- Committee(A, P), Committee(B, P2)"
        )
        first = compile_query(query, _relations(db, query))
        second = compile_query(query, _relations(db, query))
        assert [s.predicate for s in first.steps] == [s.predicate for s in second.steps]
        assert first.variables == second.variables

    def test_parameterized_evaluation_does_not_grow_the_program_cache(self, db):
        view = parse_query(
            "lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)"
        )
        evaluator = QueryEvaluator(db)
        for fid in (11, 12, 13):
            evaluator.evaluate_parameterized(view, {"FID": fid})
        # One substituted query per parameter value must not be retained.
        assert len(evaluator._programs) == 0

    def test_program_is_data_independent(self, db):
        query = parse_query("Q(FName) :- Family(FID, FName, D), FamilyIntro(FID, T)")
        relations = _relations(db, query)
        program = compile_query(query, relations)
        db.insert("Family", (99, "Later", "d"))
        db.insert("FamilyIntro", (99, "later intro"))
        rows = set(program.run_rows(relations, IndexManager(db)))
        assert ("Later",) in rows


class TestExecutionEquivalence:
    QUERIES = [
        "Q(FID, FName, Desc) :- Family(FID, FName, Desc)",
        "Q(FName) :- Family(11, FName, Desc)",
        "Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)",
        "Q(FName, PName, Text) :- Family(FID, FName, D), Committee(FID, PName), "
        "FamilyIntro(FID, Text)",
        "Q(A, B) :- Family(A, X, Y), FamilyIntro(B, T)",
        'Q(FID, D) :- Family(FID, F, De), D = "note"',
        "Q(FID) :- Family(FID, X, X)",
        # Self-join: the same predicate twice.
        "Q(A, B) :- Committee(A, P), Committee(B, P)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_indexed_and_scan_execution_agree(self, db, text):
        query = parse_query(text)
        with_indexes = QueryEvaluator(db, use_indexes=True)
        without_indexes = QueryEvaluator(db, use_indexes=False)
        assert with_indexes.evaluate(query).rows == without_indexes.evaluate(query).rows

    @pytest.mark.parametrize("text", QUERIES)
    def test_bindings_cover_all_variables(self, db, text):
        query = parse_query(text)
        evaluator = QueryEvaluator(db)
        for row, bindings in evaluator.evaluate_with_bindings(query).items():
            assert bindings
            for binding in bindings:
                assert set(binding) == query.variables()
                assert evaluator.output_tuple(query, binding) == row


class TestViewIndexing:
    """extra_relations (materialised views) are now probed via hash indexes
    instead of linear scans — and the indexes notice view replacement."""

    def _setup(self):
        schema = DatabaseSchema(
            [RelationSchema("Base", [Attribute("a", int), Attribute("b", int)])]
        )
        db = Database(schema)
        db.insert_many("Base", [(i, i % 5) for i in range(50)])
        view_schema = RelationSchema("V", [Attribute("a", int), Attribute("tag", str)])
        view = Relation(view_schema, [(i, f"t{i}") for i in range(50)])
        return db, view

    def test_view_probe_uses_manager_index(self):
        db, view = self._setup()
        manager = IndexManager(db)
        evaluator = QueryEvaluator(db, extra_relations={"V": view}, index_manager=manager)
        query = parse_query("Q(B, Tag) :- Base(A, B), V(A, Tag)")
        result = evaluator.evaluate(query)
        assert len(result) == 50
        assert len(manager) == 1  # an index over the view was built

    def test_view_index_shared_across_evaluators(self):
        db, view = self._setup()
        manager = IndexManager(db)
        query = parse_query("Q(B, Tag) :- Base(A, B), V(A, Tag)")
        QueryEvaluator(db, extra_relations={"V": view}, index_manager=manager).evaluate(query)
        index = manager.index_for("V", view, (0,))
        QueryEvaluator(db, extra_relations={"V": view}, index_manager=manager).evaluate(query)
        assert manager.index_for("V", view, (0,)) is index

    def test_view_index_invalidated_by_mutation(self):
        db, view = self._setup()
        manager = IndexManager(db)
        index = manager.index_for("V", view, (0,))
        view.insert((100, "fresh"))
        rebuilt = manager.index_for("V", view, (0,))
        assert rebuilt is not index
        assert list(rebuilt.lookup((100,))) == [(100, "fresh")]

    def test_view_index_invalidated_by_replacement(self):
        db, view = self._setup()
        manager = IndexManager(db)
        index = manager.index_for("V", view, (0,))
        replacement = Relation(view.schema, [(7, "only")])
        rebuilt = manager.index_for("V", replacement, (0,))
        assert rebuilt is not index
        assert list(rebuilt.lookup((7,))) == [(7, "only")]

    def test_shadowing_extra_relation_is_not_served_from_database_index(self):
        db, _view = self._setup()
        shadow = Relation(
            RelationSchema("Base", [Attribute("a", int), Attribute("b", int)]),
            [(1, 999)],
        )
        evaluator = QueryEvaluator(db, extra_relations={"Base": shadow})
        result = evaluator.evaluate(parse_query("Q(B) :- Base(1, B)"))
        assert result.rows == {(999,)}


class TestReduceProgram:
    """The reduction analysis: pre-filters, SIP wiring and the join tree."""

    def test_constants_become_prefilters(self, db):
        query = parse_query('Q(FName) :- Family(FID, FName, "C1")')
        program = compile_query(query, _relations(db, query))
        reduced = reduce_program(program)
        (reduction,) = reduced.reductions
        assert reduction.prefilters == ((2, "C1"),)
        assert reduction.sip_filters == ()

    def test_equality_seeded_variables_become_prefilters(self, db):
        query = parse_query('Q(FID) :- Family(FID, F, De), De = "x"')
        program = compile_query(query, _relations(db, query))
        reduced = reduce_program(program)
        (reduction,) = reduced.reductions
        assert reduction.prefilters == ((2, "x"),)

    def test_sip_exports_feed_downstream_filters(self, db):
        query = parse_query(
            "Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)"
        )
        program = compile_query(query, _relations(db, query))
        reduced = reduce_program(program)
        first, second = reduced.reductions
        # The second step's probe on FID is a SIP filter fed by the first
        # step's export of the same slot.
        assert len(second.sip_filters) == 1
        (_position, slot) = second.sip_filters[0]
        assert (0, slot) in first.exports
        # Nothing downstream consumes the other first-step writes.
        exported_slots = {s for _p, s in first.exports}
        assert exported_slots == {slot}

    def test_within_atom_repeats_become_repeat_pairs(self, db):
        query = parse_query("Q(FID) :- Family(FID, X, X)")
        program = compile_query(query, _relations(db, query))
        reduced = reduce_program(program)
        (reduction,) = reduced.reductions
        assert reduction.repeat_pairs == ((1, 2),)

    def test_reduced_frames_equal_program_frames(self, db):
        for text in TestExecutionEquivalence.QUERIES:
            query = parse_query(text)
            relations = _relations(db, query)
            program = compile_query(query, relations)
            reduced = reduce_program(program)
            manager = IndexManager(db)
            plain = set(program.run_frames(relations, manager))
            behind_reduction = set(reduced.run_frames(relations, manager))
            assert plain == behind_reduction, text
            # And without any index support.
            scans = set(reduced.run_frames(relations, None, use_indexes=False))
            assert scans == plain, text

    def test_reduction_is_pure_description(self, db):
        query = parse_query(
            "Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)"
        )
        relations = _relations(db, query)
        program = compile_query(query, relations)
        reduced = reduce_program(program)
        before = set(reduced.run_rows(relations, IndexManager(db)))
        db.insert("Family", (61, "Later", "d"))
        db.insert("FamilyIntro", (61, "later intro"))
        relations = _relations(db, query)
        after = set(reduced.run_rows(relations, IndexManager(db)))
        assert ("Later", "later intro") in after
        assert before <= after
