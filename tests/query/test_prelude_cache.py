"""Unit tests for the version-keyed warm-prelude cache.

Pins the precise-invalidation contract of
:class:`~repro.query.compiler.PreludeCache`: unchanged data is a full hit
(candidates *and* the prepared execution plan reused, no semi-join pass
runs), and after drift only the steps whose relation actually changed
recompute their prefilter, while bottom-up key projections of untouched
subtrees are reused by object identity.
"""

import pytest

from strategies import brute_force

from repro.query.compiler import PreludeCache
from repro.query.evaluator import QueryEvaluator
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("S", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("T", [Attribute("a", int), Attribute("b", int)]),
    ]
)

PATH = parse_query("Q(A, D) :- R(A, B), S(B, C), T(C, D)")
SELF_JOIN = parse_query("Q(X, Z) :- R(X, Y), R(Y, Z)")
VIEW_PATH = parse_query("Q(A, C) :- R(A, B), V(B, C)")

V_SCHEMA = RelationSchema("V", [Attribute("a", int), Attribute("b", int)])


@pytest.fixture
def db():
    database = Database(SCHEMA)
    for name in ("R", "S", "T"):
        database.insert_many(name, [(i % 4, (i + 1) % 4) for i in range(8)])
    database.insert("R", (7, 9))  # dangling
    return database


def _prelude(evaluator, query) -> PreludeCache:
    return evaluator._preludes[query]


class TestWarmHits:
    def test_second_evaluation_is_a_hit(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        first = evaluator.evaluate(PATH).rows
        prelude = _prelude(evaluator, PATH)
        assert (prelude.hits, prelude.misses) == (0, 1)
        assert evaluator.evaluate(PATH).rows == first
        assert (prelude.hits, prelude.misses) == (1, 1)
        assert prelude.is_warm({name: db.relation(name) for name in ("R", "S", "T")})

    def test_warm_hits_reuse_the_prepared_execution_plan(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        snapshot = _prelude(evaluator, PATH)._snapshot
        evaluator.evaluate(PATH)
        plan = _prelude(evaluator, PATH)._snapshot.plan
        assert plan is not None and _prelude(evaluator, PATH)._snapshot is snapshot

    def test_cold_cache_counts_every_step_once(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        prelude = _prelude(evaluator, PATH)
        assert prelude.steps_recomputed == 3
        assert prelude.steps_reused == 0

    def test_stats_shape(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        evaluator.evaluate(PATH)
        stats = _prelude(evaluator, PATH).stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "steps_recomputed": 3,
            "steps_reused": 0,
            "hit_rate": 0.5,
        }


class TestPreciseInvalidation:
    def test_only_the_drifted_step_recomputes(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        prelude = _prelude(evaluator, PATH)
        db.insert("S", (9, 9))
        assert evaluator.evaluate(PATH).rows == brute_force(PATH, db)
        # One miss, and of the three steps only the S step re-prefiltered.
        assert prelude.misses == 2
        assert prelude.steps_recomputed == 3 + 1
        assert prelude.steps_reused == 2

    def test_untouched_subtree_projections_are_reused_by_identity(self, db):
        # The compiled step order for PATH on this instance is S, T, R
        # (smallest relations first), and GYO yields the edges T→S (subtree
        # {T}) and S→R (subtree {S, T}).  Drifting R — the tree root, in no
        # child subtree — invalidates neither bottom-up projection, so both
        # memoized key sets must survive as objects.
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        prelude = _prelude(evaluator, PATH)
        assert prelude.reduced.subtrees == ((1,), (0, 1))
        before = {index: keys for index, (_stamp, keys) in prelude._edge_memo.items()}
        assert before
        db.insert("R", (9, 0))
        evaluator.evaluate(PATH)
        after = prelude._edge_memo
        assert all(after[index][1] is keys for index, keys in before.items())
        assert evaluator.evaluate(PATH).rows == brute_force(PATH, db)

    def test_drifting_a_leaf_recomputes_every_containing_subtree(self, db):
        # T (the chain's far end) sits in both child subtrees: drifting it
        # must refresh both bottom-up projections.
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        prelude = _prelude(evaluator, PATH)
        before = {index: keys for index, (_stamp, keys) in prelude._edge_memo.items()}
        assert before
        db.insert("T", (9, 9))
        evaluator.evaluate(PATH)
        assert all(
            prelude._edge_memo[index][1] is not keys
            for index, keys in before.items()
        )
        assert evaluator.evaluate(PATH).rows == brute_force(PATH, db)

    def test_self_joins_drift_together(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(SELF_JOIN)
        prelude = _prelude(evaluator, SELF_JOIN)
        db.insert("R", (5, 6))
        evaluator.evaluate(SELF_JOIN)
        # Both steps read R: one drift invalidates both prefilters.
        assert prelude.steps_recomputed == 2 + 2
        assert prelude.steps_reused == 0
        assert evaluator.evaluate(SELF_JOIN).rows == brute_force(SELF_JOIN, db)

    def test_extra_relation_version_drift_is_noticed(self, db):
        view = Relation(V_SCHEMA, [(1, 2), (2, 3)])
        evaluator = QueryEvaluator(
            db, extra_relations={"V": view}, strategy="reduced"
        )
        evaluator.evaluate(VIEW_PATH)
        prelude = _prelude(evaluator, VIEW_PATH)
        view.insert((3, 0))  # direct mutation: only Relation.version moves
        assert evaluator.evaluate(VIEW_PATH).rows == brute_force(
            VIEW_PATH, db, {"V": view}
        )
        assert prelude.misses == 2

    def test_replacing_an_extra_relation_object_is_noticed(self, db):
        view = Relation(V_SCHEMA, [(1, 2)])
        evaluator = QueryEvaluator(
            db, extra_relations={"V": view}, strategy="reduced"
        )
        evaluator.evaluate(VIEW_PATH)
        # Same content, new object — e.g. a re-materialised view.  The
        # version alone (both 1 after one insert each) cannot distinguish
        # them; the identity stamp must.
        replacement = Relation(V_SCHEMA, [(4, 5)])
        assert replacement.version == view.version
        evaluator.extra_relations["V"] = replacement
        assert evaluator.evaluate(VIEW_PATH).rows == brute_force(
            VIEW_PATH, db, {"V": replacement}
        )

    def test_invalidate_forces_a_cold_run(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        prelude = _prelude(evaluator, PATH)
        prelude.invalidate()
        evaluator.evaluate(PATH)
        assert prelude.misses == 2
        assert prelude.steps_recomputed == 6  # no memo survived


class TestEmptyResults:
    def test_empty_preludes_are_cached_too(self):
        database = Database(SCHEMA)
        database.insert_many("R", [(1, 2)])  # S and T stay empty
        evaluator = QueryEvaluator(database, strategy="reduced")
        assert evaluator.evaluate(PATH).rows == set()
        prelude = _prelude(evaluator, PATH)
        assert prelude._snapshot.empty
        assert evaluator.evaluate(PATH).rows == set()
        assert prelude.hits == 1

    def test_drift_out_of_emptiness_recomputes(self):
        database = Database(SCHEMA)
        database.insert_many("R", [(1, 2)])
        evaluator = QueryEvaluator(database, strategy="reduced")
        assert evaluator.evaluate(PATH).rows == set()
        database.insert_many("S", [(2, 3)])
        database.insert_many("T", [(3, 4)])
        assert evaluator.evaluate(PATH).rows == {(1, 4)}


class TestCacheScoping:
    def test_prelude_for_shares_the_canonical_cache(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        reduced = evaluator.reduce(PATH)
        prelude = evaluator.prelude_for(PATH, reduced)
        assert evaluator.prelude_for(PATH, reduced) is prelude
        evaluator.evaluate(PATH)
        assert _prelude(evaluator, PATH) is prelude

    def test_foreign_reductions_get_a_detached_cache(self, db):
        from repro.query.compiler import compile_query, reduce_program

        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        canonical = _prelude(evaluator, PATH)
        relations = {name: db.relation(name) for name in ("R", "S", "T")}
        foreign = reduce_program(compile_query(PATH, relations))
        detached = evaluator.prelude_for(PATH, foreign)
        assert detached is not canonical
        assert _prelude(evaluator, PATH) is canonical  # not evicted

    def test_invalidate_preludes_keeps_programs(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        program = evaluator._programs[PATH]
        evaluator.invalidate_preludes()
        assert evaluator._preludes == {}
        assert evaluator._programs[PATH] is program

    def test_invalidate_caches_drops_everything(self, db):
        evaluator = QueryEvaluator(db, strategy="reduced")
        evaluator.evaluate(PATH)
        evaluator.invalidate_caches()
        assert evaluator._programs == {}
        assert evaluator._reduced == {}
        assert evaluator._preludes == {}
        assert len(evaluator.statistics) == 0
        assert evaluator.evaluate(PATH).rows == brute_force(PATH, db)

    def test_parameterized_evaluation_does_not_grow_the_cache(self, db):
        view = parse_query("λ A. Q(A, D) :- R(A, B), S(B, C), T(C, D)")
        evaluator = QueryEvaluator(db, strategy="reduced")
        for value in range(4):
            evaluator.evaluate_parameterized(view, {"A": value})
        assert evaluator._preludes == {}
