"""Tests for sharded parallel evaluation: planning, partitioning, execution.

Covers the shard planner (:func:`shard_key_positions`,
:func:`partition_driving_rows`, :meth:`JoinProgram.driving_rows`), the I008
partition verifier, the ``"parallel"`` strategy on both backends, the cost
model's parallel crossover (``auto`` stays serial on small inputs), the
shard-partition cache, the worker pool lifecycle and the concurrency-lint
registration of the new shared state.
"""

import os

import pytest

from repro.analysis.ir import verify_shard_partition
from repro.concurrency import MAX_DEFAULT_WORKERS, declared_shared_state, default_worker_count
from repro.core.engine import CitationEngine
from repro.query.compiler import (
    compile_query,
    partition_driving_rows,
    shard_key_positions,
)
from repro.query.evaluator import QueryEvaluator
from repro.query.parser import parse_query
from repro.query.stats import CostModel, EvaluationMetrics, StatisticsCatalog
from repro.relational.index import IndexManager
from repro.workloads import gtopdb

JOIN = "Q(FName, Text) :- Family(FID, FName, D), FamilyIntro(FID, Text)"
CARTESIAN = "Q(A, B) :- Family(A, X, Y), FamilyIntro(B, T)"
THREE_WAY = (
    "Q(FName, PName, Text) :- Family(FID, FName, D), Committee(FID, PName), "
    "FamilyIntro(FID, Text)"
)


@pytest.fixture
def db():
    return gtopdb.paper_instance()


def _program(db, text):
    query = parse_query(text)
    relations = {atom.predicate: db.relation(atom.predicate) for atom in query.body}
    return query, compile_query(query, relations), relations


class TestShardPlanning:
    def test_key_positions_follow_downstream_probes(self, db):
        """The partition hashes the join key itself, so co-joining rows land
        in the same shard and downstream probes stay local."""
        _query, program, _relations = _program(db, JOIN)
        driving = program.steps[0]
        consumed = {
            slot for step in program.steps[1:] for slot in step.key_slots
            if slot is not None
        }
        positions = shard_key_positions(program)
        assert positions
        for position in positions:
            assert dict(driving.writes)[position] in consumed

    def test_cartesian_falls_back_to_all_writes(self, db):
        _query, program, _relations = _program(db, CARTESIAN)
        assert shard_key_positions(program) == tuple(
            p for p, _slot in program.steps[0].writes
        )

    def test_partition_is_disjoint_complete_and_routed(self, db):
        _query, program, relations = _program(db, JOIN)
        rows = list(relations["Family"])
        positions = shard_key_positions(program)
        parts = partition_driving_rows(rows, positions, 3)
        assert len(parts) == 3
        flattened = [row for part in parts for row in part]
        assert sorted(flattened) == sorted(rows)
        for index, part in enumerate(parts):
            for row in part:
                assert hash(tuple(row[p] for p in positions)) % 3 == index

    def test_partition_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            partition_driving_rows([], (0,), 0)

    def test_driving_rows_match_the_relation(self, db):
        _query, program, relations = _program(db, JOIN)
        assert sorted(program.driving_rows(relations)) == sorted(relations["Family"])

    def test_driving_rows_respect_constant_seeds(self, db):
        query, program, relations = _program(db, "Q(FName) :- Family(11, FName, D)")
        rows = program.driving_rows(relations, IndexManager(db), True)
        assert rows == [row for row in relations["Family"] if row[0] == 11]


class TestPartitionVerifier:
    def _fixture(self, db, shards=3):
        _query, program, relations = _program(db, JOIN)
        rows = list(relations["Family"])
        positions = shard_key_positions(program)
        parts = partition_driving_rows(rows, positions, shards)
        return program, positions, parts, rows

    def test_clean_partition_verifies(self, db):
        program, positions, parts, rows = self._fixture(db)
        assert not verify_shard_partition(program, positions, parts, rows).has_errors

    def test_dropped_row_is_flagged(self, db):
        program, positions, parts, rows = self._fixture(db)
        tampered = [list(part) for part in parts]
        next(part for part in tampered if part).pop()
        report = verify_shard_partition(program, positions, tampered, rows)
        assert any("missing" in d.message for d in report.errors)

    def test_duplicated_row_is_flagged(self, db):
        program, positions, parts, rows = self._fixture(db)
        tampered = [list(part) for part in parts]
        donor = next(part for part in tampered if part)
        donor.append(donor[0])
        report = verify_shard_partition(program, positions, tampered, rows)
        assert any("duplicated or foreign" in d.message for d in report.errors)

    def test_misrouted_row_is_flagged(self, db):
        program, positions, parts, rows = self._fixture(db)
        tampered = [list(part) for part in parts]
        source = next(i for i, part in enumerate(tampered) if part)
        row = tampered[source].pop()
        tampered[(source + 1) % len(tampered)].append(row)
        report = verify_shard_partition(program, positions, tampered, rows)
        assert any("hash selects" in d.message for d in report.errors)

    def test_codes_are_i008(self, db):
        program, positions, parts, rows = self._fixture(db)
        report = verify_shard_partition(program, positions, [], rows)
        assert report.has_errors
        assert {d.code for d in report.errors} == {"I008"}


class TestParallelExecution:
    def _serial_reference(self, db, text):
        return QueryEvaluator(db, strategy="program").evaluate(parse_query(text)).rows

    @pytest.mark.parametrize("text", [JOIN, CARTESIAN, THREE_WAY])
    def test_thread_backend_matches_serial(self, db, text):
        evaluator = QueryEvaluator(
            db, strategy="parallel", workers=2, verify_partitions=True
        )
        try:
            assert evaluator.evaluate(parse_query(text)).rows == (
                self._serial_reference(db, text)
            )
        finally:
            evaluator.close()

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="fork backend is POSIX-only")
    @pytest.mark.parametrize("text", [JOIN, THREE_WAY])
    def test_fork_backend_matches_serial(self, db, text):
        evaluator = QueryEvaluator(
            db, strategy="parallel", workers=2, parallel_backend="fork"
        )
        try:
            assert evaluator.evaluate(parse_query(text)).rows == (
                self._serial_reference(db, text)
            )
        finally:
            evaluator.close()

    def test_binding_sets_survive_sharding(self, db):
        query = parse_query(JOIN)
        serial = QueryEvaluator(db, strategy="program").evaluate_with_bindings(query)
        evaluator = QueryEvaluator(db, strategy="parallel", workers=2)
        try:
            sharded = evaluator.evaluate_with_bindings(query)
        finally:
            evaluator.close()
        assert set(serial) == set(sharded)
        for row, bindings in serial.items():
            assert {frozenset(b.items()) for b in bindings} == {
                frozenset(b.items()) for b in sharded[row]
            }

    def test_auto_stays_serial_below_the_crossover(self, db):
        """The acceptance gate: on a small instance ``auto`` must keep
        picking serial — shard setup dwarfs the divided join work."""
        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(db, strategy="auto", workers=4, metrics=metrics)
        evaluator.evaluate(parse_query(JOIN))
        sharding = metrics.snapshot()["sharding"]
        assert sharding["parallel"] == 0
        assert sharding["serial"] == 1
        assert "cost_model" in sharding["reasons"]

    def test_parallel_strategy_records_forced_sharding(self, db):
        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(
            db, strategy="parallel", workers=2, metrics=metrics
        )
        try:
            evaluator.evaluate(parse_query(JOIN))
        finally:
            evaluator.close()
        sharding = metrics.snapshot()["sharding"]
        assert sharding["parallel"] == 1
        assert sharding["shards_executed"] == 2
        assert sharding["reasons"] == {"forced": 1}

    def test_single_atom_never_shards(self, db):
        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(db, strategy="parallel", workers=4, metrics=metrics)
        evaluator.evaluate(parse_query("Q(F) :- Family(FID, F, D)"))
        assert metrics.snapshot()["sharding"]["reasons"] == {"single_atom": 1}

    def test_one_worker_never_shards(self, db):
        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(db, strategy="parallel", workers=1, metrics=metrics)
        evaluator.evaluate(parse_query(JOIN))
        assert metrics.snapshot()["sharding"]["reasons"] == {"no_workers": 1}

    def test_forced_serial_strategies_never_shard(self, db):
        for strategy in ("program", "reduced"):
            metrics = EvaluationMetrics()
            evaluator = QueryEvaluator(
                db, strategy=strategy, workers=4, metrics=metrics
            )
            evaluator.evaluate(parse_query(JOIN))
            assert metrics.snapshot()["sharding"]["reasons"] == {"forced_serial": 1}

    def test_fork_degrades_to_thread_without_os_fork(self, db, monkeypatch):
        monkeypatch.delattr(os, "fork", raising=False)
        evaluator = QueryEvaluator(db, parallel_backend="fork")
        assert evaluator.parallel_backend == "thread"

    def test_unknown_backend_rejected(self, db):
        with pytest.raises(ValueError):
            QueryEvaluator(db, parallel_backend="processes")

    def test_bad_worker_count_rejected(self, db):
        with pytest.raises(ValueError):
            QueryEvaluator(db, workers=0)


class TestParallelCostModel:
    def _model(self, db):
        return CostModel(StatisticsCatalog(IndexManager(db)))

    def test_small_input_prefers_serial(self, db):
        estimate = self._model(db).parallel_estimate(100.0, 10, 4)
        assert not estimate.prefers_parallel
        assert estimate.as_dict()["strategy"] == "serial"

    def test_large_input_prefers_parallel(self, db):
        estimate = self._model(db).parallel_estimate(1_000_000.0, 1_000, 4)
        assert estimate.prefers_parallel
        assert estimate.as_dict()["strategy"] == "parallel"

    def test_crossover_is_monotone_in_serial_cost(self, db):
        model = self._model(db)
        costs = [model.parallel_estimate(c, 100, 4) for c in (1e2, 1e4, 1e6)]
        flips = [e.prefers_parallel for e in costs]
        assert flips == sorted(flips)  # serial → parallel, never back


class TestPartitionCache:
    def test_warm_traffic_reuses_the_partition(self, db):
        query = parse_query(JOIN)
        evaluator = QueryEvaluator(db, strategy="parallel", workers=2)
        try:
            evaluator.evaluate(query)
            first = evaluator._shard_parts[query][4]
            evaluator.evaluate(query)
            assert evaluator._shard_parts[query][4] is first
        finally:
            evaluator.close()

    def test_drift_recomputes_the_partition(self, db):
        query = parse_query(JOIN)
        evaluator = QueryEvaluator(db, strategy="parallel", workers=2)
        try:
            evaluator.evaluate(query)
            first = evaluator._shard_parts[query][4]
            db.insert("Family", (77, "NewFam", "ND"))
            db.insert("FamilyIntro", (77, "text"))
            assert (
                evaluator.evaluate(query).rows
                == QueryEvaluator(db, strategy="program").evaluate(query).rows
            )
            assert evaluator._shard_parts[query][4] is not first
        finally:
            evaluator.close()

    def test_invalidate_caches_drops_partitions(self, db):
        query = parse_query(JOIN)
        evaluator = QueryEvaluator(db, strategy="parallel", workers=2)
        try:
            evaluator.evaluate(query)
            assert evaluator._shard_parts
            evaluator.invalidate_caches()
            assert not evaluator._shard_parts
        finally:
            evaluator.close()


class TestWorkerPool:
    def test_close_is_idempotent_and_evaluator_survives(self, db):
        query = parse_query(JOIN)
        evaluator = QueryEvaluator(db, strategy="parallel", workers=2)
        reference = QueryEvaluator(db, strategy="program").evaluate(query).rows
        assert evaluator.evaluate(query).rows == reference
        evaluator.close()
        evaluator.close()
        # The evaluator stays usable: the next sharded run recreates the pool.
        assert evaluator.evaluate(query).rows == reference
        evaluator.close()

    def test_pool_is_lazy(self, db):
        evaluator = QueryEvaluator(db, strategy="program", workers=2)
        evaluator.evaluate(parse_query(JOIN))
        assert evaluator._shard_pool is None

    def test_shared_state_registration(self):
        declared = declared_shared_state(QueryEvaluator)
        assert declared["_shard_parts"] == "_cache_lock"
        assert declared["_shard_pool"] == "_pool_lock"

    def test_default_worker_count_is_bounded(self):
        count = default_worker_count()
        assert 2 <= count <= MAX_DEFAULT_WORKERS


class TestEngineWiring:
    def test_strict_engine_verifies_partitions(self, db):
        engine = CitationEngine(
            db, gtopdb.citation_views(), verify_plans="strict", workers=3
        )
        assert engine._execution_evaluator().verify_partitions

    def test_off_engine_skips_partition_verification(self, db):
        engine = CitationEngine(db, gtopdb.citation_views(), verify_plans="off")
        assert not engine._execution_evaluator().verify_partitions

    def test_engine_threads_workers_and_backend(self, db):
        engine = CitationEngine(db, gtopdb.citation_views(), workers=3)
        evaluator = engine._execution_evaluator()
        assert evaluator.workers == 3
        assert evaluator.parallel_backend == "thread"

    def test_parallel_engine_citations_match_serial(self, db):
        serial = CitationEngine(db, gtopdb.citation_views())
        parallel = CitationEngine(
            db, gtopdb.citation_views(), strategy="parallel", workers=2
        )
        query = gtopdb.paper_query()
        left = serial.cite(query)
        right = parallel.cite(query)
        assert {t.row for t in left.tuple_citations} == {
            t.row for t in right.tuple_citations
        }
        assert str(left.citation.to_text()) == str(right.citation.to_text())
