"""Tests for the statistics catalog, the cost model and evaluation metrics.

The cost model replaces the deprecated cardinality threshold of
``strategy="auto"``: these tests pin the statistics it reads (row counts,
distinct keys, bucket skew, sampled key overlap — all version-stamped and
lazily refreshed), the two decision directions the fixed threshold got wrong
(dense-large must run the plain program, sparse-small must reduce), and the
metrics every decision leaves behind.
"""

import pytest

from repro.query.evaluator import DEFAULT_REDUCTION_THRESHOLD, QueryEvaluator
from repro.query.parser import parse_query
from repro.query.stats import (
    EvaluationMetrics,
    StatisticsCatalog,
)
from repro.relational.database import Database
from repro.relational.index import IndexManager
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("S", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("T", [Attribute("a", int), Attribute("b", int)]),
    ]
)

PATH = parse_query("Q(A, D) :- R(A, B), S(B, C), T(C, D)")


def _relation(name: str, rows) -> Relation:
    return Relation(
        RelationSchema(name, [Attribute("a", int), Attribute("b", int)]), rows
    )


class TestStatisticsCatalog:
    def test_row_counts_and_version_stamping(self):
        relation = _relation("R", [(1, 2), (3, 4)])
        catalog = StatisticsCatalog()
        stats = catalog.statistics("R", relation)
        assert stats.row_count == 2
        assert catalog.statistics("R", relation) is stats  # cached
        relation.insert((5, 6))
        refreshed = catalog.statistics("R", relation)
        assert refreshed is not stats
        assert refreshed.row_count == 3

    def test_replacing_the_relation_object_refreshes(self):
        catalog = StatisticsCatalog()
        catalog.statistics("R", _relation("R", [(1, 2)]))
        other = _relation("R", [(1, 2), (3, 4)])
        assert catalog.statistics("R", other).row_count == 2

    def test_distinct_counts_via_the_index_manager(self):
        relation = _relation("R", [(1, 10), (1, 11), (2, 12)])
        manager = IndexManager()
        catalog = StatisticsCatalog(manager)
        assert catalog.distinct_count("R", relation, (0,)) == 2
        assert catalog.distinct_count("R", relation, (1,)) == 3
        assert catalog.max_bucket("R", relation, (0,)) == 2
        # The manager now holds the very indexes a join would probe with.
        assert len(manager) == 2

    def test_distinct_counts_without_a_manager_fall_back_to_scans(self):
        relation = _relation("R", [(1, 10), (1, 11), (2, 12)])
        catalog = StatisticsCatalog()
        assert catalog.distinct_count("R", relation, (0,)) == 2
        assert catalog.max_bucket("R", relation, (0,)) == 2

    def test_skew_reads_uniformity(self):
        relation = _relation("R", [(1, i) for i in range(9)] + [(2, 0), (3, 0)])
        catalog = StatisticsCatalog(IndexManager())
        catalog.max_bucket("R", relation, (0,))
        stats = catalog.statistics("R", relation)
        # 11 rows over 3 keys, biggest bucket 9: skew 9 / (11/3).
        assert stats.skew((0,)) == pytest.approx(9 / (11 / 3))

    def test_key_overlap_fractions(self):
        left = _relation("L", [(i, 0) for i in range(10)])       # keys 0..9
        right = _relation("Rr", [(i, 0) for i in range(5, 20)])  # keys 5..19
        catalog = StatisticsCatalog(IndexManager())
        left_in_right, right_in_left = catalog.key_overlap(
            ("L", left, (0,)), ("Rr", right, (0,))
        )
        assert left_in_right == pytest.approx(0.5)
        assert right_in_left == pytest.approx(5 / 15)

    def test_key_overlap_of_an_empty_side_is_zero(self):
        left = _relation("L", [(1, 0)])
        right = _relation("Rr", [])
        catalog = StatisticsCatalog()
        assert catalog.key_overlap(("L", left, (0,)), ("Rr", right, (0,))) == (
            0.0,
            0.0,
        )

    def test_key_overlap_refreshes_on_version_drift(self):
        left = _relation("L", [(0, 0)])
        right = _relation("Rr", [(1, 0)])
        catalog = StatisticsCatalog()
        assert catalog.key_overlap(("L", left, (0,)), ("Rr", right, (0,)))[0] == 0.0
        right.insert((0, 1))
        assert catalog.key_overlap(("L", left, (0,)), ("Rr", right, (0,)))[0] == 1.0

    def test_invalidate_drops_everything(self):
        relation = _relation("R", [(1, 2)])
        catalog = StatisticsCatalog()
        catalog.statistics("R", relation)
        assert len(catalog) == 1
        catalog.invalidate()
        assert len(catalog) == 0


def _dense_db(rows: int = 1200) -> Database:
    """Fully joining chain: every key matches, nothing dangles."""
    database = Database(SCHEMA)
    database.insert_many("R", ((i, i) for i in range(rows)))
    database.insert_many("S", ((i, i) for i in range(rows)))
    database.insert_many("T", ((i, i) for i in range(rows)))
    return database


def _sparse_db(rows: int = 300, fanout: int = 15) -> Database:
    """Fan-out chain whose last relation is ~98% disjoint: most partial
    bindings the plain program enumerates die at the final probe."""
    domain = rows // fanout
    database = Database(SCHEMA)
    database.insert_many("R", ((i, i % domain) for i in range(rows)))
    database.insert_many("S", ((i % domain, i) for i in range(rows)))
    survivors = max(2, rows // 50)
    database.insert_many(
        "T",
        [(i, i) for i in range(survivors)]
        + [(rows + i, i) for i in range(rows - survivors)],
    )
    return database


class TestCostModel:
    def _estimate(self, database):
        evaluator = QueryEvaluator(database)
        reduced = evaluator.reduce(PATH)
        relations = {name: database.relation(name) for name in ("R", "S", "T")}
        return evaluator.cost_model.estimate(reduced, relations)

    def test_dense_data_never_pays_the_prelude(self):
        estimate = self._estimate(_dense_db())
        assert not estimate.prefers_reduction
        assert estimate.strategy == "program"
        # Nothing dangles: the reduced cost is the plain cost plus the
        # prelude, so the margin is exactly the prelude.
        assert estimate.survival == (1.0, 1.0, 1.0)
        assert estimate.reduced_cost == pytest.approx(
            estimate.program_cost + estimate.prelude_cost
        )

    def test_dangling_heavy_data_prefers_the_reduction(self):
        estimate = self._estimate(_sparse_db())
        assert estimate.prefers_reduction
        assert estimate.strategy == "reduced"
        assert min(estimate.survival) < 0.25

    def test_threshold_is_wrong_in_both_directions(self):
        # The two workloads the fixed 4096-row gate misjudges, pinned.
        dense = _dense_db(1500)   # 4500 rows total: threshold said "reduced"
        sparse = _sparse_db(300)  # 900 rows total: threshold said "program"
        assert dense.total_rows() >= DEFAULT_REDUCTION_THRESHOLD
        assert sparse.total_rows() < DEFAULT_REDUCTION_THRESHOLD
        assert QueryEvaluator(dense).select_strategy(PATH) == "program"
        assert QueryEvaluator(sparse).select_strategy(PATH) == "reduced"

    def test_cartesian_products_gain_nothing(self):
        database = Database(SCHEMA)
        database.insert_many("R", ((i, i) for i in range(10)))
        database.insert_many("S", ((i, i) for i in range(10)))
        query = parse_query("Q(A, C) :- R(A, B), S(C, D)")
        evaluator = QueryEvaluator(database)
        reduced = evaluator.reduce(query)
        assert reduced.semi_joins == ()  # disconnected: no useful edges
        relations = {"R": database.relation("R"), "S": database.relation("S")}
        verdict = evaluator.cost_model.estimate(reduced, relations)
        assert not verdict.prefers_reduction
        assert verdict.prelude_cost == 0.0

    def test_as_dict_is_json_friendly(self):
        import json

        estimate = self._estimate(_sparse_db())
        payload = estimate.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["strategy"] == "reduced"


class TestDeprecatedThreshold:
    def test_passing_a_threshold_warns(self):
        database = _dense_db(10)
        with pytest.warns(DeprecationWarning):
            evaluator = QueryEvaluator(database, reduction_threshold=7)
        assert evaluator.reduction_threshold == 7

    def test_default_has_no_threshold(self):
        assert QueryEvaluator(_dense_db(10)).reduction_threshold is None

    def test_legacy_gate_overrides_the_cost_model_under_auto_only(self):
        dense = _dense_db(1500)
        with pytest.warns(DeprecationWarning):
            legacy = QueryEvaluator(
                dense, reduction_threshold=DEFAULT_REDUCTION_THRESHOLD
            )
        # The old gate reduces dense-large data (that is the bug the cost
        # model fixes); strategy="cost" ignores the escape hatch.
        assert legacy.select_strategy(PATH) == "reduced"
        with pytest.warns(DeprecationWarning):
            costed = QueryEvaluator(
                dense,
                strategy="cost",
                reduction_threshold=DEFAULT_REDUCTION_THRESHOLD,
            )
        assert costed.select_strategy(PATH) == "program"


class TestEvaluationMetrics:
    def test_picks_and_reasons_are_counted(self):
        metrics = EvaluationMetrics()
        metrics.record_pick("program", "cost_model")
        metrics.record_pick("reduced", "warm_prelude")
        metrics.record_pick("reduced", "forced")
        snapshot = metrics.snapshot()
        assert snapshot["picks"] == {"program": 1, "reduced": 2}
        assert snapshot["pick_reasons"] == {
            "cost_model": 1,
            "forced": 1,
            "warm_prelude": 1,
        }

    def test_estimates_and_actuals_aggregate(self):
        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(_sparse_db(), metrics=metrics)
        evaluator.evaluate(PATH)
        evaluator.evaluate(PATH)
        snapshot = metrics.snapshot()
        assert snapshot["picks"]["reduced"] == 2
        # The second evaluation rides the warm prelude: one cold estimate.
        assert snapshot["cost_model"]["estimates"] == 1
        assert snapshot["pick_reasons"].get("warm_prelude") == 1
        assert snapshot["cost_model"]["actual_ms"]["reduced"]["count"] == 2
        assert snapshot["cost_model"]["actual_ms"]["reduced"]["mean_ms"] > 0.0

    def test_prelude_counters_flow_through(self):
        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(
            _sparse_db(), strategy="reduced", metrics=metrics
        )
        evaluator.evaluate(PATH)
        evaluator.evaluate(PATH)
        prelude = metrics.snapshot()["prelude_cache"]
        assert prelude["hits"] == 1
        assert prelude["misses"] == 1
        assert prelude["steps_recomputed"] == 3
        assert prelude["hit_rate"] == 0.5

    def test_reset_zeroes_everything(self):
        metrics = EvaluationMetrics()
        metrics.record_pick("program", "forced")
        metrics.record_prelude(hit=True)
        metrics.reset()
        snapshot = metrics.snapshot()
        assert snapshot["picks"] == {"program": 0, "reduced": 0}
        assert snapshot["prelude_cache"]["hits"] == 0

    def test_snapshot_is_json_friendly(self):
        import json

        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(_sparse_db(), metrics=metrics)
        evaluator.evaluate(PATH)
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestCacheBounds:
    def test_select_strategy_leaves_no_metric_trace(self):
        metrics = EvaluationMetrics()
        evaluator = QueryEvaluator(_sparse_db(), metrics=metrics)
        evaluator.select_strategy(PATH)
        snapshot = metrics.snapshot()
        assert snapshot["picks"] == {"program": 0, "reduced": 0}
        assert snapshot["cost_model"]["estimates"] == 0

    def test_per_query_caches_are_bounded_fifo(self):
        database = _dense_db(8)
        evaluator = QueryEvaluator(
            database, strategy="reduced", max_cached_queries=2
        )
        queries = [
            parse_query(f"Q{i}(A, C) :- R(A, B), S(B, C)") for i in range(5)
        ]
        for query in queries:
            evaluator.evaluate(query)
        assert len(evaluator._programs) == 2
        assert len(evaluator._reduced) <= 2
        assert len(evaluator._preludes) <= 2
        # Evicted queries simply recompute (and re-enter) on next use.
        assert evaluator.evaluate(queries[0]).rows == evaluator.evaluate(
            queries[4]
        ).rows
