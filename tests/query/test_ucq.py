"""Tests for unions of conjunctive queries."""

import pytest

from repro.errors import QueryError
from repro.query.parser import parse_query
from repro.query.ucq import (
    UnionQuery,
    as_union,
    evaluate_union,
    evaluate_union_with_bindings,
    minimize_union,
    union_contained_in,
    union_equivalent,
)
from repro.workloads import gtopdb


@pytest.fixture
def db():
    return gtopdb.paper_instance()


@pytest.fixture
def calcitonin_or_adenosine():
    return UnionQuery.parse(
        """
        Q(FID, FName) :- Family(FID, FName, Desc), FName = "Calcitonin";
        Q(FID, FName) :- Family(FID, FName, Desc), FName = "Adenosine"
        """
    )


class TestConstruction:
    def test_parse_collects_disjuncts(self, calcitonin_or_adenosine):
        assert len(calcitonin_or_adenosine) == 2
        assert calcitonin_or_adenosine.arity == 2
        assert calcitonin_or_adenosine.predicates() == {"Family"}

    def test_mixed_head_names_require_explicit_name(self):
        text = "A(X) :- R(X, Y); B(X) :- S(X, Y)"
        with pytest.raises(QueryError):
            UnionQuery.parse(text)
        union = UnionQuery.parse(text, name="AB")
        assert union.name == "AB"

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery("U", [parse_query("Q(X) :- R(X, Y)"), parse_query("Q(X, Y) :- R(X, Y)")])

    def test_empty_union_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery("U", [])

    def test_as_union_coercions(self):
        single = parse_query("Q(X) :- R(X, Y)")
        assert len(as_union(single)) == 1
        assert len(as_union([single, parse_query("Q(Y) :- S(Y, Z)")])) == 2
        assert as_union(as_union(single)) == as_union(single)
        with pytest.raises(QueryError):
            as_union([])


class TestEvaluation:
    def test_union_of_selections(self, db, calcitonin_or_adenosine):
        result = evaluate_union(calcitonin_or_adenosine, db)
        assert result.rows == {
            (11, "Calcitonin"),
            (12, "Calcitonin"),
            (13, "Adenosine"),
        }

    def test_overlapping_disjuncts_deduplicate(self, db):
        union = UnionQuery.parse(
            """
            Q(FID) :- Family(FID, FName, Desc);
            Q(FID) :- FamilyIntro(FID, Text)
            """
        )
        assert evaluate_union(union, db).rows == {(11,), (12,), (13,)}

    def test_bindings_track_disjunct_index(self, db):
        union = UnionQuery.parse(
            """
            Q(FID) :- Family(FID, FName, Desc);
            Q(FID) :- FamilyIntro(FID, Text)
            """
        )
        derivations = evaluate_union_with_bindings(union, db)
        indices = {index for index, _binding in derivations[(11,)]}
        assert indices == {0, 1}


class TestContainmentAndMinimization:
    def test_sagiv_yannakakis_containment(self):
        narrow = UnionQuery.parse('Q(X) :- R(X, 1)', name="N")
        wide = UnionQuery.parse("Q(X) :- R(X, Y); Q(X) :- S(X, Y)", name="W")
        assert union_contained_in(narrow, wide)
        assert not union_contained_in(wide, narrow)

    def test_equivalence_up_to_disjunct_order(self):
        a = UnionQuery.parse("Q(X) :- R(X, Y); Q(X) :- S(X, Y)")
        b = UnionQuery.parse("Q(X) :- S(X, A); Q(X) :- R(X, B)")
        assert union_equivalent(a, b)

    def test_minimize_drops_contained_disjunct(self):
        union = UnionQuery.parse(
            "Q(X) :- R(X, Y); Q(X) :- R(X, 5)"
        )
        minimal = minimize_union(union)
        assert len(minimal) == 1
        assert union_equivalent(minimal, union)

    def test_minimize_keeps_incomparable_disjuncts(self):
        union = UnionQuery.parse("Q(X) :- R(X, Y); Q(X) :- S(X, Y)")
        assert len(minimize_union(union)) == 2

    def test_minimize_collapses_equivalent_disjuncts(self):
        union = UnionQuery.parse("Q(X) :- R(X, Y); Q(X) :- R(X, Z)")
        assert len(minimize_union(union)) == 1
