"""Tests for the Datalog-style query parser."""

import pytest

from repro.errors import ParseError
from repro.query.ast import Constant, Variable
from repro.query.parser import parse_program, parse_query


class TestBasicParsing:
    def test_simple_query(self):
        query = parse_query("Q(X) :- R(X, Y)")
        assert query.name == "Q"
        assert query.head_terms == (Variable("X"),)
        assert query.body[0].predicate == "R"

    def test_paper_query(self):
        query = parse_query(
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        )
        assert len(query.body) == 2
        assert query.predicates() == {"Family", "FamilyIntro"}

    def test_alternative_arrow(self):
        assert parse_query("Q(X) <- R(X)").name == "Q"

    def test_whitespace_insensitive(self):
        query = parse_query("  Q( X )   :-   R(X ,  Y) ")
        assert query.head_terms == (Variable("X"),)

    def test_string_constant(self):
        query = parse_query('Q(X) :- R(X, "hello world")')
        assert Constant("hello world") in query.body[0].terms

    def test_single_quoted_string(self):
        query = parse_query("Q(X) :- R(X, 'quoted')")
        assert Constant("quoted") in query.body[0].terms

    def test_numeric_constants(self):
        query = parse_query("Q(X) :- R(X, 42, 3.5, -7)")
        values = [t.value for t in query.body[0].terms if isinstance(t, Constant)]
        assert values == [42, 3.5, -7]

    def test_boolean_and_null_constants(self):
        query = parse_query("Q(X) :- R(X, true, false, null)")
        values = [t.value for t in query.body[0].terms if isinstance(t, Constant)]
        assert values == [True, False, None]


class TestLambdaParameters:
    def test_ascii_lambda(self):
        query = parse_query("lambda FID. V1(FID, FName) :- Family(FID, FName, D)")
        assert query.parameters == (Variable("FID"),)

    def test_unicode_lambda(self):
        query = parse_query("λ FID. V1(FID, FName) :- Family(FID, FName, D)")
        assert query.parameters == (Variable("FID"),)

    def test_multiple_parameters(self):
        query = parse_query("lambda A, B. V(A, B, C) :- R(A, B, C)")
        assert query.parameters == (Variable("A"), Variable("B"))

    def test_parameter_not_in_head_rejected(self):
        with pytest.raises(Exception):
            parse_query("lambda Z. V(A) :- R(A, Z)")


class TestEqualityAtoms:
    def test_citation_query_with_equality(self):
        query = parse_query('CV2(D) :- D = "IUPHAR/BPS Guide to PHARMACOLOGY"')
        assert query.equalities[0].variable == Variable("D")
        assert query.equalities[0].constant.value == "IUPHAR/BPS Guide to PHARMACOLOGY"
        assert query.body == ()

    def test_equality_mixed_with_atoms(self):
        query = parse_query('Q(X, D) :- R(X), D = "fixed"')
        assert len(query.body) == 1
        assert len(query.equalities) == 1

    def test_equality_to_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- R(X), X = Y")


class TestErrors:
    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) R(X)")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_query("Q(X :- R(X)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- R(X) extra(Y)")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- R(X) & S(X)")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_query("")


class TestPrograms:
    def test_parse_program_multiple_rules(self):
        rules = parse_program(
            """
            V1(FID, FName) :- Family(FID, FName, Desc);
            V3(FID, Text) :- FamilyIntro(FID, Text)
            """
        )
        assert [rule.name for rule in rules] == ["V1", "V3"]

    def test_parse_program_without_separator(self):
        rules = parse_program("A(X) :- R(X) B(Y) :- S(Y)")
        assert len(rules) == 2

    def test_round_trip_through_str(self):
        query = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        assert parse_query(str(query)) == query

    def test_round_trip_parameterized(self):
        text = 'lambda FID. V1(FID, PName) :- Committee(FID, PName)'
        query = parse_query(text)
        reparsed = parse_query(str(query).replace("λ", "lambda"))
        assert reparsed == query
