"""Tests for conjunctive-query minimization (cores)."""

import repro.query.minimization as minimization
from repro.query.containment import is_equivalent_to
from repro.query.minimization import is_minimal, minimize
from repro.query.parser import parse_query


class TestMinimize:
    def test_already_minimal_query_unchanged(self):
        query = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        assert minimize(query) == query

    def test_redundant_atom_removed(self):
        query = parse_query("Q(X) :- R(X, Y), R(X, Z)")
        minimal = minimize(query)
        assert len(minimal.body) == 1
        assert is_equivalent_to(minimal, query)

    def test_classic_folding_example(self):
        # R(X,Y), R(X,Z), S(Z) minimises to R(X,Z), S(Z)
        query = parse_query("Q(X) :- R(X, Y), R(X, Z), S(Z)")
        minimal = minimize(query)
        assert len(minimal.body) == 2
        assert is_equivalent_to(minimal, query)

    def test_chain_with_shortcut(self):
        query = parse_query("Q(X, Z) :- R(X, Y), R(Y, Z), R(X, Z)")
        minimal = minimize(query)
        # No atom can be dropped: the direct edge and the two-step path are
        # incomparable once X and Z are distinguished.
        assert len(minimal.body) == 3

    def test_duplicate_atoms_collapse(self):
        query = parse_query("Q(X) :- R(X, Y), R(X, Y), R(X, Y)")
        # identical atoms are already merged structurally by tuple identity? they
        # are syntactically equal atoms, kept as written; minimization removes them.
        minimal = minimize(query)
        assert len(minimal.body) == 1

    def test_head_variables_stay_bound(self):
        query = parse_query("Q(X, Y) :- R(X, Y), R(X, Z)")
        minimal = minimize(query)
        assert len(minimal.body) == 1
        assert minimal.head_variables() <= minimal.body_variables()

    def test_minimization_preserves_equivalence_on_random_examples(self):
        examples = [
            "Q(A) :- R(A, B), R(B, C), R(A, C)",
            "Q(A, B) :- R(A, B), S(B, C), S(B, D)",
            "Q(A) :- R(A, A), R(A, B)",
            "Q(A) :- R(A, B), S(C, C), S(D, D)",
        ]
        for text in examples:
            query = parse_query(text)
            minimal = minimize(query)
            assert is_equivalent_to(minimal, query), text
            assert is_minimal(minimal), text


class TestSinglePassCost:
    """The scan continues from the current index after a drop — it never
    restarts, so the equivalence checks are bounded by the body width."""

    def _count_equivalence_checks(self, monkeypatch, query):
        calls = []
        real = minimization.is_equivalent_to

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(minimization, "is_equivalent_to", counting)
        minimal = minimize(query)
        return len(calls), minimal

    def test_wide_redundant_body_checks_linear_in_width(self, monkeypatch):
        # Eleven redundant copies R(X, Y_i) fold onto the one kept atom; the
        # restart-from-scratch strategy needed O(n^2) equivalence checks here.
        width = 12
        atoms = ", ".join(f"R(X, Y{i})" for i in range(width))
        query = parse_query(f"Q(X) :- {atoms}")
        checks, minimal = self._count_equivalence_checks(monkeypatch, query)
        assert len(minimal.body) == 1
        assert checks <= width

    def test_irreducible_body_checks_once_per_atom(self, monkeypatch):
        width = 8
        atoms = ", ".join(f"R(X{i}, X{i + 1})" for i in range(width))
        head = ", ".join(f"X{i}" for i in range(width + 1))
        query = parse_query(f"Q({head}) :- {atoms}")
        checks, minimal = self._count_equivalence_checks(monkeypatch, query)
        assert minimal == query
        assert checks <= width

    def test_mixed_body_stays_linear(self, monkeypatch):
        # Interleave droppable and essential atoms so drops land mid-scan.
        query = parse_query(
            "Q(X, Y) :- R(X, A), R(X, Y), S(Y, B), S(Y, C), R(X, D), S(Y, Y)"
        )
        checks, minimal = self._count_equivalence_checks(monkeypatch, query)
        assert is_equivalent_to(minimal, query)
        assert is_minimal(minimal)
        assert checks <= len(query.body)


class TestIsMinimal:
    def test_single_atom_is_minimal(self):
        assert is_minimal(parse_query("Q(X) :- R(X, Y)"))

    def test_redundant_query_is_not_minimal(self):
        assert not is_minimal(parse_query("Q(X) :- R(X, Y), R(X, Z)"))

    def test_self_join_with_distinguished_vars_is_minimal(self):
        assert is_minimal(parse_query("Q(X, Y, Z) :- R(X, Y), R(Y, Z)"))
