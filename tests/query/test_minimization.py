"""Tests for conjunctive-query minimization (cores)."""

from repro.query.containment import is_equivalent_to
from repro.query.minimization import is_minimal, minimize
from repro.query.parser import parse_query


class TestMinimize:
    def test_already_minimal_query_unchanged(self):
        query = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        assert minimize(query) == query

    def test_redundant_atom_removed(self):
        query = parse_query("Q(X) :- R(X, Y), R(X, Z)")
        minimal = minimize(query)
        assert len(minimal.body) == 1
        assert is_equivalent_to(minimal, query)

    def test_classic_folding_example(self):
        # R(X,Y), R(X,Z), S(Z) minimises to R(X,Z), S(Z)
        query = parse_query("Q(X) :- R(X, Y), R(X, Z), S(Z)")
        minimal = minimize(query)
        assert len(minimal.body) == 2
        assert is_equivalent_to(minimal, query)

    def test_chain_with_shortcut(self):
        query = parse_query("Q(X, Z) :- R(X, Y), R(Y, Z), R(X, Z)")
        minimal = minimize(query)
        # No atom can be dropped: the direct edge and the two-step path are
        # incomparable once X and Z are distinguished.
        assert len(minimal.body) == 3

    def test_duplicate_atoms_collapse(self):
        query = parse_query("Q(X) :- R(X, Y), R(X, Y), R(X, Y)")
        # identical atoms are already merged structurally by tuple identity? they
        # are syntactically equal atoms, kept as written; minimization removes them.
        minimal = minimize(query)
        assert len(minimal.body) == 1

    def test_head_variables_stay_bound(self):
        query = parse_query("Q(X, Y) :- R(X, Y), R(X, Z)")
        minimal = minimize(query)
        assert len(minimal.body) == 1
        assert minimal.head_variables() <= minimal.body_variables()

    def test_minimization_preserves_equivalence_on_random_examples(self):
        examples = [
            "Q(A) :- R(A, B), R(B, C), R(A, C)",
            "Q(A, B) :- R(A, B), S(B, C), S(B, D)",
            "Q(A) :- R(A, A), R(A, B)",
            "Q(A) :- R(A, B), S(C, C), S(D, D)",
        ]
        for text in examples:
            query = parse_query(text)
            minimal = minimize(query)
            assert is_equivalent_to(minimal, query), text
            assert is_minimal(minimal), text


class TestIsMinimal:
    def test_single_atom_is_minimal(self):
        assert is_minimal(parse_query("Q(X) :- R(X, Y)"))

    def test_redundant_query_is_not_minimal(self):
        assert not is_minimal(parse_query("Q(X) :- R(X, Y), R(X, Z)"))

    def test_self_join_with_distinguished_vars_is_minimal(self):
        assert is_minimal(parse_query("Q(X, Y, Z) :- R(X, Y), R(Y, Z)"))
