"""Tests for conjunctive-query containment and equivalence."""

from repro.query.containment import (
    containment_mapping,
    find_homomorphism,
    is_contained_in,
    is_equivalent_to,
    is_isomorphic_to,
)
from repro.query.parser import parse_query


class TestContainment:
    def test_query_contained_in_itself(self):
        q = parse_query("Q(X) :- R(X, Y)")
        assert is_contained_in(q, q)

    def test_more_joins_contained_in_fewer(self):
        specific = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        general = parse_query("Q(X) :- R(X, Y)")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_constant_selection_contained_in_variable(self):
        specific = parse_query("Q(X) :- R(X, 5)")
        general = parse_query("Q(X) :- R(X, Y)")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_different_constants_not_contained(self):
        a = parse_query("Q(X) :- R(X, 5)")
        b = parse_query("Q(X) :- R(X, 6)")
        assert not is_contained_in(a, b)
        assert not is_contained_in(b, a)

    def test_head_arity_mismatch(self):
        a = parse_query("Q(X) :- R(X, Y)")
        b = parse_query("Q(X, Y) :- R(X, Y)")
        assert not is_contained_in(a, b)

    def test_different_predicates_not_contained(self):
        a = parse_query("Q(X) :- R(X, Y)")
        b = parse_query("Q(X) :- S(X, Y)")
        assert not is_contained_in(a, b)

    def test_repeated_variable_containment(self):
        diagonal = parse_query("Q(X) :- R(X, X)")
        general = parse_query("Q(X) :- R(X, Y)")
        assert is_contained_in(diagonal, general)
        assert not is_contained_in(general, diagonal)

    def test_chain_query_containment_with_folding(self):
        # The length-3 chain maps homomorphically onto the length-2 chain's pattern.
        longer = parse_query("Q(X) :- R(X, Y), R(Y, Z), R(Z, W)")
        shorter = parse_query("Q(X) :- R(X, Y), R(Y, Z)")
        assert is_contained_in(longer, shorter)

    def test_classic_cycle_vs_triangle(self):
        # Edge relation E; queries return a vertex on the cycle.
        triangle = parse_query("Q(X) :- E(X, Y), E(Y, Z), E(Z, X)")
        hexagon = parse_query(
            "Q(X) :- E(X, B), E(B, C), E(C, D), E(D, F), E(F, G), E(G, X)"
        )
        # A triangle (odd cycle) cannot map homomorphically into the bipartite
        # 6-cycle, so the hexagon query is NOT contained in the triangle query.
        assert is_contained_in(hexagon, triangle) is False
        # The 6-cycle folds onto the triangle (wrap around twice), so the
        # triangle query IS contained in the hexagon query.
        assert is_contained_in(triangle, hexagon) is True


class TestEquivalence:
    def test_renamed_variables_are_equivalent(self):
        a = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        b = parse_query("Q(A) :- R(A, B), S(B, C)")
        assert is_equivalent_to(a, b)

    def test_redundant_atom_preserves_equivalence(self):
        minimal = parse_query("Q(X) :- R(X, Y)")
        redundant = parse_query("Q(X) :- R(X, Y), R(X, Z)")
        assert is_equivalent_to(minimal, redundant)

    def test_body_order_does_not_matter(self):
        a = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        b = parse_query("Q(X) :- S(Y, Z), R(X, Y)")
        assert is_equivalent_to(a, b)

    def test_parameters_are_ignored(self):
        plain = parse_query("V(FID, FName) :- Family(FID, FName, D)")
        parameterized = parse_query("lambda FID. V(FID, FName) :- Family(FID, FName, D)")
        assert is_equivalent_to(plain, parameterized)

    def test_equalities_participate_in_containment(self):
        with_eq = parse_query('Q(X, D) :- R(X), D = "c"')
        with_const = parse_query('Q(X, "c") :- R(X)')
        assert is_equivalent_to(with_eq, with_const)

    def test_non_equivalent_queries(self):
        a = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        b = parse_query("Q(X) :- R(X, Y)")
        assert not is_equivalent_to(a, b)


class TestConstantOnlyQueries:
    """CV2-style queries whose entire body is equality atoms.

    The paper's whole-database citation queries look like
    ``CV2(D) :- D = "GtoPdb"`` — no relational atoms at all.  Normalization
    must push the constants into the head, or two such queries with
    *different* constants would compare equal.
    """

    def test_same_constant_is_equivalent(self):
        a = parse_query('CV2(D) :- D = "GtoPdb"')
        b = parse_query('CV2(E) :- E = "GtoPdb"')
        assert is_equivalent_to(a, b)
        assert is_isomorphic_to(a, b)

    def test_different_constants_are_not_equivalent(self):
        a = parse_query('CV2(D) :- D = "GtoPdb"')
        b = parse_query('CV2(D) :- D = "Reactome"')
        assert not is_contained_in(a, b)
        assert not is_contained_in(b, a)
        assert not is_equivalent_to(a, b)
        assert not is_isomorphic_to(a, b)

    def test_constant_only_vs_relational_body(self):
        constant_only = parse_query('Q(D) :- D = "c"')
        relational = parse_query("Q(X) :- R(X, Y)")
        assert not is_equivalent_to(constant_only, relational)

    def test_multi_column_constant_heads(self):
        a = parse_query('Q(D, E) :- D = "x", E = "y"')
        swapped = parse_query('Q(D, E) :- D = "y", E = "x"')
        assert not is_equivalent_to(a, swapped)


class TestParameterizedContainment:
    """λ-parameters are ignored by containment (the paper's Section 2 rule);
    the structural fingerprint is what distinguishes parameterizations."""

    def test_parameterization_does_not_affect_containment(self):
        plain = parse_query("V(FID, FName) :- Family(FID, FName, D)")
        parameterized = parse_query(
            "lambda FID. V(FID, FName) :- Family(FID, FName, D)"
        )
        assert is_contained_in(plain, parameterized)
        assert is_contained_in(parameterized, plain)

    def test_parameterized_constant_views_keep_constant_semantics(self):
        a = parse_query('lambda FID. CV(FID, E) :- Family(FID, N, D), E = "c"')
        b = parse_query('lambda FID. CV(FID, E) :- Family(FID, N, D), E = "d"')
        assert not is_equivalent_to(a, b)

    def test_fingerprint_distinguishes_parameterizations(self):
        from repro.service.fingerprint import fingerprint

        plain = parse_query("V(FID, FName) :- Family(FID, FName, D)")
        parameterized = parse_query(
            "lambda FID. V(FID, FName) :- Family(FID, FName, D)"
        )
        assert is_equivalent_to(plain, parameterized)
        assert fingerprint(plain) != fingerprint(parameterized)

    def test_fingerprint_distinguishes_cv2_constants(self):
        from repro.service.fingerprint import fingerprint

        a = parse_query('CV2(D) :- D = "GtoPdb"')
        b = parse_query('CV2(D) :- D = "Reactome"')
        assert fingerprint(a) != fingerprint(b)


class TestMappings:
    def test_containment_mapping_is_returned(self):
        general = parse_query("Q(X) :- R(X, Y)")
        specific = parse_query("Q(A) :- R(A, B), S(B, C)")
        mapping = containment_mapping(general, specific)
        assert mapping is not None
        # X must map to the head variable A of the contained query.
        from repro.query.ast import Variable

        assert mapping[Variable("X")] == Variable("A")

    def test_find_homomorphism_on_atom_sets(self):
        source = parse_query("Q(X) :- R(X, Y)").body
        target = parse_query("Q(A) :- R(A, B), R(B, C)").body
        assert find_homomorphism(source, target) is not None

    def test_isomorphism_detects_renaming_only(self):
        a = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        b = parse_query("Q(U) :- R(U, V), S(V, W)")
        c = parse_query("Q(X) :- R(X, Y), S(Y, Z), R(X, W)")
        assert is_isomorphic_to(a, b)
        assert not is_isomorphic_to(a, c)
