"""Shared hypothesis strategies for conjunctive queries and instances.

Every property suite generates over the same tiny world: two binary base
relations ``R`` and ``S`` plus a view-like extra relation ``V`` handed to the
evaluator as an ``extra_relation``, with values drawn from a small domain so
joins actually join.  The generators cover the shapes the evaluator's
strategies must agree on:

* :func:`random_queries` — arbitrary safe CQs (acyclic and cyclic mixed),
  optionally with constants and the view predicate;
* :func:`acyclic_queries` — tree-shaped bodies (guaranteed α-acyclic by
  construction: every atom shares exactly one variable with its parent);
* :func:`cyclic_queries` — a chordless variable cycle of length ≥ 3
  (guaranteed cyclic for binary atoms), optionally with extra chords;
* :func:`self_join_queries` — the same predicate several times in one body;
* :func:`parameterized_queries` — a λ-parameterized query plus a valuation;
* :func:`random_instances` / :func:`small_databases` — matching data;
* :func:`drift_sequences` / :func:`apply_drift` — interleaved insert/delete
  sequences against both the database relations (through the
  :class:`~repro.relational.database.Database` update path) and the
  view-like extra relation (mutated directly, bypassing the database), for
  properties about caches that must survive data drift.

:func:`brute_force` is the shared reference semantics: filter the full
cartesian product of the body extensions, no join order, no indexes — the
textbook answer every execution strategy is compared against.
"""

from __future__ import annotations

import itertools

from hypothesis import strategies as st

from repro.query.ast import Atom, ConjunctiveQuery, Constant, Variable
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "RS_SCHEMA",
    "VIEW_SCHEMA",
    "VARIABLES",
    "values",
    "rows",
    "random_queries",
    "acyclic_queries",
    "cyclic_queries",
    "self_join_queries",
    "parameterized_queries",
    "small_databases",
    "random_instances",
    "drift_sequences",
    "apply_drift",
    "brute_force",
]

RS_SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", [Attribute("a", int), Attribute("b", int)]),
        RelationSchema("S", [Attribute("a", int), Attribute("b", int)]),
    ]
)

VIEW_SCHEMA = RelationSchema("V", [Attribute("a", int), Attribute("b", int)])

VARIABLES = ["X", "Y", "Z", "W"]

#: Base predicates plus the view-backed extra relation.
ALL_PREDICATES = ("R", "S", "V")


def values() -> st.SearchStrategy[int]:
    """Column values: a small domain, so random joins are non-trivial."""
    return st.integers(0, 3)


def rows(max_size: int = 8) -> st.SearchStrategy[list[tuple[int, int]]]:
    """Row lists for one binary relation."""
    return st.lists(st.tuples(values(), values()), min_size=0, max_size=max_size)


def _head_from_body(draw, body: list[Atom], name: str) -> ConjunctiveQuery:
    """A safe head over a non-empty prefix of the body's variables."""
    body_vars = sorted({v.name for atom in body for v in atom.variables()})
    if not body_vars:
        body.append(Atom("R", (Variable("X"), Variable("Y"))))
        body_vars = ["X", "Y"]
    head_size = draw(st.integers(min_value=1, max_value=len(body_vars)))
    head_vars = tuple(Variable(v) for v in body_vars[:head_size])
    return ConjunctiveQuery(Atom(name, head_vars), body)


@st.composite
def random_queries(
    draw,
    predicates: tuple[str, ...] = ALL_PREDICATES,
    max_atoms: int = 3,
    allow_constants: bool = True,
    name: str = "Q",
):
    """Safe conjunctive queries (cyclic shapes included) over *predicates*."""
    atom_count = draw(st.integers(min_value=1, max_value=max_atoms))
    body = []
    for _ in range(atom_count):
        predicate = draw(st.sampled_from(predicates))
        terms = []
        for _position in range(2):
            if not allow_constants or draw(st.booleans()):
                terms.append(Variable(draw(st.sampled_from(VARIABLES))))
            else:
                terms.append(Constant(draw(values())))
        body.append(Atom(predicate, tuple(terms)))
    return _head_from_body(draw, body, name)


@st.composite
def acyclic_queries(
    draw,
    predicates: tuple[str, ...] = ALL_PREDICATES,
    max_atoms: int = 4,
    allow_constants: bool = True,
    name: str = "Q",
):
    """Tree-shaped (hence α-acyclic) conjunctive queries.

    Atom *k* shares exactly one variable with a previously generated atom and
    introduces one fresh variable (or a constant), so the body hypergraph is
    a tree by construction — including self-joins when the predicate repeats.
    """
    atom_count = draw(st.integers(min_value=1, max_value=max_atoms))
    body: list[Atom] = []
    fresh = (Variable(f"A{i}") for i in itertools.count())
    first_new = next(fresh)
    first_terms: list = [first_new]
    if allow_constants and draw(st.booleans()):
        first_terms.append(Constant(draw(values())))
    else:
        first_terms.append(next(fresh))
    if draw(st.booleans()):
        first_terms.reverse()
    body.append(Atom(draw(st.sampled_from(predicates)), tuple(first_terms)))
    for _ in range(atom_count - 1):
        parent = body[draw(st.integers(0, len(body) - 1))]
        parent_vars = sorted({v.name for v in parent.variables()})
        if parent_vars:
            link: object = Variable(draw(st.sampled_from(parent_vars)))
        else:  # all-constant parent: start a fresh component
            link = next(fresh)
        if allow_constants and draw(st.booleans()):
            other: object = Constant(draw(values()))
        else:
            other = next(fresh)
        terms = [link, other]
        if draw(st.booleans()):
            terms.reverse()
        body.append(Atom(draw(st.sampled_from(predicates)), tuple(terms)))
    return _head_from_body(draw, body, name)


@st.composite
def cyclic_queries(
    draw,
    predicates: tuple[str, ...] = ALL_PREDICATES,
    max_cycle: int = 4,
    name: str = "Q",
):
    """Cyclic conjunctive queries: a variable cycle of length ≥ 3.

    For binary atoms, α-acyclicity coincides with the join graph being a
    forest, so a chordless cycle — with or without extra chord atoms — is
    guaranteed cyclic.
    """
    length = draw(st.integers(min_value=3, max_value=max_cycle))
    cycle_vars = [Variable(f"C{i}") for i in range(length)]
    body = [
        Atom(
            draw(st.sampled_from(predicates)),
            (cycle_vars[i], cycle_vars[(i + 1) % length]),
        )
        for i in range(length)
    ]
    for _ in range(draw(st.integers(0, 2))):  # optional chords
        left = draw(st.sampled_from(cycle_vars))
        right = draw(st.sampled_from(cycle_vars))
        body.append(Atom(draw(st.sampled_from(predicates)), (left, right)))
    return _head_from_body(draw, body, name)


@st.composite
def self_join_queries(
    draw, predicate: str = "R", max_atoms: int = 3, name: str = "Q"
):
    """Bodies that repeat one predicate (the self-join regression shape)."""
    atom_count = draw(st.integers(min_value=2, max_value=max_atoms))
    body = []
    for _ in range(atom_count):
        terms = []
        for _position in range(2):
            if draw(st.booleans()):
                terms.append(Variable(draw(st.sampled_from(VARIABLES))))
            else:
                terms.append(Constant(draw(values())))
        body.append(Atom(predicate, tuple(terms)))
    return _head_from_body(draw, body, name)


@st.composite
def parameterized_queries(draw, name: str = "Q"):
    """A λ-parameterized query together with a full parameter valuation."""
    query = draw(
        st.one_of(
            random_queries(name=name),
            acyclic_queries(name=name),
            cyclic_queries(name=name),
        )
    )
    head_vars = [t for t in query.head_terms if isinstance(t, Variable)]
    parameters = tuple(
        dict.fromkeys(draw(st.lists(st.sampled_from(head_vars), min_size=1, max_size=2)))
    )
    parameterized = ConjunctiveQuery(
        query.head, query.body, query.equalities, parameters
    )
    valuation = {param.name: draw(values()) for param in parameters}
    return parameterized, valuation


@st.composite
def small_databases(draw, max_rows: int = 8):
    """Small instances of the R/S schema (no view)."""
    database = Database(RS_SCHEMA)
    for relation in ("R", "S"):
        database.insert_many(relation, draw(rows(max_rows)))
    return database


@st.composite
def random_instances(draw, max_rows: int = 8):
    """A small R/S database plus a view-like extra relation V."""
    database = draw(small_databases(max_rows))
    view = Relation(VIEW_SCHEMA, draw(rows(max_rows)))
    return database, {"V": view}


@st.composite
def drift_sequences(
    draw,
    relations: tuple[str, ...] = ("R", "S", "V"),
    max_ops: int = 5,
):
    """Interleaved insert/delete operations against the R/S/V world.

    Each op is ``(kind, relation, row)`` with ``kind`` in
    ``{"insert", "delete"}``; deletes of absent rows are legal no-ops, so
    sequences compose freely.  Apply with :func:`apply_drift`.
    """
    return [
        (
            draw(st.sampled_from(["insert", "delete"])),
            draw(st.sampled_from(relations)),
            (draw(values()), draw(values())),
        )
        for _ in range(draw(st.integers(min_value=1, max_value=max_ops)))
    ]


def apply_drift(database, extra, ops) -> None:
    """Apply a :func:`drift_sequences` op list to one instance.

    Database relations mutate through the :class:`Database` update path
    (bumping its generation); extra relations mutate directly on the
    :class:`Relation` (bumping only its version) — the two invalidation
    channels version-stamped caches must both notice.
    """
    extra = extra or {}
    for kind, name, row in ops:
        if name in extra:
            target = extra[name]
            target.insert(row) if kind == "insert" else target.delete(row)
        elif kind == "insert":
            database.insert(name, row)
        else:
            database.delete(name, row)


def brute_force(query: ConjunctiveQuery, database, extra=None) -> set[tuple]:
    """Reference semantics: filter the cartesian product of the body relations."""
    extra = extra or {}

    def relation_rows(predicate):
        if predicate in extra:
            return list(extra[predicate])
        return list(database.relation(predicate))

    answers = set()
    pools = [relation_rows(atom.predicate) for atom in query.body]
    seed = {eq.variable: eq.constant.value for eq in query.equalities}
    for combination in itertools.product(*pools):
        binding = dict(seed)
        consistent = True
        for atom, row in zip(query.body, combination):
            for term, value in zip(atom.terms, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                elif term in binding:
                    if binding[term] != value:
                        consistent = False
                else:
                    binding[term] = value
            if not consistent:
                break
        if consistent:
            answers.add(
                tuple(
                    term.value if isinstance(term, Constant) else binding[term]
                    for term in query.head_terms
                )
            )
    return answers
