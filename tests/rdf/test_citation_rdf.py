"""Tests for class-conditional citation views over RDF data."""

import pytest

from repro.errors import CitationError
from repro.rdf.bgp import BGPQuery, TriplePattern
from repro.rdf.citation_rdf import ClassCitationView, RDFCitationEngine
from repro.rdf.ontology import Ontology
from repro.rdf.triples import RDF_TYPE, TripleStore
from repro.workloads import eagle_i


@pytest.fixture
def setup():
    store = TripleStore(
        [
            ("r1", RDF_TYPE, "CellLine"),
            ("r1", "rdfs:label", "HeLa"),
            ("r1", "createdBy", "Smith Lab"),
            ("r2", RDF_TYPE, "Reagent"),
            ("r2", "rdfs:label", "Buffer X"),
            ("r3", RDF_TYPE, "Dataset"),
            ("r3", "rdfs:label", "Orphan dataset"),
        ]
    )
    ontology = Ontology()
    ontology.add_subclass("CellLine", "Reagent")
    ontology.add_subclass("Reagent", "Resource")
    ontology.add_subclass("Dataset", "Thing")
    views = [
        ClassCitationView("Resource", constants={"source": "eagle-i"}, priority=0),
        ClassCitationView(
            "CellLine",
            property_map={"createdBy": "authors"},
            constants={"source": "eagle-i cell lines"},
            priority=2,
        ),
    ]
    return store, ontology, views


class TestClassResolution:
    def test_most_specific_class_wins(self, setup):
        store, ontology, views = setup
        engine = RDFCitationEngine(store, ontology, views)
        assert engine.view_for_resource("r1").target_class == "CellLine"

    def test_superclass_view_used_as_fallback(self, setup):
        store, ontology, views = setup
        engine = RDFCitationEngine(store, ontology, views)
        assert engine.view_for_resource("r2").target_class == "Resource"

    def test_resource_without_citable_class(self, setup):
        store, ontology, views = setup
        engine = RDFCitationEngine(store, ontology, views)
        assert engine.view_for_resource("r3") is None
        with pytest.raises(CitationError):
            engine.cite_resource("r3")

    def test_duplicate_class_views_rejected(self, setup):
        store, ontology, views = setup
        with pytest.raises(CitationError):
            RDFCitationEngine(store, ontology, views + [views[0]])

    def test_priority_breaks_ties(self):
        store = TripleStore([("r", RDF_TYPE, "A"), ("r", RDF_TYPE, "B")])
        ontology = Ontology()
        ontology.add_subclass("A", "Top")
        ontology.add_subclass("B", "Top")
        views = [
            ClassCitationView("A", priority=1),
            ClassCitationView("B", priority=5),
        ]
        engine = RDFCitationEngine(store, ontology, views)
        assert engine.view_for_resource("r").target_class == "B"


class TestCitationContent:
    def test_property_map_and_label(self, setup):
        store, ontology, views = setup
        engine = RDFCitationEngine(store, ontology, views)
        record = engine.cite_resource("r1")
        assert record["authors"] == "Smith Lab"
        assert record["title"] == "HeLa"
        assert record["identifier"] == "r1"
        assert record["resource_class"] == "CellLine"

    def test_cite_resources_aggregates(self, setup):
        store, ontology, views = setup
        engine = RDFCitationEngine(store, ontology, views)
        citation = engine.cite_resources(["r1", "r2", "r3"])
        assert citation.record_count() == 2  # r3 is silently skipped

    def test_cite_query_attaches_citation_to_answers(self, setup):
        store, ontology, views = setup
        engine = RDFCitationEngine(store, ontology, views)
        query = BGPQuery(("r",), (TriplePattern("?r", RDF_TYPE, "CellLine"),))
        solutions, citation = engine.cite_query(query)
        assert {s["r"] for s in solutions} == {"r1"}
        assert citation.record_count() == 1
        assert "SELECT ?r" in citation.query_text


class TestEagleIWorkload:
    def test_every_resource_is_citable(self):
        store, ontology, leaves = eagle_i.generate(resources=40, seed=5)
        engine = RDFCitationEngine(store, ontology, eagle_i.class_citation_views(leaves))
        for index in range(1, 41):
            record = engine.cite_resource(f"ei:resource/{index}")
            assert "identifier" in record
            assert "source" in record

    def test_class_specific_views_take_precedence(self):
        store, ontology, leaves = eagle_i.generate(resources=40, seed=5)
        engine = RDFCitationEngine(store, ontology, eagle_i.class_citation_views(leaves))
        cell_lines = ontology.instances_of(store, "ei:CellLine")
        assert cell_lines
        for resource in cell_lines:
            record = engine.cite_resource(resource)
            assert record["resource_class"] == "ei:CellLine"

    def test_ontology_depth_scaling_preserves_citability(self):
        store, ontology, leaves = eagle_i.generate(resources=20, extra_depth=3, seed=5)
        engine = RDFCitationEngine(store, ontology, eagle_i.class_citation_views(leaves))
        record = engine.cite_resource("ei:resource/1")
        assert record["source"].startswith("eagle-i")
