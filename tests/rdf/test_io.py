"""Tests for the triple-store line format."""

import pytest

from repro.errors import ParseError
from repro.rdf.io import (
    dumps_triples,
    loads_triples,
    merge_stores,
    read_triples,
    write_triples,
)
from repro.rdf.triples import TripleStore
from repro.workloads import eagle_i


class TestRoundTrip:
    def test_simple_round_trip(self):
        store = TripleStore(
            [
                ("ei:r1", "rdf:type", "ei:CellLine"),
                ("ei:r1", "rdfs:label", "HeLa cell line"),
                ("ei:r1", "ex:passages", 42),
                ("ei:r1", "ex:verified", True),
                ("ei:r1", "ex:score", 0.75),
            ]
        )
        reloaded = loads_triples(dumps_triples(store))
        assert {tuple(t) for t in reloaded} == {tuple(t) for t in store}

    def test_file_round_trip(self, tmp_path):
        store, _ontology, _leaves = eagle_i.generate(resources=15, seed=3)
        path = tmp_path / "eagle.nt"
        write_triples(store, path)
        reloaded = read_triples(path)
        assert len(reloaded) == len(store)
        assert {tuple(t) for t in reloaded} == {tuple(t) for t in store}

    def test_literal_with_spaces_and_quotes(self):
        store = TripleStore([("s:1", "p:label", 'He said "hi" there')])
        reloaded = loads_triples(dumps_triples(store))
        assert ("s:1", "p:label", 'He said "hi" there') in reloaded

    def test_empty_store(self):
        assert dumps_triples(TripleStore()) == ""
        assert len(loads_triples("")) == 0

    def test_deterministic_output(self):
        store = TripleStore([("s:b", "p:x", 1), ("s:a", "p:x", 2)])
        assert dumps_triples(store) == dumps_triples(TripleStore(list(store)))


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\ns:1 p:x \"value\" .\n"
        assert len(loads_triples(text)) == 1

    def test_trailing_dot_optional(self):
        assert len(loads_triples('s:1 p:x "v"')) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ParseError):
            loads_triples("only two tokens")

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            loads_triples('"literal" p:x "v" .')

    def test_numeric_and_boolean_objects(self):
        store = loads_triples("s:1 p:n 42 .\ns:1 p:f 2.5 .\ns:1 p:b true .")
        objects = {t.object for t in store}
        assert objects == {42, 2.5, True}


class TestMerge:
    def test_merge_stores(self):
        a = TripleStore([("s:1", "p:x", 1)])
        b = TripleStore([("s:2", "p:x", 2), ("s:1", "p:x", 1)])
        merged = merge_stores([a, b])
        assert len(merged) == 2
