"""Tests for the triple store."""

from repro.rdf.triples import RDF_TYPE, Triple, TripleStore


def make_store():
    return TripleStore(
        [
            ("ei:r1", RDF_TYPE, "ei:CellLine"),
            ("ei:r1", "rdfs:label", "HeLa"),
            ("ei:r1", "dc:contributor", "A. Smith"),
            ("ei:r1", "dc:contributor", "B. Chen"),
            ("ei:r2", RDF_TYPE, "ei:Software"),
            ("ei:r2", "rdfs:label", "AlignTool"),
        ]
    )


class TestMutation:
    def test_add_and_len(self):
        store = make_store()
        assert len(store) == 6
        assert store.add(("ei:r3", RDF_TYPE, "ei:Protocol"))
        assert len(store) == 7

    def test_duplicate_add_is_noop(self):
        store = make_store()
        assert not store.add(("ei:r1", RDF_TYPE, "ei:CellLine"))

    def test_remove(self):
        store = make_store()
        assert store.remove(("ei:r1", "rdfs:label", "HeLa"))
        assert not store.remove(("ei:r1", "rdfs:label", "HeLa"))
        assert len(store) == 5

    def test_contains_accepts_tuples_and_triples(self):
        store = make_store()
        assert ("ei:r1", RDF_TYPE, "ei:CellLine") in store
        assert Triple("ei:r1", RDF_TYPE, "ei:CellLine") in store
        assert ("ei:r9", RDF_TYPE, "x") not in store


class TestMatching:
    def test_match_by_subject(self):
        store = make_store()
        assert len(list(store.match(subject="ei:r1"))) == 4

    def test_match_by_predicate_and_object(self):
        store = make_store()
        matches = list(store.match(predicate=RDF_TYPE, obj="ei:CellLine"))
        assert len(matches) == 1
        assert matches[0].subject == "ei:r1"

    def test_match_wildcard(self):
        store = make_store()
        assert len(list(store.match())) == 6

    def test_subjects_and_objects(self):
        store = make_store()
        assert store.subjects(RDF_TYPE) == {"ei:r1", "ei:r2"}
        assert store.objects("ei:r1", "dc:contributor") == {"A. Smith", "B. Chen"}

    def test_properties_of(self):
        store = make_store()
        properties = store.properties_of("ei:r1")
        assert properties["dc:contributor"] == ["A. Smith", "B. Chen"]
        assert properties["rdfs:label"] == ["HeLa"]

    def test_types_of(self):
        store = make_store()
        assert store.types_of("ei:r1") == {"ei:CellLine"}
        assert store.types_of("ei:unknown") == set()
