"""Tests for RDFS-style ontology reasoning."""

import pytest

from repro.errors import OntologyError
from repro.rdf.ontology import Ontology
from repro.rdf.triples import RDF_TYPE, RDFS_SUBCLASS_OF, TripleStore


@pytest.fixture
def ontology():
    onto = Ontology()
    onto.add_subclass("CellLine", "Reagent")
    onto.add_subclass("Antibody", "Reagent")
    onto.add_subclass("Reagent", "Resource")
    onto.add_subclass("Software", "Resource")
    return onto


class TestHierarchy:
    def test_transitive_superclasses(self, ontology):
        assert ontology.superclasses("CellLine") == {"Reagent", "Resource"}
        assert ontology.superclasses("CellLine", reflexive=True) == {
            "CellLine",
            "Reagent",
            "Resource",
        }

    def test_subclasses(self, ontology):
        assert ontology.subclasses("Resource") == {"CellLine", "Antibody", "Reagent", "Software"}
        assert ontology.subclasses("Reagent", reflexive=True) == {
            "CellLine",
            "Antibody",
            "Reagent",
        }

    def test_is_subclass_of_is_reflexive_and_transitive(self, ontology):
        assert ontology.is_subclass_of("CellLine", "CellLine")
        assert ontology.is_subclass_of("CellLine", "Resource")
        assert not ontology.is_subclass_of("Resource", "CellLine")
        assert not ontology.is_subclass_of("Software", "Reagent")

    def test_depth(self, ontology):
        assert ontology.depth("Resource") == 0
        assert ontology.depth("Reagent") == 1
        assert ontology.depth("CellLine") == 2

    def test_classes_enumeration(self, ontology):
        assert "Resource" in ontology.classes()
        assert "CellLine" in ontology.classes()

    def test_cycle_detection(self):
        onto = Ontology()
        onto.add_subclass("A", "B")
        onto.add_subclass("B", "C")
        onto.add_subclass("C", "A")
        with pytest.raises(OntologyError):
            onto.superclasses("A")

    def test_self_subclass_is_ignored(self):
        onto = Ontology()
        onto.add_subclass("A", "A")
        assert onto.superclasses("A") == set()

    def test_subproperties(self):
        onto = Ontology()
        onto.add_subproperty("hasCurator", "hasContributor")
        onto.add_subproperty("hasContributor", "hasAgent")
        assert onto.superproperties("hasCurator") == {"hasContributor", "hasAgent"}
        assert onto.superproperties("hasCurator", reflexive=True) >= {"hasCurator"}


class TestClassification:
    def _store(self):
        return TripleStore(
            [
                ("r1", RDF_TYPE, "CellLine"),
                ("r2", RDF_TYPE, "Software"),
                ("r3", RDF_TYPE, "Reagent"),
            ]
        )

    def test_types_of_includes_superclasses(self, ontology):
        store = self._store()
        assert ontology.types_of(store, "r1") == {"CellLine", "Reagent", "Resource"}
        assert ontology.types_of(store, "r2") == {"Software", "Resource"}

    def test_most_specific(self, ontology):
        assert ontology.most_specific({"CellLine", "Reagent", "Resource"}) == ["CellLine"]
        assert set(ontology.most_specific({"Reagent", "Software"})) == {"Reagent", "Software"}

    def test_instances_of_uses_subclass_closure(self, ontology):
        store = self._store()
        assert ontology.instances_of(store, "Resource") == {"r1", "r2", "r3"}
        assert ontology.instances_of(store, "Reagent") == {"r1", "r3"}
        assert ontology.instances_of(store, "CellLine") == {"r1"}

    def test_from_store_reads_schema_triples(self):
        store = TripleStore(
            [
                ("CellLine", RDFS_SUBCLASS_OF, "Reagent"),
                ("Reagent", RDFS_SUBCLASS_OF, "Resource"),
                ("r1", RDF_TYPE, "CellLine"),
            ]
        )
        onto = Ontology.from_store(store)
        assert onto.is_subclass_of("CellLine", "Resource")
