"""Tests for basic-graph-pattern queries and the relational bridge."""

import pytest

from repro.query.evaluator import evaluate
from repro.rdf.bgp import (
    BGPQuery,
    TriplePattern,
    bgp_to_conjunctive_query,
    evaluate_bgp,
    store_to_database,
)
from repro.rdf.triples import RDF_TYPE, TripleStore


@pytest.fixture
def store():
    return TripleStore(
        [
            ("r1", RDF_TYPE, "CellLine"),
            ("r1", "label", "HeLa"),
            ("r1", "createdBy", "Smith Lab"),
            ("r2", RDF_TYPE, "CellLine"),
            ("r2", "label", "HEK293"),
            ("r3", RDF_TYPE, "Software"),
            ("r3", "label", "AlignTool"),
        ]
    )


class TestDirectEvaluation:
    def test_single_pattern(self, store):
        query = BGPQuery(("r",), (TriplePattern("?r", RDF_TYPE, "CellLine"),))
        solutions = evaluate_bgp(query, store)
        assert {s["r"] for s in solutions} == {"r1", "r2"}

    def test_join_across_patterns(self, store):
        query = BGPQuery(
            ("r", "name"),
            (
                TriplePattern("?r", RDF_TYPE, "CellLine"),
                TriplePattern("?r", "label", "?name"),
            ),
        )
        solutions = evaluate_bgp(query, store)
        assert {(s["r"], s["name"]) for s in solutions} == {("r1", "HeLa"), ("r2", "HEK293")}

    def test_constant_subject(self, store):
        query = BGPQuery(("p", "o"), (TriplePattern("r1", "?p", "?o"),))
        assert len(evaluate_bgp(query, store)) == 3

    def test_no_solutions(self, store):
        query = BGPQuery(("r",), (TriplePattern("?r", RDF_TYPE, "Organism"),))
        assert evaluate_bgp(query, store) == []

    def test_projection_variable_must_exist(self):
        with pytest.raises(ValueError):
            BGPQuery(("missing",), (TriplePattern("?r", RDF_TYPE, "CellLine"),))

    def test_shared_variable_in_object_position(self, store):
        store.add(("r4", "derivedFrom", "r1"))
        query = BGPQuery(
            ("a", "b"),
            (
                TriplePattern("?a", "derivedFrom", "?b"),
                TriplePattern("?b", RDF_TYPE, "CellLine"),
            ),
        )
        assert evaluate_bgp(query, store) == [{"a": "r4", "b": "r1"}]


class TestRelationalBridge:
    def test_store_to_database_row_count(self, store):
        database = store_to_database(store)
        assert database.total_rows() == len(store)

    def test_bgp_translation_matches_direct_evaluation(self, store):
        query = BGPQuery(
            ("r", "name"),
            (
                TriplePattern("?r", RDF_TYPE, "CellLine"),
                TriplePattern("?r", "label", "?name"),
            ),
        )
        direct = {(s["r"], s["name"]) for s in evaluate_bgp(query, store)}
        database = store_to_database(store)
        relational = evaluate(bgp_to_conjunctive_query(query), database).rows
        assert relational == direct

    def test_translated_query_shape(self, store):
        query = BGPQuery(("r",), (TriplePattern("?r", RDF_TYPE, "CellLine"),))
        conjunctive = bgp_to_conjunctive_query(query, name="RDFQ")
        assert conjunctive.name == "RDFQ"
        assert conjunctive.body[0].predicate == "Triple"
        assert len(conjunctive.head_terms) == 1

    def test_pattern_variables(self):
        pattern = TriplePattern("?s", RDF_TYPE, "?c")
        assert pattern.variables() == {"s", "c"}
