"""Scenario: a non-expert database owner sets up citations declaratively.

The paper notes that specifying views, citation queries and policies "could
easily be overwhelming for a non-expert".  This example shows the supported
workflow:

1. start from nothing: generate default views for the schema and see what
   coverage they give;
2. write (or export) a JSON specification, validate it against the schema;
3. inspect, with the explanation tool, exactly how a query's citation is put
   together under the final specification.

Run with:  python examples/owner_specification.py
"""

import json

from repro import CitationEngine
from repro.core.explain import explain_citation, explain_coverage
from repro.core.spec import (
    default_views_for_schema,
    dump_specification,
    load_specification,
    validate_views_against_schema,
)
from repro.core.policy import CitationPolicy
from repro.workloads import gtopdb


def main() -> None:
    database = gtopdb.paper_instance()
    workload = [
        gtopdb.paper_query(),
        "Q2(FID, FName, Desc) :- Family(FID, FName, Desc)",
        "Q3(PName) :- Committee(FID, PName)",
    ]

    print("=== step 1: defaults generated from the schema ===")
    defaults = default_views_for_schema(database.schema, database_title=gtopdb.DATABASE_TITLE)
    print("generated views:", ", ".join(view.name for view in defaults))
    engine = CitationEngine(database, defaults, on_no_rewriting="fallback")
    for row in explain_coverage(engine, workload):
        print(f"  {row['query']}: covered={row['covered']} "
              f"(rewritings={row['rewritings']}, records={row['citation_records']})")
    print()

    print("=== step 2: the owner's explicit specification ===")
    specification = dump_specification(gtopdb.citation_views(), CitationPolicy.default())
    print(json.dumps(specification, indent=2)[:600], "...")
    views, policy = load_specification(specification, schema=database.schema)
    problems = validate_views_against_schema(views, database.schema)
    print("validation problems:", problems or "none")
    print()

    print("=== step 3: explaining a citation under the final specification ===")
    engine = CitationEngine(database, views, policy=policy)
    explanation = explain_citation(engine, gtopdb.paper_query())
    print(explanation.to_text())


if __name__ == "__main__":
    main()
