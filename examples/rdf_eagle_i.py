"""Scenario: class-conditional citations for an eagle-i style RDF dataset.

eagle-i catalogues research resources (cell lines, antibodies, software, ...)
as RDF.  Which snippets belong in a citation depends on the *class* of the
resource, and the class must be resolved by reasoning over the ontology
(paper, Section 3, "Other models").  This example builds a synthetic eagle-i
dataset, attaches citation views to ontology classes, and cites individual
resources as well as the answers of a basic-graph-pattern query.  It also
shows the relational bridge: the same BGP translated to a conjunctive query
over a ``Triple`` relation and answered by the relational engine.

Run with:  python examples/rdf_eagle_i.py
"""

from repro.query.evaluator import evaluate
from repro.rdf import BGPQuery, RDFCitationEngine, TriplePattern
from repro.rdf.bgp import bgp_to_conjunctive_query, store_to_database
from repro.rdf.triples import RDF_TYPE
from repro.workloads import eagle_i


def main() -> None:
    store, ontology, leaves = eagle_i.generate(resources=60, seed=41)
    engine = RDFCitationEngine(store, ontology, eagle_i.class_citation_views(leaves))

    print("Triples:", len(store))
    print("Ontology classes:", len(ontology.classes()))
    print("Leaf classes:", ", ".join(sorted(leaves)))
    print()

    resource = "ei:resource/8"
    print(f"--- citing a single resource: {resource} ---")
    print("asserted types:   ", sorted(store.types_of(resource)))
    print("inferred types:   ", sorted(ontology.types_of(store, resource)))
    view = engine.view_for_resource(resource)
    print("citation view used:", view.target_class)
    print("citation record:   ", dict(engine.cite_resource(resource)))
    print()

    print("--- citing the answers of a basic graph pattern ---")
    query = BGPQuery(
        ("r", "lab"),
        (
            TriplePattern("?r", RDF_TYPE, "ei:CellLine"),
            TriplePattern("?r", eagle_i.PART_OF_LAB, "?lab"),
        ),
    )
    solutions, citation = engine.cite_query(query)
    print("query:", citation.query_text)
    print("answers:", len(solutions))
    print("citation records:", citation.record_count())
    print(citation.to_text(abbreviate_after=3))
    print()

    print("--- the relational bridge ---")
    database = store_to_database(store)
    conjunctive = bgp_to_conjunctive_query(query)
    print("as a conjunctive query:", conjunctive)
    relational_answers = evaluate(conjunctive, database)
    print("relational engine answers:", len(relational_answers))
    assert len(relational_answers) == len(solutions)


if __name__ == "__main__":
    main()
