"""Scenario: fixity and citation evolution for an evolving curated database.

The database is versioned.  A reader mints a persistent citation for a query
result; the database then evolves (new families are added, an introduction is
rewritten).  Later the citation is resolved again: the reader gets back the
data exactly as cited, verified against the recorded content hash, while a
fresh citation reflects the new release.  A second part keeps the citations
of a standing query up to date incrementally as updates stream in.

Run with:  python examples/fixity_and_evolution.py
"""

from repro import CitationEngine, CitationPolicy, IncrementalCitationMaintainer
from repro.versioning import CitationResolver, VersionedDatabase
from repro.workloads import gtopdb

QUERY = "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"


def fixity_walkthrough() -> None:
    print("=== Fixity: persistent, resolvable citations ===\n")
    versioned = VersionedDatabase(gtopdb.schema(), snapshot_interval=5)
    source = gtopdb.paper_instance()
    for relation in source.relations():
        versioned.insert_many(relation.schema.name, relation.rows)
    release_1 = versioned.commit("release 1")
    print("committed", release_1)

    resolver = CitationResolver(versioned, gtopdb.citation_views())
    persistent = resolver.cite_current(QUERY)
    print("\nPersistent citation minted at release 1:")
    print(persistent.to_json())

    # The database evolves.
    versioned.insert("Family", (20, "Orexin", "O1"))
    versioned.insert("FamilyIntro", (20, "orexin receptors intro"))
    versioned.delete("FamilyIntro", (11, "1st"))
    versioned.insert("FamilyIntro", (11, "1st (revised)"))
    release_2 = versioned.commit("release 2")
    print("\ncommitted", release_2)
    print("current data drifted from the cited version:", resolver.has_drifted(persistent))

    resolved = resolver.resolve(persistent)
    print("\nResolving the old citation returns the data as cited:")
    print("  answers:", sorted(resolved.result.rows))

    fresh = resolver.cite_current(QUERY)
    print("\nA fresh citation against release 2 sees the new family:")
    print("  answers:", sorted(resolver.resolve(fresh).result.rows))
    print()


def evolution_walkthrough() -> None:
    print("=== Citation evolution: incremental maintenance ===\n")
    database = gtopdb.generate(families=60, seed=30)
    engine = CitationEngine(
        database, gtopdb.citation_views(), policy=CitationPolicy.union_everywhere()
    )
    maintainer = IncrementalCitationMaintainer(engine, QUERY)
    print("initial answers:", len(maintainer.result))
    print("initial citation size:", maintainer.citation().size())

    updates = [
        ("Ligand", (9001, "Novel ligand", "peptide")),          # irrelevant to the query
        ("Family", (901, "Chemerin", "chemerin receptors")),     # new family ...
        ("FamilyIntro", (901, "chemerin intro")),                # ... now answers the query
        ("Committee", (901, "New Curator")),                     # snippet-only update
    ]
    for relation, row in updates:
        maintainer.insert(relation, row)
        print(f"after insert into {relation!r}: answers={len(maintainer.result)}, "
              f"recomputed rows so far={maintainer.statistics.rows_recomputed}")

    maintainer.check_consistency()
    print("\nmaintenance statistics:", maintainer.statistics)
    print("consistency against recomputation from scratch: OK")


if __name__ == "__main__":
    fixity_walkthrough()
    evolution_walkthrough()
