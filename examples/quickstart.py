"""Quickstart: the paper's running example, end to end.

Builds the GtoPdb micro-instance from Section 2 of the paper, declares the
citation views V1 (per-family, parameterized by FID), V2 and V3 (whole-table),
asks the paper's query

    Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)

and prints the per-tuple citation expressions, the policy-evaluated citation
and several output formats.

Run with:  python examples/quickstart.py
"""

from repro import CitationEngine, CitationPolicy, parse_query
from repro.workloads import gtopdb


def main() -> None:
    database = gtopdb.paper_instance()
    views = gtopdb.citation_views()
    engine = CitationEngine(database, views, policy=CitationPolicy.default())

    query = parse_query(
        "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
    )
    print("Database:", database)
    print("Citation views:", ", ".join(cv.name for cv in views))
    print("Query:", query)
    print()

    print("Equivalent rewritings over the citation views:")
    for rewriting in engine.rewritings(query):
        print("  ", rewriting.query)
    print()

    result = engine.cite(query)
    print("Answers and their citation expressions (Definitions 2.1 / 2.2):")
    for tuple_citation in result.tuple_citations:
        print(f"  {tuple_citation.row}:  {tuple_citation.expression}")
    print()

    print("Aggregate citation under the paper's default policy")
    print("(union for ·, + and Agg; minimum estimated size for +R):")
    print()
    print(result.citation.to_text())
    print()

    print("The same citation as BibTeX:")
    print(result.citation.to_bibtex())
    print()
    print("... as RIS:")
    print(result.citation.to_ris())
    print()
    print("... and as JSON:")
    print(result.citation.to_json())

    print()
    print("With union everywhere (keep every alternative), the committees of")
    print("both Calcitonin families and the Adenosine family are credited:")
    union_engine = CitationEngine(
        database, views, policy=CitationPolicy.union_everywhere()
    )
    print(union_engine.cite(query).citation.to_text(abbreviate_after=3))


if __name__ == "__main__":
    main()
