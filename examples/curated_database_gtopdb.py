"""Scenario: citing ad-hoc queries over a curated pharmacology database.

A researcher works against a synthetic GtoPdb-like database (families,
targets, ligands, interactions, curators).  The database owner has specified
six citation views (per-family, per-target, and whole-table views).  The
researcher issues ad-hoc SQL, and every result comes back with a citation —
including queries that correspond to no web page of the database, which is
exactly the gap the paper identifies.

Run with:  python examples/curated_database_gtopdb.py
"""

from repro import CitationEngine, CitationPolicy, parse_sql
from repro.baselines.manual_citation import ManualCitationBaseline
from repro.core.size import abbreviate_citation, reference_citation
from repro.workloads import gtopdb


def main() -> None:
    database = gtopdb.generate(families=120, targets_per_family=3, ligands=150, seed=20)
    views = gtopdb.citation_views(extended=True)
    schema = gtopdb.schema()
    engine = CitationEngine(
        database, views, policy=CitationPolicy.default(), on_no_rewriting="fallback"
    )

    print("Synthetic GtoPdb instance:", database)
    print("Citation views:", ", ".join(cv.name for cv in views))
    print()

    queries = {
        "families with an introduction": (
            "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID"
        ),
        "targets of the Calcitonin-like families": (
            "SELECT t.TName, f.FName FROM Target t, Family f WHERE t.FID = f.FID"
        ),
        "ligand interactions per target": (
            "SELECT t.TName, l.LName FROM Target t, Interaction i, Ligand l "
            "WHERE t.TID = i.TID AND i.LID = l.LID"
        ),
    }

    for label, sql in queries.items():
        query = parse_sql(sql, schema)
        result = engine.cite(query, mode="economical")
        print(f"--- {label} ---")
        print("SQL:", sql)
        print(f"answers: {len(result)} tuples")
        citation = result.citation
        lines = citation.to_text(abbreviate_after=3).splitlines()
        print(f"citation: {citation.record_count()} records, size {citation.size()}")
        for line in lines[:5]:
            print("  " + line)
        if len(lines) > 5:
            print(f"  ... ({len(lines) - 5} more lines)")
        print()

    # A fine-grained citation: per-family credit via the parameterized view V1.
    union_engine = CitationEngine(
        database, views, policy=CitationPolicy.union_everywhere()
    )
    fine = union_engine.cite(
        "Q(FID, FName, Desc) :- Family(FID, FName, Desc)", mode="formal"
    )
    one_family = fine.tuple_citations[0]
    print("--- fine-grained citation of a single family tuple ---")
    print("tuple:", one_family.row)
    print("expression:", one_family.expression)
    print(one_family.citation().to_text(abbreviate_after=3))
    print()

    # Large citations can be abbreviated or replaced by a reference object.
    print("--- handling citation size ---")
    full = union_engine.cite(gtopdb.paper_query()).citation
    print(f"full citation: {full.record_count()} records, size {full.size()}")
    abbreviated = abbreviate_citation(full, max_names=2)
    print(f"abbreviated:   size {abbreviated.size()}")
    reference = reference_citation(full)
    print("by reference: ", reference.to_text())
    print()

    # What the current practice (manual page-view citations) can and cannot do.
    manual = ManualCitationBaseline(
        {"P1(FID, FName, Desc) :- Family(FID, FName, Desc)": {"title": "Family list page"}},
        database_citation={"title": gtopdb.DATABASE_TITLE},
    )
    adhoc = parse_sql(queries["ligand interactions per target"], schema)
    print("--- manual page-view citations (current practice) ---")
    print("covers the family list page:", manual.covers("Q(A,B,C) :- Family(A,B,C)"))
    print("covers the ad-hoc join query:", manual.covers(adhoc))
    print("fallback citation it returns:", manual.cite(adhoc).to_text())


if __name__ == "__main__":
    main()
