"""Scenario: a database owner defines citation views for an expected workload.

The owner of a Reactome-like pathway database expects a particular query
workload.  This example (a) selects the "best" citation views for that
workload greedily, reporting coverage / conciseness / ambiguity, and (b)
compares the resulting view-based citations against the two baselines: the
tuple-level provenance citation and today's manually attached page-view
citations.

Run with:  python examples/view_selection_and_baselines.py
"""

from repro import CitationEngine, CitationPolicy
from repro.baselines.full_provenance import FullProvenanceCitationBaseline, owner_effort_comparison
from repro.baselines.manual_citation import ManualCitationBaseline
from repro.core.view_selection import ViewSelectionProblem, select_views_greedy
from repro.workloads import reactome


def main() -> None:
    database = reactome.generate(pathways=30, reactions_per_pathway=4, seed=50)
    candidates = reactome.citation_views()
    workload = reactome.example_queries()

    print("Synthetic Reactome instance:", database)
    print("Candidate citation views:", ", ".join(cv.name for cv in candidates))
    print("Workload:", len(workload), "queries")
    print()

    print("--- view selection for the expected workload ---")
    problem = ViewSelectionProblem(candidates, workload, database, max_views=3)
    selected = select_views_greedy(problem)
    print("selected views:   ", [view.name for view in selected])
    print("workload coverage:", round(problem.coverage(selected), 3))
    print("estimated cost:   ", round(problem.cost(selected), 1))
    print("ambiguity:        ", round(problem.ambiguity(selected), 2))
    print()

    print("--- citing the workload with the selected views ---")
    engine = CitationEngine(
        database, selected, policy=CitationPolicy.default(), on_no_rewriting="fallback"
    )
    for query in workload:
        result = engine.cite(query, mode="economical")
        flag = " (fallback)" if result.used_fallback else ""
        print(f"{query.name}: {len(result)} answers, "
              f"citation size {result.citation.size()}{flag}")
    print()

    print("--- comparison against the baselines ---")
    query = workload[0]
    view_based = engine.cite(query, mode="economical").citation

    tuple_level = FullProvenanceCitationBaseline(database)
    _per_tuple, tuple_citation = tuple_level.cite(query)

    manual = ManualCitationBaseline(
        {
            "P(PWID, PWName, Species, Release) :- Pathway(PWID, PWName, Species, Release)":
                {"title": "Reactome pathway browser page"},
        },
        database_citation={"title": reactome.DATABASE_TITLE},
    )

    print(f"query: {query}")
    print(f"view-based citation size:      {view_based.size()}")
    print(f"tuple-level provenance size:   {tuple_citation.size()}")
    print(f"manual baseline covers query:  {manual.covers(query)}")
    print(f"manual fallback citation:      {manual.cite(query).to_text()}")
    print()
    effort = owner_effort_comparison(database, citation_view_count=len(selected))
    print("owner effort (annotations to maintain):")
    print("  tuple-level:", effort["tuple_level_annotations"])
    print("  view-based: ", effort["view_level_specifications"])


if __name__ == "__main__":
    main()
