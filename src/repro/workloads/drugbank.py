"""A synthetic DrugBank-style database.

DrugBank is "a relational database combining chemical, pharmacological and
pharmaceutical data with sequence, structure, and pathway information"
(paper, Section 1); its citation guidance asks users to cite the database
release plus the accession number of the drug card they used.  The synthetic
schema models drugs, their targets, interactions between drugs and the
database release metadata, with citation views at both granularities.
"""

from __future__ import annotations

import random

from repro.core.citation_view import CitationView, DefaultCitationFunction
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, ForeignKey, RelationSchema

DATABASE_TITLE = "DrugBank Online"

_GROUPS = ("approved", "investigational", "experimental", "withdrawn")
_ACTIONS = ("inhibitor", "agonist", "antagonist", "substrate")


def schema() -> DatabaseSchema:
    """The synthetic DrugBank schema."""
    return DatabaseSchema(
        [
            RelationSchema(
                "Drug",
                [
                    Attribute("DrugID", str),
                    Attribute("DName", str),
                    Attribute("Group", str),
                    Attribute("Formula", str),
                ],
                key=["DrugID"],
            ),
            RelationSchema(
                "DrugTarget",
                [
                    Attribute("DrugID", str),
                    Attribute("ProteinID", str),
                    Attribute("Action", str),
                ],
                key=["DrugID", "ProteinID"],
            ),
            RelationSchema(
                "Protein",
                [Attribute("ProteinID", str), Attribute("GeneName", str), Attribute("Organism", str)],
                key=["ProteinID"],
            ),
            RelationSchema(
                "DrugInteraction",
                [
                    Attribute("DrugID", str),
                    Attribute("OtherDrugID", str),
                    Attribute("Severity", str),
                ],
                key=["DrugID", "OtherDrugID"],
            ),
            RelationSchema(
                "ReleaseInfo",
                [Attribute("Release", str), Attribute("Year", int), Attribute("DOI", str)],
                key=["Release"],
            ),
        ],
        foreign_keys=[
            ForeignKey("DrugTarget", ("DrugID",), "Drug", ("DrugID",)),
            ForeignKey("DrugTarget", ("ProteinID",), "Protein", ("ProteinID",)),
            ForeignKey("DrugInteraction", ("DrugID",), "Drug", ("DrugID",)),
            ForeignKey("DrugInteraction", ("OtherDrugID",), "Drug", ("DrugID",)),
        ],
    )


def generate(
    drugs: int = 100,
    proteins: int = 80,
    targets_per_drug: int = 2,
    interactions: int = 150,
    seed: int = 17,
) -> Database:
    """Generate a synthetic DrugBank instance."""
    rng = random.Random(seed)
    database = Database(schema(), enforce_foreign_keys=False)

    database.insert_many(
        "Drug",
        [
            (
                f"DB{index:05d}",
                f"Drug-{index}",
                rng.choice(_GROUPS),
                f"C{rng.randrange(5, 30)}H{rng.randrange(5, 40)}N{rng.randrange(0, 6)}",
            )
            for index in range(1, drugs + 1)
        ],
    )
    database.insert_many(
        "Protein",
        [
            (f"P{index:05d}", f"GENE{index}", rng.choice(["Homo sapiens", "E. coli"]))
            for index in range(1, proteins + 1)
        ],
    )
    drug_targets = {}
    for index in range(1, drugs + 1):
        for _ in range(targets_per_drug):
            protein = f"P{rng.randrange(1, proteins + 1):05d}"
            drug_targets.setdefault(
                (f"DB{index:05d}", protein),
                (f"DB{index:05d}", protein, rng.choice(_ACTIONS)),
            )
    database.insert_many("DrugTarget", sorted(drug_targets.values()))

    pairs = {}
    while len(pairs) < interactions:
        a = rng.randrange(1, drugs + 1)
        b = rng.randrange(1, drugs + 1)
        if a == b:
            continue
        pairs.setdefault(
            (f"DB{a:05d}", f"DB{b:05d}"),
            (f"DB{a:05d}", f"DB{b:05d}", rng.choice(["major", "moderate", "minor"])),
        )
    database.insert_many("DrugInteraction", sorted(pairs.values()))

    database.insert_many(
        "ReleaseInfo", [("5.1.12", 2024, "10.1093/nar/gkx1037")]
    )
    database.enforce_foreign_keys = True
    return database


def citation_views() -> list[CitationView]:
    """Per-drug-card and whole-database citation views."""
    per_drug = CitationView(
        parse_query(
            "lambda DrugID. DV1(DrugID, DName, Group, Formula) :- "
            "Drug(DrugID, DName, Group, Formula)"
        ),
        citation_queries=[
            parse_query(
                "lambda DrugID. DCV1(DrugID, DName) :- Drug(DrugID, DName, Group, Formula)"
            ),
            parse_query("DCV1rel(Release, Year) :- ReleaseInfo(Release, Year, DOI)"),
        ],
        citation_function=DefaultCitationFunction(
            constants={"source": DATABASE_TITLE, "unit": "drug card"},
            field_map={"DName": "title", "Release": "version", "Year": "year"},
        ),
        description="Per-drug-card citation (accession number + release)",
    )
    whole_database = CitationView(
        parse_query("DV2(DrugID, DName, Group, Formula) :- Drug(DrugID, DName, Group, Formula)"),
        citation_queries=[
            parse_query(f'DCV2(D) :- D = "{DATABASE_TITLE}"'),
            parse_query("DCV2rel(Release, Year, DOI) :- ReleaseInfo(Release, Year, DOI)"),
        ],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "DrugBank"},
            field_map={"D": "title", "Release": "version", "Year": "year", "DOI": "identifier"},
        ),
        description="Whole-database citation attached to the Drug table",
    )
    targets = CitationView(
        parse_query("DV3(DrugID, ProteinID, Action) :- DrugTarget(DrugID, ProteinID, Action)"),
        citation_queries=[parse_query(f'DCV3(D) :- D = "{DATABASE_TITLE} targets"')],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "DrugBank"}, field_map={"D": "title"}
        ),
        description="Whole-table citation for drug targets",
    )
    proteins = CitationView(
        parse_query("DV4(ProteinID, GeneName, Organism) :- Protein(ProteinID, GeneName, Organism)"),
        citation_queries=[parse_query(f'DCV4(D) :- D = "{DATABASE_TITLE} proteins"')],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "DrugBank"}, field_map={"D": "title"}
        ),
        description="Whole-table citation for proteins",
    )
    interactions = CitationView(
        parse_query(
            "DV5(DrugID, OtherDrugID, Severity) :- DrugInteraction(DrugID, OtherDrugID, Severity)"
        ),
        citation_queries=[parse_query(f'DCV5(D) :- D = "{DATABASE_TITLE} drug interactions"')],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "DrugBank"}, field_map={"D": "title"}
        ),
        description="Whole-table citation for drug-drug interactions",
    )
    return [per_drug, whole_database, targets, proteins, interactions]


def example_queries():
    """A small workload over the DrugBank schema."""
    return [
        parse_query(
            "Q1(DName, GeneName) :- Drug(DrugID, DName, Group, Formula), "
            "DrugTarget(DrugID, ProteinID, Action), Protein(ProteinID, GeneName, Organism)"
        ),
        parse_query("Q2(DrugID, DName, Group, Formula) :- Drug(DrugID, DName, Group, Formula)"),
        parse_query(
            "Q3(DName, Severity) :- Drug(DrugID, DName, Group, Formula), "
            "DrugInteraction(DrugID, OtherDrugID, Severity)"
        ),
    ]
