"""A synthetic IUPHAR/BPS Guide to Pharmacology (GtoPdb) database.

GtoPdb is the paper's running example.  Two instances are provided:

* :func:`paper_instance` — the exact micro-instance used in Section 2 of the
  paper: two families named ``Calcitonin`` (FIDs 11 and 12) with committee
  members and introduction texts, which makes the worked example
  ``(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)`` reproducible tuple for tuple;
* :func:`generate` — a scalable synthetic instance with families, targets,
  ligands, interactions, committee members and contributors, used by the
  benchmarks.

:func:`citation_views` builds the citation views V1 (parameterized by FID,
credits the family's committee), V2 (unparameterized, whole-database
citation over ``Family``) and V3 (unparameterized, over ``FamilyIntro``),
plus optional views over the additional relations.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.citation_view import CitationView, DefaultCitationFunction
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, ForeignKey, RelationSchema

#: Title used by the unparameterized whole-database citations (as in the paper).
DATABASE_TITLE = "IUPHAR/BPS Guide to PHARMACOLOGY"

_FAMILY_STEMS = (
    "Calcitonin",
    "Adenosine",
    "Adrenoceptor",
    "Angiotensin",
    "Bradykinin",
    "Cannabinoid",
    "Chemokine",
    "Dopamine",
    "Endothelin",
    "Galanin",
    "Ghrelin",
    "Glucagon",
    "Histamine",
    "Melatonin",
    "Neurotensin",
    "Opioid",
    "Orexin",
    "Oxytocin",
    "Serotonin",
    "Somatostatin",
    "Vasopressin",
)

_CURATOR_NAMES = (
    "D. Hoyer",
    "A. Davenport",
    "S. Alexander",
    "E. Faccenda",
    "C. Southan",
    "J. Sharman",
    "A. Pawson",
    "M. Spedding",
    "J. Peters",
    "A. Harmar",
    "H. Dale",
    "K. Katritch",
    "R. Neubig",
    "T. Bonner",
    "P. Molenaar",
    "L. Jensen",
)


def schema() -> DatabaseSchema:
    """The synthetic GtoPdb schema (superset of the paper's three relations)."""
    return DatabaseSchema(
        [
            RelationSchema(
                "Family",
                [Attribute("FID", int), Attribute("FName", str), Attribute("Desc", str)],
                key=["FID"],
            ),
            RelationSchema(
                "Committee",
                [Attribute("FID", int), Attribute("PName", str)],
                key=["FID", "PName"],
            ),
            RelationSchema(
                "FamilyIntro",
                [Attribute("FID", int), Attribute("Text", str)],
                key=["FID"],
            ),
            RelationSchema(
                "Target",
                [
                    Attribute("TID", int),
                    Attribute("FID", int),
                    Attribute("TName", str),
                    Attribute("Type", str),
                ],
                key=["TID"],
            ),
            RelationSchema(
                "Ligand",
                [Attribute("LID", int), Attribute("LName", str), Attribute("Type", str)],
                key=["LID"],
            ),
            RelationSchema(
                "Interaction",
                [
                    Attribute("TID", int),
                    Attribute("LID", int),
                    Attribute("Action", str),
                    Attribute("Affinity", float),
                ],
                key=["TID", "LID"],
            ),
            RelationSchema(
                "Contributor",
                [Attribute("TID", int), Attribute("PName", str)],
                key=["TID", "PName"],
            ),
        ],
        foreign_keys=[
            ForeignKey("Committee", ("FID",), "Family", ("FID",)),
            ForeignKey("FamilyIntro", ("FID",), "Family", ("FID",)),
            ForeignKey("Target", ("FID",), "Family", ("FID",)),
            ForeignKey("Interaction", ("TID",), "Target", ("TID",)),
            ForeignKey("Interaction", ("LID",), "Ligand", ("LID",)),
            ForeignKey("Contributor", ("TID",), "Target", ("TID",)),
        ],
    )


def paper_instance() -> Database:
    """The micro-instance of the paper's Section 2 worked example."""
    database = Database(schema())
    database.insert_many(
        "Family",
        [
            (11, "Calcitonin", "C1"),
            (12, "Calcitonin", "C2"),
            (13, "Adenosine", "A1"),
        ],
    )
    database.insert_many(
        "Committee",
        [
            (11, "D. Hoyer"),
            (11, "A. Davenport"),
            (12, "S. Alexander"),
            (13, "E. Faccenda"),
        ],
    )
    database.insert_many(
        "FamilyIntro",
        [
            (11, "1st"),
            (12, "2nd"),
            (13, "Adenosine receptors intro"),
        ],
    )
    return database


def generate(
    families: int = 100,
    committee_per_family: int = 3,
    intro_fraction: float = 1.0,
    targets_per_family: int = 4,
    ligands: int = 200,
    interactions_per_target: int = 3,
    duplicate_name_fraction: float = 0.1,
    seed: int = 7,
) -> Database:
    """Generate a synthetic GtoPdb instance with realistic shape.

    ``duplicate_name_fraction`` controls how many families share a name with
    another family — the property that makes multiple bindings per output
    tuple (and hence the ``+`` operator) exercised, as in the paper's two
    Calcitonin families.
    """
    rng = random.Random(seed)
    database = Database(schema(), enforce_foreign_keys=False)

    family_rows = []
    for fid in range(1, families + 1):
        stem = _FAMILY_STEMS[(fid - 1) % len(_FAMILY_STEMS)]
        if rng.random() < duplicate_name_fraction and fid > 1:
            name = family_rows[rng.randrange(len(family_rows))][1]
        else:
            name = f"{stem} receptors {1 + (fid - 1) // len(_FAMILY_STEMS)}"
        family_rows.append((fid, name, f"Description of family {fid}"))
    database.insert_many("Family", family_rows)

    committee_rows = set()
    for fid in range(1, families + 1):
        members = rng.sample(_CURATOR_NAMES, k=min(committee_per_family, len(_CURATOR_NAMES)))
        for member in members:
            committee_rows.add((fid, member))
    database.insert_many("Committee", sorted(committee_rows))

    intro_rows = []
    for fid in range(1, families + 1):
        if rng.random() <= intro_fraction:
            intro_rows.append((fid, f"Introductory text for family {fid}"))
    database.insert_many("FamilyIntro", intro_rows)

    ligand_rows = [
        (lid, f"Ligand-{lid}", rng.choice(["peptide", "small molecule", "antibody"]))
        for lid in range(1, ligands + 1)
    ]
    database.insert_many("Ligand", ligand_rows)

    target_rows = []
    contributor_rows = set()
    interaction_rows: dict[tuple[int, int], tuple] = {}
    tid = 0
    for fid in range(1, families + 1):
        for _ in range(targets_per_family):
            tid += 1
            target_rows.append(
                (tid, fid, f"Target-{tid}", rng.choice(["GPCR", "ion channel", "enzyme"]))
            )
            for contributor in rng.sample(_CURATOR_NAMES, k=2):
                contributor_rows.add((tid, contributor))
            for _ in range(interactions_per_target):
                lid = rng.randrange(1, ligands + 1)
                interaction_rows.setdefault(
                    (tid, lid),
                    (tid, lid, rng.choice(["agonist", "antagonist", "inhibitor"]),
                     round(rng.uniform(4.0, 10.0), 2)),
                )
    database.insert_many("Target", target_rows)
    database.insert_many("Contributor", sorted(contributor_rows))
    database.insert_many("Interaction", sorted(interaction_rows.values()))

    database.enforce_foreign_keys = True
    return database


def citation_views(extended: bool = False) -> list[CitationView]:
    """The citation views of the paper's example (plus optional extra views).

    * ``V1`` — λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc), with
      citation query CV1(FID, PName) :- Committee(FID, PName): one citation
      per family, crediting its committee members;
    * ``V2`` — V2(FID, FName, Desc) :- Family(FID, FName, Desc), a single
      whole-table citation;
    * ``V3`` — V3(FID, Text) :- FamilyIntro(FID, Text), a single whole-table
      citation.

    With ``extended=True`` additional views over ``Target``, ``Ligand`` and
    ``Interaction`` are included (a parameterized per-target view crediting
    its contributors and unparameterized whole-table views).
    """
    v1 = CitationView(
        parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)"),
        citation_queries=[
            parse_query("lambda FID. CV1(FID, PName) :- Committee(FID, PName)"),
            parse_query("lambda FID. CV1name(FID, FName) :- Family(FID, FName, Desc)"),
        ],
        citation_function=DefaultCitationFunction(
            constants={"source": DATABASE_TITLE, "unit": "family"},
            field_map={"PName": "contributors", "FName": "title"},
        ),
        description="Per-family citation crediting the committee members",
    )
    v2 = CitationView(
        parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)"),
        citation_queries=[
            parse_query(f'CV2(D) :- D = "{DATABASE_TITLE}"'),
        ],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "IUPHAR/BPS"}, field_map={"D": "title"}
        ),
        description="Whole-database citation attached to the Family table",
    )
    v3 = CitationView(
        parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)"),
        citation_queries=[
            parse_query(f'CV3(D) :- D = "{DATABASE_TITLE}"'),
        ],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "IUPHAR/BPS"}, field_map={"D": "title"}
        ),
        description="Whole-database citation attached to the FamilyIntro table",
    )
    views = [v1, v2, v3]
    if extended:
        v4 = CitationView(
            parse_query(
                "lambda TID. V4(TID, FID, TName, Type) :- Target(TID, FID, TName, Type)"
            ),
            citation_queries=[
                parse_query("lambda TID. CV4(TID, PName) :- Contributor(TID, PName)"),
                parse_query(
                    "lambda TID. CV4name(TID, TName) :- Target(TID, FID, TName, Type)"
                ),
            ],
            citation_function=DefaultCitationFunction(
                constants={"source": DATABASE_TITLE, "unit": "target"},
                field_map={"PName": "contributors", "TName": "title"},
            ),
            description="Per-target citation crediting its contributors",
        )
        v5 = CitationView(
            parse_query("V5(LID, LName, Type) :- Ligand(LID, LName, Type)"),
            citation_queries=[parse_query(f'CV5(D) :- D = "{DATABASE_TITLE} ligands"')],
            citation_function=DefaultCitationFunction(
                constants={"publisher": "IUPHAR/BPS"}, field_map={"D": "title"}
            ),
            description="Whole-table citation for ligands",
        )
        v6 = CitationView(
            parse_query(
                "V6(TID, LID, Action, Affinity) :- Interaction(TID, LID, Action, Affinity)"
            ),
            citation_queries=[
                parse_query(f'CV6(D) :- D = "{DATABASE_TITLE} interactions"')
            ],
            citation_function=DefaultCitationFunction(
                constants={"publisher": "IUPHAR/BPS"}, field_map={"D": "title"}
            ),
            description="Whole-table citation for interactions",
        )
        views.extend([v4, v5, v6])
    return views


def paper_query():
    """The paper's example query: family names that have an introduction."""
    return parse_query(
        "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
    )


def example_queries() -> Sequence:
    """A small workload of realistic GtoPdb queries (used by E8 and tests)."""
    return [
        paper_query(),
        parse_query("Q2(FID, FName, Desc) :- Family(FID, FName, Desc)"),
        parse_query("Q3(FID, Text) :- FamilyIntro(FID, Text)"),
        parse_query(
            "Q4(FName, Text) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        ),
        parse_query(
            "Q5(TName, FName) :- Target(TID, FID, TName, Type), Family(FID, FName, Desc)"
        ),
        parse_query(
            "Q6(TName, LName) :- Target(TID, FID, TName, TType), "
            "Interaction(TID, LID, Action, Affinity), Ligand(LID, LName, LType)"
        ),
    ]
