"""Synthetic curated databases and query workloads.

The paper motivates the citation problem with four production systems:
GtoPdb (IUPHAR/BPS Guide to Pharmacology), eagle-i, Reactome and DrugBank.
Their contents are proprietary or too large to ship, so this package provides
synthetic generators that reproduce the *structural* properties the citation
model depends on: keyed relations, per-unit curator assignments, shared names
(so multiple bindings per output tuple occur), ontology-classified RDF
resources, and so on.  DESIGN.md documents the substitution.
"""

from repro.workloads import drugbank, eagle_i, gtopdb, reactome
from repro.workloads.query_workload import WorkloadGenerator, chain_query, star_query

__all__ = [
    "gtopdb",
    "eagle_i",
    "reactome",
    "drugbank",
    "WorkloadGenerator",
    "chain_query",
    "star_query",
]
