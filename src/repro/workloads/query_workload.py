"""Synthetic query and view workloads for the rewriting benchmarks.

The E3/E4 benchmarks need families of queries and candidate views whose size
can be scaled: chain queries (R1 ⋈ R2 ⋈ ... ⋈ Rn), star queries (a hub joined
with n satellites) and randomly generated conjunctive queries over a
synthetic schema, plus view sets of controllable size (subchains / substars),
mirroring the workloads classically used to evaluate answering-queries-using-
views algorithms (Halevy 2001, which the paper cites).
"""

from __future__ import annotations

import random

from repro.core.citation_view import CitationView, DefaultCitationFunction
from repro.query.ast import Atom, ConjunctiveQuery, Variable
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


# ---------------------------------------------------------------------------
# Schemas and data
# ---------------------------------------------------------------------------
def chain_schema(length: int) -> DatabaseSchema:
    """Binary relations ``R1(A0, A1), ..., Rn(An-1, An)`` forming a chain."""
    return DatabaseSchema(
        [
            RelationSchema(f"R{i}", [Attribute("src", int), Attribute("dst", int)])
            for i in range(1, length + 1)
        ]
    )


def chain_database(length: int, rows_per_relation: int = 100, seed: int = 5) -> Database:
    """Populate a chain schema so that joins have non-trivial results."""
    rng = random.Random(seed)
    database = Database(chain_schema(length))
    domain = max(10, rows_per_relation // 2)
    for i in range(1, length + 1):
        rows = {
            (rng.randrange(domain), rng.randrange(domain))
            for _ in range(rows_per_relation)
        }
        database.insert_many(f"R{i}", rows)
    return database


def chain_query(length: int, name: str = "Q") -> ConjunctiveQuery:
    """``Q(X0, Xn) :- R1(X0, X1), R2(X1, X2), ..., Rn(Xn-1, Xn)``."""
    atoms = [
        Atom(f"R{i}", (Variable(f"X{i - 1}"), Variable(f"X{i}")))
        for i in range(1, length + 1)
    ]
    head = Atom(name, (Variable("X0"), Variable(f"X{length}")))
    return ConjunctiveQuery(head, atoms)


def star_schema(arms: int) -> DatabaseSchema:
    """A hub relation plus ``arms`` satellite relations."""
    relations = [
        RelationSchema("Hub", [Attribute("hub", int), Attribute("tag", str)])
    ]
    relations += [
        RelationSchema(f"S{i}", [Attribute("hub", int), Attribute(f"value{i}", int)])
        for i in range(1, arms + 1)
    ]
    return DatabaseSchema(relations)


def star_database(arms: int, rows_per_relation: int = 100, seed: int = 5) -> Database:
    """Populate a star schema."""
    rng = random.Random(seed)
    database = Database(star_schema(arms))
    hubs = list(range(rows_per_relation))
    database.insert_many("Hub", ((h, f"tag{h % 7}") for h in hubs))
    for i in range(1, arms + 1):
        rows = {
            (rng.choice(hubs), rng.randrange(1000)) for _ in range(rows_per_relation)
        }
        database.insert_many(f"S{i}", rows)
    return database


def star_query(arms: int, name: str = "Q") -> ConjunctiveQuery:
    """``Q(H, V1, ..., Vn) :- Hub(H, T), S1(H, V1), ..., Sn(H, Vn)``."""
    atoms = [Atom("Hub", (Variable("H"), Variable("T")))]
    head_terms = [Variable("H")]
    for i in range(1, arms + 1):
        atoms.append(Atom(f"S{i}", (Variable("H"), Variable(f"V{i}"))))
        head_terms.append(Variable(f"V{i}"))
    return ConjunctiveQuery(Atom(name, tuple(head_terms)), atoms)


# ---------------------------------------------------------------------------
# View sets
# ---------------------------------------------------------------------------
def chain_views(length: int, window: int = 2, parameterized: bool = False) -> list[CitationView]:
    """Sliding-window subchain views ``Vi(Xi, Xi+w) :- Ri+1 ... Ri+w``.

    With ``window=2`` over a chain of length 4 the views are pairs, so the
    query has several distinct equivalent rewritings — the shape that makes
    rewriting enumeration expensive.
    """
    views: list[CitationView] = []
    index = 0
    for start in range(0, length, 1):
        end = start + window
        if end > length:
            break
        index += 1
        atoms = [
            Atom(f"R{i}", (Variable(f"X{i - 1}"), Variable(f"X{i}")))
            for i in range(start + 1, end + 1)
        ]
        head_vars = (Variable(f"X{start}"), Variable(f"X{end}"))
        parameters = (Variable(f"X{start}"),) if parameterized else ()
        query = ConjunctiveQuery(Atom(f"CW{index}", head_vars), atoms, (), parameters)
        views.append(
            CitationView(
                query,
                citation_queries=[],
                citation_function=DefaultCitationFunction(
                    constants={"title": f"Chain window {start}-{end}", "source": "synthetic"}
                ),
                description=f"subchain view over R{start + 1}..R{end}",
            )
        )
    return views


def star_views(arms: int, parameterized_fraction: float = 0.5) -> list[CitationView]:
    """One view per satellite (hub joined with that satellite)."""
    views: list[CitationView] = []
    for i in range(1, arms + 1):
        atoms = [
            Atom("Hub", (Variable("H"), Variable("T"))),
            Atom(f"S{i}", (Variable("H"), Variable(f"V{i}"))),
        ]
        head = Atom(f"SV{i}", (Variable("H"), Variable("T"), Variable(f"V{i}")))
        parameters = (Variable("H"),) if (i / arms) <= parameterized_fraction else ()
        query = ConjunctiveQuery(head, atoms, (), parameters)
        views.append(
            CitationView(
                query,
                citation_queries=[],
                citation_function=DefaultCitationFunction(
                    constants={"title": f"Star arm {i}", "source": "synthetic"}
                ),
                description=f"hub joined with satellite {i}",
            )
        )
    return views


# ---------------------------------------------------------------------------
# Random workloads
# ---------------------------------------------------------------------------
class WorkloadGenerator:
    """Random conjunctive-query workloads over a given schema."""

    def __init__(self, schema: DatabaseSchema, seed: int = 23) -> None:
        self.schema = schema
        self.rng = random.Random(seed)

    def random_query(
        self, atoms: int = 2, name: str = "W", join_probability: float = 0.7
    ) -> ConjunctiveQuery:
        """A random query with the given number of atoms and joins on shared variables."""
        relation_names = list(self.schema.relation_names)
        chosen = [self.rng.choice(relation_names) for _ in range(atoms)]
        variable_pool: list[Variable] = []
        body: list[Atom] = []
        for index, relation_name in enumerate(chosen):
            relation = self.schema.relation(relation_name)
            terms = []
            for position in range(relation.arity):
                if variable_pool and self.rng.random() < join_probability:
                    terms.append(self.rng.choice(variable_pool))
                else:
                    variable = Variable(f"v{index}_{position}")
                    variable_pool.append(variable)
                    terms.append(variable)
            body.append(Atom(relation_name, tuple(terms)))
        head_size = max(1, min(3, len(variable_pool)))
        head_vars = self.rng.sample(variable_pool, k=head_size)
        return ConjunctiveQuery(Atom(name, tuple(head_vars)), body)

    def workload(self, size: int, atoms: int = 2) -> list[ConjunctiveQuery]:
        """A list of random queries named ``W1 ... Wn``."""
        return [
            self.random_query(atoms=atoms, name=f"W{i + 1}") for i in range(size)
        ]
