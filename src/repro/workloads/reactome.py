"""A synthetic Reactome-style pathway database.

Reactome is "an open-source, curated and peer reviewed pathway relational
database" (paper, Section 1) whose citation guidance is per-pathway: cite the
pathway's curators and reviewers along with the release.  The synthetic
schema captures that structure: pathways form a hierarchy, contain reactions,
reactions involve proteins, and each pathway records its curators and
reviewers.
"""

from __future__ import annotations

import random

from repro.core.citation_view import CitationView, DefaultCitationFunction
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, ForeignKey, RelationSchema

DATABASE_TITLE = "Reactome Pathway Knowledgebase"

_PEOPLE = (
    "L. Stein",
    "P. D'Eustachio",
    "H. Hermjakob",
    "G. Wu",
    "M. Gillespie",
    "B. Jassal",
    "S. Jupe",
    "K. Rothfels",
    "V. Shamovsky",
    "T. Varusai",
)


def schema() -> DatabaseSchema:
    """The synthetic Reactome schema."""
    return DatabaseSchema(
        [
            RelationSchema(
                "Pathway",
                [
                    Attribute("PWID", int),
                    Attribute("PWName", str),
                    Attribute("Species", str),
                    Attribute("Release", int),
                ],
                key=["PWID"],
            ),
            RelationSchema(
                "PathwayHierarchy",
                [Attribute("ParentID", int), Attribute("ChildID", int)],
                key=["ParentID", "ChildID"],
            ),
            RelationSchema(
                "Reaction",
                [Attribute("RID", int), Attribute("PWID", int), Attribute("RName", str)],
                key=["RID"],
            ),
            RelationSchema(
                "Participant",
                [Attribute("RID", int), Attribute("ProteinID", str), Attribute("Role", str)],
                key=["RID", "ProteinID", "Role"],
            ),
            RelationSchema(
                "Curator",
                [Attribute("PWID", int), Attribute("PName", str)],
                key=["PWID", "PName"],
            ),
            RelationSchema(
                "Reviewer",
                [Attribute("PWID", int), Attribute("PName", str)],
                key=["PWID", "PName"],
            ),
        ],
        foreign_keys=[
            ForeignKey("PathwayHierarchy", ("ParentID",), "Pathway", ("PWID",)),
            ForeignKey("PathwayHierarchy", ("ChildID",), "Pathway", ("PWID",)),
            ForeignKey("Reaction", ("PWID",), "Pathway", ("PWID",)),
            ForeignKey("Participant", ("RID",), "Reaction", ("RID",)),
            ForeignKey("Curator", ("PWID",), "Pathway", ("PWID",)),
            ForeignKey("Reviewer", ("PWID",), "Pathway", ("PWID",)),
        ],
    )


def generate(
    pathways: int = 50,
    reactions_per_pathway: int = 5,
    participants_per_reaction: int = 4,
    release: int = 84,
    seed: int = 13,
) -> Database:
    """Generate a synthetic Reactome instance."""
    rng = random.Random(seed)
    database = Database(schema(), enforce_foreign_keys=False)

    database.insert_many(
        "Pathway",
        [
            (
                pwid,
                f"Pathway {pwid}",
                rng.choice(["Homo sapiens", "Mus musculus"]),
                release,
            )
            for pwid in range(1, pathways + 1)
        ],
    )
    hierarchy = set()
    for pwid in range(2, pathways + 1):
        parent = rng.randrange(1, pwid)
        hierarchy.add((parent, pwid))
    database.insert_many("PathwayHierarchy", sorted(hierarchy))

    rid = 0
    reaction_rows = []
    participant_rows = set()
    for pwid in range(1, pathways + 1):
        for _ in range(reactions_per_pathway):
            rid += 1
            reaction_rows.append((rid, pwid, f"Reaction {rid}"))
            for _ in range(participants_per_reaction):
                protein = f"UniProt:P{rng.randrange(10000, 99999)}"
                participant_rows.add((rid, protein, rng.choice(["input", "output", "catalyst"])))
    database.insert_many("Reaction", reaction_rows)
    database.insert_many("Participant", sorted(participant_rows))

    curators = set()
    reviewers = set()
    for pwid in range(1, pathways + 1):
        for person in rng.sample(_PEOPLE, k=2):
            curators.add((pwid, person))
        for person in rng.sample(_PEOPLE, k=2):
            reviewers.add((pwid, person))
    database.insert_many("Curator", sorted(curators))
    database.insert_many("Reviewer", sorted(reviewers))

    database.enforce_foreign_keys = True
    return database


def citation_views() -> list[CitationView]:
    """Citation views: per-pathway (curators + reviewers) and whole-database."""
    per_pathway = CitationView(
        parse_query(
            "lambda PWID. PV1(PWID, PWName, Species, Release) :- "
            "Pathway(PWID, PWName, Species, Release)"
        ),
        citation_queries=[
            parse_query("lambda PWID. PCV1(PWID, PName) :- Curator(PWID, PName)"),
            parse_query("lambda PWID. PCV1rev(PWID, PName) :- Reviewer(PWID, PName)"),
            parse_query(
                "lambda PWID. PCV1name(PWID, PWName, Release) :- "
                "Pathway(PWID, PWName, Species, Release)"
            ),
        ],
        citation_function=DefaultCitationFunction(
            constants={"source": DATABASE_TITLE, "unit": "pathway"},
            field_map={"PName": "contributors", "PWName": "title", "Release": "version"},
        ),
        description="Per-pathway citation crediting curators and reviewers",
    )
    whole_pathways = CitationView(
        parse_query(
            "PV2(PWID, PWName, Species, Release) :- Pathway(PWID, PWName, Species, Release)"
        ),
        citation_queries=[parse_query(f'PCV2(D) :- D = "{DATABASE_TITLE}"')],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "Reactome"}, field_map={"D": "title"}
        ),
        description="Whole-database citation attached to the Pathway table",
    )
    reactions = CitationView(
        parse_query("PV3(RID, PWID, RName) :- Reaction(RID, PWID, RName)"),
        citation_queries=[parse_query(f'PCV3(D) :- D = "{DATABASE_TITLE} reactions"')],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "Reactome"}, field_map={"D": "title"}
        ),
        description="Whole-table citation for reactions",
    )
    participants = CitationView(
        parse_query(
            "PV4(RID, ProteinID, Role) :- Participant(RID, ProteinID, Role)"
        ),
        citation_queries=[parse_query(f'PCV4(D) :- D = "{DATABASE_TITLE} participants"')],
        citation_function=DefaultCitationFunction(
            constants={"publisher": "Reactome"}, field_map={"D": "title"}
        ),
        description="Whole-table citation for reaction participants",
    )
    return [per_pathway, whole_pathways, reactions, participants]


def example_queries():
    """A small workload over the Reactome schema."""
    return [
        parse_query(
            "Q1(PWName, RName) :- Pathway(PWID, PWName, Species, Release), "
            "Reaction(RID, PWID, RName)"
        ),
        parse_query(
            "Q2(PWName) :- Pathway(PWID, PWName, Species, Release), "
            "Reaction(RID, PWID, RName), Participant(RID, ProteinID, Role)"
        ),
        parse_query("Q3(PWID, PWName, Species, Release) :- Pathway(PWID, PWName, Species, Release)"),
    ]
