"""A synthetic eagle-i style RDF dataset with an ontology of resource classes.

eagle-i is an RDF dataset "built to facilitate translational science research
which allows researchers to share information about resources such as cell
lines and software" (paper, Section 1).  Citations there depend on the class
of the resource.  The generator below produces

* an ontology (Resource ⊒ Reagent ⊒ {CellLine, Antibody}, Resource ⊒
  {Software, Instrument, Protocol, Organism}, configurable extra depth),
* resource instances classified at the leaves, each with a label, a creating
  lab, contributors and an identifier,
* :func:`class_citation_views` with per-class citation templates so that the
  most-specific-class resolution of :mod:`repro.rdf.citation_rdf` is
  exercised.
"""

from __future__ import annotations

import random

from repro.rdf.citation_rdf import ClassCitationView
from repro.rdf.ontology import Ontology
from repro.rdf.triples import RDF_TYPE, RDFS_LABEL, RDFS_SUBCLASS_OF, TripleStore

#: predicates used by the synthetic data
CREATED_BY = "ei:createdBy"
CONTRIBUTOR = "dc:contributor"
IDENTIFIER = "dc:identifier"
PART_OF_LAB = "ei:partOfLaboratory"

_BASE_CLASSES = {
    "ei:Reagent": "ei:Resource",
    "ei:CellLine": "ei:Reagent",
    "ei:Antibody": "ei:Reagent",
    "ei:PlasmidReagent": "ei:Reagent",
    "ei:Software": "ei:Resource",
    "ei:Instrument": "ei:Resource",
    "ei:Protocol": "ei:Resource",
    "ei:Organism": "ei:Resource",
}

_LAB_NAMES = (
    "Smith Lab",
    "Chen Lab",
    "Garcia Lab",
    "Okafor Lab",
    "Müller Lab",
    "Rossi Lab",
)

_PEOPLE = (
    "A. Smith",
    "B. Chen",
    "C. Garcia",
    "D. Okafor",
    "E. Müller",
    "F. Rossi",
    "G. Novak",
    "H. Tanaka",
)


def build_ontology(extra_depth: int = 0) -> tuple[Ontology, list[str]]:
    """Build the class hierarchy; returns the ontology and its leaf classes.

    ``extra_depth`` chains additional subclasses below each leaf, which the E9
    benchmark uses to scale the reasoning depth.
    """
    ontology = Ontology()
    for subclass, superclass in _BASE_CLASSES.items():
        ontology.add_subclass(subclass, superclass)
    leaves = [
        "ei:CellLine",
        "ei:Antibody",
        "ei:PlasmidReagent",
        "ei:Software",
        "ei:Instrument",
        "ei:Protocol",
        "ei:Organism",
    ]
    for depth in range(extra_depth):
        new_leaves = []
        for leaf in leaves:
            child = f"{leaf}_L{depth + 1}"
            ontology.add_subclass(child, leaf)
            new_leaves.append(child)
        leaves = new_leaves
    return ontology, leaves


def generate(
    resources: int = 200, extra_depth: int = 0, seed: int = 11
) -> tuple[TripleStore, Ontology, list[str]]:
    """Generate the triple store, its ontology and the leaf classes."""
    rng = random.Random(seed)
    ontology, leaves = build_ontology(extra_depth)
    store = TripleStore()
    for subclass, superclass in _BASE_CLASSES.items():
        store.add((subclass, RDFS_SUBCLASS_OF, superclass))

    for index in range(1, resources + 1):
        uri = f"ei:resource/{index}"
        leaf = leaves[index % len(leaves)]
        store.add((uri, RDF_TYPE, leaf))
        store.add((uri, RDFS_LABEL, f"Resource {index}"))
        store.add((uri, IDENTIFIER, f"EI-{index:06d}"))
        lab = _LAB_NAMES[index % len(_LAB_NAMES)]
        store.add((uri, PART_OF_LAB, lab))
        store.add((uri, CREATED_BY, rng.choice(_PEOPLE)))
        for person in rng.sample(_PEOPLE, k=2):
            store.add((uri, CONTRIBUTOR, person))
    return store, ontology, leaves


def class_citation_views(leaves: list[str] | None = None) -> list[ClassCitationView]:
    """Citation views keyed by ontology class (leaf classes plus fallbacks)."""
    views = [
        ClassCitationView(
            target_class="ei:Resource",
            property_map={CONTRIBUTOR: "contributors", IDENTIFIER: "identifier"},
            constants={"source": "eagle-i", "publisher": "eagle-i Network"},
            priority=0,
        ),
        ClassCitationView(
            target_class="ei:Reagent",
            property_map={
                CONTRIBUTOR: "contributors",
                IDENTIFIER: "identifier",
                PART_OF_LAB: "publisher",
            },
            constants={"source": "eagle-i reagents"},
            priority=1,
        ),
        ClassCitationView(
            target_class="ei:CellLine",
            property_map={
                CREATED_BY: "authors",
                IDENTIFIER: "identifier",
                PART_OF_LAB: "publisher",
            },
            constants={"source": "eagle-i cell lines"},
            priority=2,
        ),
        ClassCitationView(
            target_class="ei:Software",
            property_map={CREATED_BY: "authors", IDENTIFIER: "identifier"},
            constants={"source": "eagle-i software"},
            priority=2,
        ),
    ]
    if leaves:
        for leaf in leaves:
            if not any(view.target_class == leaf for view in views):
                continue
    return views
