"""The citation serving layer: cached, batched, concurrent citation.

This package turns the per-call :class:`~repro.core.engine.CitationEngine`
into a request-serving subsystem, the "citation as a service" workload:

* :mod:`repro.service.fingerprint` — structural query fingerprints, invariant
  under variable renaming and body-atom reordering;
* :mod:`repro.service.plan_cache` — generation-stamped LRU caches so repeated
  query shapes skip the view-rewriting search;
* :mod:`repro.service.service` — the :class:`CitationService` facade with
  single, batched (deduplicating) and thread-pool-concurrent entry points;
* :mod:`repro.service.metrics` — counters and latency histograms surfaced by
  :meth:`CitationService.stats`.
"""

from repro.core.engine import CitationPlan
from repro.service.fingerprint import are_isomorphic, canonical_key, fingerprint
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.plan_cache import CacheInfo, GenerationalLRU, PlanCache
from repro.service.service import CitationService, ServiceResponse

__all__ = [
    "CitationPlan",
    "CitationService",
    "ServiceResponse",
    "ServiceMetrics",
    "LatencyHistogram",
    "PlanCache",
    "GenerationalLRU",
    "CacheInfo",
    "fingerprint",
    "canonical_key",
    "are_isomorphic",
]
