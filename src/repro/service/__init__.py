"""The citation serving layer: cached, batched, concurrent citation.

This package turns the per-call engines into a request-serving subsystem,
the "citation as a service" workload:

* :mod:`repro.service.fingerprint` — structural query fingerprints, invariant
  under variable renaming and body-atom reordering;
* :mod:`repro.service.plan_cache` — token-stamped LRU caches so repeated
  query shapes skip each backend's compile phase;
* :mod:`repro.service.service` — the :class:`CitationService` facade: one
  ``submit()`` / ``submit_batch()`` path routing
  :class:`~repro.api.envelope.CitationRequest` envelopes to registered
  :class:`~repro.api.backend.CitationBackend` adapters (plus the legacy
  conjunctive-query entry points);
* :mod:`repro.service.metrics` — global and per-backend counters and latency
  histograms surfaced by :meth:`CitationService.stats`.

The request/response envelope and the backend adapters live in
:mod:`repro.api`.
"""

from repro.api.backend import BackendCapabilities, BackendRegistry, CitationBackend
from repro.api.envelope import CitationRequest, CitationResponse
from repro.core.engine import CitationPlan
from repro.service.explain import ExplainReport
from repro.service.fingerprint import are_isomorphic, canonical_key, fingerprint
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.plan_cache import CacheInfo, GenerationalLRU, PlanCache
from repro.service.service import CitationService, ServiceResponse

__all__ = [
    "CitationPlan",
    "CitationRequest",
    "CitationResponse",
    "CitationBackend",
    "BackendCapabilities",
    "BackendRegistry",
    "CitationService",
    "ServiceResponse",
    "ServiceMetrics",
    "LatencyHistogram",
    "ExplainReport",
    "PlanCache",
    "GenerationalLRU",
    "CacheInfo",
    "fingerprint",
    "canonical_key",
    "are_isomorphic",
]
