"""Counters and latency histograms for the citation service.

The service records every request into a :class:`ServiceMetrics` instance:
monotonic counters (requests, cache hits, compiles, errors, timeouts, ...)
and fixed-bucket latency histograms for the compile (rewrite-search), execute
(evaluation) and end-to-end phases.  :meth:`ServiceMetrics.stats` returns a
plain-dict snapshot suitable for JSON output — the ``--stats`` flag of the
CLI and the benchmarks print it verbatim.

Histograms use exponential bucket boundaries in milliseconds; percentiles are
estimated as the upper bound of the bucket containing the requested quantile
(the usual Prometheus-style estimate), with the true maximum tracked exactly.
Everything is thread-safe: ``cite_many`` observes from worker threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable

from repro.concurrency import shared_state

__all__ = ["LatencyHistogram", "ServiceMetrics", "DEFAULT_BUCKET_BOUNDS_MS"]

#: Default histogram boundaries (milliseconds), roughly exponential.
DEFAULT_BUCKET_BOUNDS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (milliseconds)."""

    __slots__ = ("bounds_ms", "bucket_counts", "count", "total_ms", "min_ms", "max_ms")

    def __init__(self, bounds_ms: Iterable[float] = DEFAULT_BUCKET_BOUNDS_MS) -> None:
        self.bounds_ms = tuple(sorted(bounds_ms))
        if not self.bounds_ms:
            raise ValueError("histogram needs at least one bucket boundary")
        # One bucket per boundary (<= bound) plus one overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds_ms) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation given in seconds."""
        ms = seconds * 1000.0
        self.bucket_counts[bisect_left(self.bounds_ms, ms)] += 1
        self.count += 1
        self.total_ms += ms
        if ms < self.min_ms:
            self.min_ms = ms
        if ms > self.max_ms:
            self.max_ms = ms

    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def observed_min_ms(self) -> float:
        """The smallest observation, or 0.0 before any — never ``inf``.

        :attr:`min_ms` starts at ``inf`` as the fold identity; serializing
        that sentinel would leak ``Infinity`` into JSON output (invalid per
        the spec), so readers go through this accessor.
        """
        return self.min_ms if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound_ms, cumulative_count)`` per finite bound, ascending.

        Exactly the shape Prometheus histogram exposition wants (the
        implicit ``+Inf`` bucket equals :attr:`count` and is left to the
        renderer).
        """
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds_ms, self.bucket_counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        return out

    def percentile_ms(self, quantile: float) -> float:
        """Upper-bound estimate of the given quantile (0 < quantile <= 1)."""
        if self.count == 0:
            return 0.0
        threshold = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= threshold:
                if index == len(self.bounds_ms):
                    return self.max_ms
                return min(self.bounds_ms[index], self.max_ms)
        return self.max_ms

    def snapshot(self) -> dict[str, object]:
        """A JSON-friendly summary of the histogram.

        ``buckets`` lists cumulative counts per upper bound; the overflow
        bucket's bound is the string ``"+Inf"`` so the snapshot survives
        ``json.dumps`` (a float ``inf`` would serialize as the non-JSON
        literal ``Infinity``).
        """
        buckets: list[dict[str, object]] = [
            {"le_ms": bound, "count": cumulative}
            for bound, cumulative in self.cumulative_buckets()
        ]
        buckets.append({"le_ms": "+Inf", "count": self.count})
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 4),
            "mean_ms": round(self.mean_ms(), 4),
            "p50_ms": round(self.percentile_ms(0.50), 4),
            "p95_ms": round(self.percentile_ms(0.95), 4),
            "p99_ms": round(self.percentile_ms(0.99), 4),
            "min_ms": round(self.observed_min_ms(), 4),
            "max_ms": round(self.max_ms, 4),
            "buckets": buckets,
        }


@shared_state("_counters", "_histograms", "_gauge_sources", lock="_lock")
class ServiceMetrics:
    """Thread-safe counters and histograms with a ``stats()`` snapshot."""

    #: Counters that always appear in ``stats()`` (even when still zero), so
    #: dashboards and tests can rely on the keys being present.
    STANDARD_COUNTERS = (
        "requests",
        "batch_requests",
        "result_cache_hits",
        "plan_cache_hits",
        "plan_compilations",
        "executions",
        "deduplicated",
        "errors",
        "timeouts",
        "mutations_observed",
        # -- resilience: one response per request, classified ---------------
        # ``responses`` counts every response the serving path materialises
        # (including batch-worker responses later replaced by a pool-timeout
        # response), so quiescence is observable:
        # requests == responses + deduplicated once no worker is running.
        "responses",
        # The ``errors`` total split by failure class.  ``errors_timeout``
        # counts cooperative deadline cancellations, ``errors_shed``
        # admission-control rejections, ``errors_permanent`` everything
        # else; ``errors_transient_retried`` counts *retry attempts* that a
        # RetryPolicy absorbed (not responses — a retried request that
        # eventually succeeds shows up in ``executions``).
        "errors_timeout",
        "errors_shed",
        "errors_permanent",
        "errors_transient_retried",
        # Degraded serving: stale result-cache entries served under pressure.
        "stale_served",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {name: 0 for name in self.STANDARD_COUNTERS}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._gauge_sources: dict[str, Callable[[], dict]] = {}

    #: Prefix of per-backend counters (``backend.<name>.<event>``); they are
    #: grouped under the ``"backends"`` key of :meth:`stats` instead of being
    #: mixed into the flat counter dict.
    BACKEND_PREFIX = "backend."

    # -- recording -----------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def increment_backend(self, backend: str, event: str, amount: int = 1) -> None:
        """Count *event* (requests, plan_hits, result_hits, executions,
        compilations, deduplicated, errors, ...) against one backend."""
        self.increment(f"{self.BACKEND_PREFIX}{backend}.{event}", amount)

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency observation into histogram *name*."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    def register_gauge_source(self, name: str, source: Callable[[], dict]) -> None:
        """Attach a callable polled at :meth:`stats` time.

        The callable's dict snapshot appears under key *name* in the stats
        output.  This is how subsystems that keep their own thread-safe
        counters (e.g. the evaluator's strategy/prelude metrics,
        :class:`repro.query.stats.EvaluationMetrics`) surface through the
        service's one-stop ``stats()`` without double-counting into the flat
        counter namespace.  Re-registering a name replaces the source;
        :meth:`reset` leaves sources attached.
        """
        with self._lock:
            self._gauge_sources[name] = source

    # -- reading -------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def cache_hit_rate(self) -> float:
        """Fraction of requests answered from the result or plan cache."""
        with self._lock:
            requests = self._counters.get("requests", 0)
            hits = self._counters.get("result_cache_hits", 0) + self._counters.get(
                "plan_cache_hits", 0
            )
        return hits / requests if requests else 0.0

    def backend_stats(self) -> dict[str, dict[str, int]]:
        """Per-backend event counts: ``{backend: {event: count}}``."""
        with self._lock:
            items = list(self._counters.items())
        backends: dict[str, dict[str, int]] = {}
        for name, value in items:
            if not name.startswith(self.BACKEND_PREFIX):
                continue
            backend, _, event = name[len(self.BACKEND_PREFIX):].partition(".")
            backends.setdefault(backend, {})[event] = value
        return backends

    def stats(self) -> dict:
        """A snapshot of all counters, per-backend counts, histograms and
        registered gauge sources."""
        with self._lock:
            all_counters = dict(self._counters)
            latencies = {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            }
            gauge_sources = dict(self._gauge_sources)
        counters = {
            name: value
            for name, value in all_counters.items()
            if not name.startswith(self.BACKEND_PREFIX)
        }
        snapshot: dict = {"counters": counters, "latency_ms": latencies}
        snapshot["backends"] = self.backend_stats()
        requests = counters.get("requests", 0)
        hits = counters.get("result_cache_hits", 0) + counters.get("plan_cache_hits", 0)
        snapshot["cache_hit_rate"] = round(hits / requests, 4) if requests else 0.0
        # Polled outside the lock: a source may take its own lock.
        for name, source in gauge_sources.items():
            snapshot[name] = source()
        return snapshot

    def to_prometheus(
        self, namespace: str = "repro", extra: dict[str, dict] | None = None
    ) -> str:
        """Render every counter, histogram and gauge source as Prometheus
        text exposition (format 0.0.4).

        Flat counters become ``<namespace>_<name>_total``; per-backend
        counters share one ``<namespace>_backend_events_total`` family with
        ``backend``/``event`` labels; each latency histogram becomes one
        label set of the ``<namespace>_latency_seconds`` family (bounds and
        sums converted from the internal milliseconds to seconds, as the
        Prometheus base-unit convention requires).  Gauge-source snapshots —
        and any *extra* dicts the caller passes, keyed like gauge sources —
        are flattened to gauges, keeping numeric leaves only.
        """
        from repro.observability.prometheus import PrometheusRenderer, flatten_numeric

        with self._lock:
            all_counters = dict(self._counters)
            histograms = {
                name: (
                    histogram.cumulative_buckets(),
                    histogram.total_ms,
                    histogram.count,
                )
                for name, histogram in sorted(self._histograms.items())
            }
            gauge_sources = dict(self._gauge_sources)

        renderer = PrometheusRenderer()
        for name, value in sorted(all_counters.items()):
            if name.startswith(self.BACKEND_PREFIX):
                backend, _, event = name[len(self.BACKEND_PREFIX):].partition(".")
                renderer.counter(
                    f"{namespace}_backend_events_total",
                    value,
                    labels={"backend": backend, "event": event},
                    help_text="Per-backend request lifecycle events.",
                )
            else:
                renderer.counter(
                    f"{namespace}_{name}_total",
                    value,
                    help_text=f"Total {name.replace('_', ' ')}.",
                )
        requests = all_counters.get("requests", 0)
        hits = all_counters.get("result_cache_hits", 0) + all_counters.get(
            "plan_cache_hits", 0
        )
        renderer.gauge(
            f"{namespace}_cache_hit_rate",
            hits / requests if requests else 0.0,
            help_text="Fraction of requests answered from the result or plan cache.",
        )
        for name, (buckets, total_ms, count) in histograms.items():
            renderer.histogram(
                f"{namespace}_latency_seconds",
                [(bound_ms / 1000.0, cumulative) for bound_ms, cumulative in buckets],
                total_ms / 1000.0,
                count,
                labels={"phase": name},
                help_text="Request phase latency in seconds.",
            )
        # Polled outside the lock: a source may take its own lock.
        flattened: dict[str, dict] = {
            name: source() for name, source in gauge_sources.items()
        }
        if extra:
            flattened.update(extra)
        for name, payload in sorted(flattened.items()):
            for metric, value in flatten_numeric(f"{namespace}_{name}", payload):
                renderer.gauge(metric, value)
        return renderer.render()

    def reset(self) -> None:
        """Zero every counter and drop all histograms."""
        with self._lock:
            self._counters = {name: 0 for name in self.STANDARD_COUNTERS}
            self._histograms.clear()
