"""Canonical fingerprints for conjunctive queries.

The serving layer caches compiled citation plans keyed by query *structure*:
two requests that differ only in variable names or in the order of their body
atoms must map to the same cache slot, while queries with genuinely different
shapes (different joins, predicates, head, equality constants or
λ-parameters) must not collide.

:func:`canonical_key` computes such a structural normal form.  It treats the
query as a colored hypergraph over its variables — the same view of a query
that :meth:`~repro.query.ast.ConjunctiveQuery.canonical_instance` takes for
containment checking — and canonicalises it with color refinement plus
individualization:

1. every variable starts with an isomorphism-invariant color built from its
   head positions, λ-parameter position, bound equality constants and its
   occurrence pattern ``(predicate, position)`` across body atoms;
2. colors are refined to a fixpoint: a variable's color absorbs the colors of
   the variables it co-occurs with, per atom and per position (1-dimensional
   Weisfeiler–Leman);
3. if two variables still share a color, the smallest ambiguous class is
   split by individualizing each member in turn and the lexicographically
   smallest resulting encoding wins — this resolves automorphism-rich bodies
   exactly, at a cost that is negligible for the small bodies of citation
   queries.

:func:`fingerprint` hashes the canonical key into a compact hex string used
as the cache key by :mod:`repro.service.plan_cache`.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping

from repro.query.ast import Atom, ConjunctiveQuery, Constant, Term, Variable

__all__ = ["canonical_key", "fingerprint", "are_isomorphic"]


# ---------------------------------------------------------------------------
# Term / constant encodings
# ---------------------------------------------------------------------------
def _constant_token(value: object) -> tuple:
    """A hashable, type-discriminating token for a constant value.

    ``1`` and ``True`` and ``"1"`` must produce different tokens, so the type
    name participates.
    """
    return ("c", type(value).__name__, repr(value))


def _term_encoding(term: Term, rank: Mapping[Variable, int]) -> tuple:
    if isinstance(term, Constant):
        return _constant_token(term.value)
    return ("v", rank[term])


# ---------------------------------------------------------------------------
# Color refinement
# ---------------------------------------------------------------------------
def _normalize(colors: dict[Variable, object]) -> dict[Variable, int]:
    """Map arbitrary color values to dense integer ranks (order-preserving)."""
    distinct = sorted(set(colors.values()), key=repr)
    rank = {color: index for index, color in enumerate(distinct)}
    return {variable: rank[color] for variable, color in colors.items()}


def _initial_colors(query: ConjunctiveQuery) -> dict[Variable, int]:
    head_positions: dict[Variable, list[int]] = {}
    for index, term in enumerate(query.head.terms):
        if isinstance(term, Variable):
            head_positions.setdefault(term, []).append(index)
    parameter_positions = {
        parameter: index for index, parameter in enumerate(query.parameters)
    }
    equality_constants: dict[Variable, list[tuple]] = {}
    for equality in query.equalities:
        equality_constants.setdefault(equality.variable, []).append(
            _constant_token(equality.constant.value)
        )
    occurrences: dict[Variable, list[tuple[str, int]]] = {}
    for atom in query.body:
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                occurrences.setdefault(term, []).append((atom.predicate, index))
    colors: dict[Variable, object] = {}
    for variable in query.variables():
        colors[variable] = (
            tuple(head_positions.get(variable, ())),
            parameter_positions.get(variable, -1),
            tuple(sorted(equality_constants.get(variable, ()))),
            tuple(sorted(occurrences.get(variable, ()))),
        )
    return _normalize(colors)


def _atom_signature(
    atom: Atom, variable: Variable, colors: Mapping[Variable, int]
) -> tuple:
    """How *atom* looks from the point of view of *variable*."""
    positions = tuple(
        index for index, term in enumerate(atom.terms) if term == variable
    )
    context = tuple(
        _constant_token(term.value)
        if isinstance(term, Constant)
        else ("v", colors[term])
        for term in atom.terms
    )
    return (atom.predicate, positions, context)


def _refine(query: ConjunctiveQuery, colors: dict[Variable, int]) -> dict[Variable, int]:
    """Refine variable colors to a fixpoint (1-WL on the query hypergraph)."""
    while True:
        updated: dict[Variable, object] = {}
        for variable, color in colors.items():
            signatures = sorted(
                _atom_signature(atom, variable, colors)
                for atom in query.body
                if variable in atom.variables()
            )
            updated[variable] = (color, tuple(signatures))
        normalized = _normalize(updated)
        if normalized == colors:
            return colors
        colors = normalized


# ---------------------------------------------------------------------------
# Canonical encoding (with individualization for automorphism ties)
# ---------------------------------------------------------------------------
def _encode(query: ConjunctiveQuery, colors: Mapping[Variable, int]) -> tuple:
    """Encode the query under a total variable order (all colors distinct)."""
    ordered = sorted(colors, key=lambda variable: colors[variable])
    rank = {variable: index for index, variable in enumerate(ordered)}
    head = (
        query.head.predicate,
        tuple(_term_encoding(term, rank) for term in query.head.terms),
    )
    body = tuple(
        sorted(
            (atom.predicate, tuple(_term_encoding(term, rank) for term in atom.terms))
            for atom in query.body
        )
    )
    equalities = tuple(
        sorted(
            (rank[equality.variable], _constant_token(equality.constant.value))
            for equality in query.equalities
        )
    )
    parameters = tuple(rank[parameter] for parameter in query.parameters)
    return ("cq1", head, body, equalities, parameters)


def _canonicalize(query: ConjunctiveQuery, colors: dict[Variable, int]) -> tuple:
    classes: dict[int, list[Variable]] = {}
    for variable, color in colors.items():
        classes.setdefault(color, []).append(variable)
    ambiguous = {color: members for color, members in classes.items() if len(members) > 1}
    if not ambiguous:
        return _encode(query, colors)
    # Individualize each member of the smallest-colored ambiguous class in
    # turn; the minimal resulting encoding is the canonical one.  The choice
    # of class (minimal color of the smallest class size) is itself
    # isomorphism-invariant, so isomorphic queries branch identically.
    target_color = min(
        ambiguous, key=lambda color: (len(ambiguous[color]), color)
    )
    best: tuple | None = None
    for chosen in ambiguous[target_color]:
        branched: dict[Variable, object] = {
            variable: (color, 1 if variable == chosen else 0)
            for variable, color in colors.items()
        }
        refined = _refine(query, _normalize(branched))
        encoding = _canonicalize(query, refined)
        if best is None or encoding < best:
            best = encoding
    assert best is not None
    return best


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def canonical_key(query: ConjunctiveQuery) -> tuple:
    """A hashable normal form of *query*, identical for isomorphic queries.

    Two queries get the same key iff they differ only by a bijective variable
    renaming and/or a permutation of body atoms (and of equality atoms).
    Head predicate, head arity and term order, body structure, equality
    constants and λ-parameters all participate.
    """
    colors = _refine(query, _initial_colors(query))
    return _canonicalize(query, colors)


def fingerprint(query: ConjunctiveQuery) -> str:
    """A compact structural hash of *query* (hex), used as plan-cache key."""
    digest = hashlib.sha256(repr(canonical_key(query)).encode("utf-8"))
    return digest.hexdigest()[:32]


def are_isomorphic(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """``True`` when the two queries are equal up to renaming/reordering."""
    return canonical_key(left) == canonical_key(right)
