"""The :class:`CitationService`: a high-throughput front end for citation.

The paper's premise is that a live curated database must answer "cite this
query result" for every reader — the same citation views are hit over and
over by structurally identical queries.  The raw
:class:`~repro.core.engine.CitationEngine` re-runs the full view-rewriting
search per call; this facade adds the serving-layer machinery around it:

* **plan caching** — queries are fingerprinted up to variable renaming and
  atom order (:mod:`repro.service.fingerprint`); a hit skips the
  Bucket/MiniCon search and economical selection entirely;
* **result caching** — an exact structural repeat against an unchanged
  database is answered from memory without any evaluation;
* **generation-based invalidation** — both caches stamp entries with the
  engine's ``(database generation, cache epoch)`` token, so any insert,
  delete or forced invalidation makes stale entries unservable;
* **batching** — :meth:`CitationService.cite_batch` deduplicates identical
  queries inside one batch and answers every member of an isomorphism class
  from a single execution;
* **concurrency** — :meth:`CitationService.cite_many` fans requests out over
  a thread pool with per-request timeout and error isolation: one failing or
  slow query never poisons its batch;
* **observability** — every phase is metered
  (:mod:`repro.service.metrics`); :meth:`CitationService.stats` returns a
  JSON-friendly snapshot.

Mutations may arrive between requests (the caches notice via the generation
token) but must not race a request mid-flight — the usual reader/writer
discipline of an in-memory store applies.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.citation import Citation
from repro.core.engine import CitationEngine, CitationPlan, CitedResult, Mode
from repro.query.ast import ConjunctiveQuery
from repro.query.evaluator import result_schema
from repro.relational.relation import Relation
from repro.service.fingerprint import fingerprint
from repro.service.metrics import ServiceMetrics
from repro.service.plan_cache import GenerationalLRU, PlanCache

__all__ = ["CitationService", "ServiceResponse"]


@dataclass
class ServiceResponse:
    """Outcome of one request served by :meth:`CitationService.cite_many`.

    Exactly one of :attr:`result` / :attr:`error` is set.  ``cached`` is true
    when no evaluation ran for this request (result-cache hit or within-batch
    deduplication onto another request's execution).
    """

    query: ConjunctiveQuery | str
    result: CitedResult | None = None
    error: Exception | None = None
    elapsed: float = 0.0
    cached: bool = False
    fingerprint: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> CitedResult:
        """Return the result, re-raising the stored error on failure."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class CitationService:
    """Caching, batching, concurrent serving over a :class:`CitationEngine`."""

    def __init__(
        self,
        engine: CitationEngine,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        max_workers: int = 4,
        metrics: ServiceMetrics | None = None,
        cache_results: bool = True,
        query_parser: Callable[[ConjunctiveQuery | str], ConjunctiveQuery] | None = None,
    ) -> None:
        self.engine = engine
        # Pluggable request parsing (the CLI injects a Datalog+SQL parser);
        # parse errors surface per request with the parser's own message.
        self._parse = query_parser or engine._as_query
        self.metrics = metrics or ServiceMetrics()
        self.plan_cache = PlanCache(maxsize=plan_cache_size)
        self.result_cache: GenerationalLRU[CitedResult] = GenerationalLRU(
            maxsize=result_cache_size
        )
        self.cache_results = cache_results
        self.max_workers = max_workers
        self._compile_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._count_mutation = lambda _kind, _relation, _row: self.metrics.increment(
            "mutations_observed"
        )
        engine.database.add_mutation_listener(self._count_mutation)

    # -- single requests ------------------------------------------------------
    def cite(
        self, query: ConjunctiveQuery | str, mode: Mode | None = None
    ) -> CitedResult:
        """Serve one citation request through the caches.

        Same contract as :meth:`CitationEngine.cite`, including raised
        errors; the first call for a query shape pays the full compile cost,
        repeats skip the rewriting search (plan hit) or everything
        (result hit).
        """
        return self._serve(query, mode).unwrap()

    def try_cite(
        self, query: ConjunctiveQuery | str, mode: Mode | None = None
    ) -> ServiceResponse:
        """Like :meth:`cite` but never raises: errors ride in the response."""
        return self._serve(query, mode)

    def plan_for(
        self, query: ConjunctiveQuery | str, mode: Mode | None = None
    ) -> tuple[CitationPlan, bool]:
        """The cached-or-compiled plan for *query* and whether it was a hit."""
        parsed = self._parse(query)
        mode = mode or self.engine.mode
        return self._plan(parsed, fingerprint(parsed), mode)

    def warm(
        self, queries: Iterable[ConjunctiveQuery | str], mode: Mode | None = None
    ) -> int:
        """Precompile plans for an expected workload; return the plan count."""
        compiled = 0
        for query in queries:
            _plan, hit = self.plan_for(query, mode)
            compiled += 0 if hit else 1
        return compiled

    # -- batched / concurrent requests ----------------------------------------
    def cite_batch(
        self, queries: Sequence[ConjunctiveQuery | str], mode: Mode | None = None
    ) -> list[CitedResult]:
        """Serve a batch sequentially, deduplicating identical queries.

        Structurally identical queries inside the batch (same fingerprint and
        mode) are executed once; the other members receive the same citations
        rebound to their own query text.  Errors propagate — use
        :meth:`cite_many` for error isolation.
        """
        self.metrics.increment("batch_requests")
        responses = self._serve_deduplicated(queries, mode, executor=None, timeout=None)
        return [response.unwrap() for response in responses]

    def cite_many(
        self,
        queries: Sequence[ConjunctiveQuery | str],
        mode: Mode | None = None,
        timeout: float | None = None,
        max_workers: int | None = None,
    ) -> list[ServiceResponse]:
        """Serve a batch concurrently with per-request isolation.

        Distinct query shapes run in parallel on a thread pool; duplicates
        within the batch share one execution.  A request that raises yields a
        response carrying the error.  *timeout* is a **response deadline for
        the batch**, measured from the call: any request (including queueing
        time behind a full pool) not answered within *timeout* seconds yields
        a response with a :class:`TimeoutError`; its worker finishes in the
        background and may still populate the caches.  The response list is
        positionally aligned with *queries*.
        """
        self.metrics.increment("batch_requests")
        if max_workers is not None and max_workers != self.max_workers:
            with ThreadPoolExecutor(max_workers=max_workers) as executor:
                return self._serve_deduplicated(queries, mode, executor, timeout)
        return self._serve_deduplicated(queries, mode, self._pool(), timeout)

    # -- cache control ---------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached plans and results (rarely needed: tokens already
        invalidate stale entries lazily)."""
        self.plan_cache.invalidate()
        self.result_cache.invalidate()

    def stats(self) -> dict:
        """A JSON-friendly snapshot of metrics, caches and engine state."""
        snapshot = self.metrics.stats()
        snapshot["plan_cache"] = self.plan_cache.stats()
        snapshot["result_cache"] = self.result_cache.stats()
        generation, epoch = self.engine.plan_token()
        snapshot["engine"] = {
            "generation": generation,
            "cache_epoch": epoch,
            "mode": self.engine.mode,
            "citation_views": len(self.engine.citation_views),
        }
        return snapshot

    def close(self) -> None:
        """Shut down the worker pool and detach from the database."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
        self.engine.database.remove_mutation_listener(self._count_mutation)

    def __enter__(self) -> "CitationService":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="citation-service",
                )
            return self._executor

    def _serve(
        self, query: ConjunctiveQuery | str, mode: Mode | None
    ) -> ServiceResponse:
        started = time.perf_counter()
        self.metrics.increment("requests")
        try:
            parsed = self._parse(query)
            key = fingerprint(parsed)
        except Exception as error:  # error isolation: report, never crash the batch
            self.metrics.increment("errors")
            return ServiceResponse(
                query=query, error=error, elapsed=time.perf_counter() - started
            )
        return self._serve_parsed(parsed, query, key, mode or self.engine.mode, started)

    def _serve_parsed(
        self,
        parsed: ConjunctiveQuery,
        original: ConjunctiveQuery | str,
        key: str,
        mode: Mode,
        started: float | None = None,
    ) -> ServiceResponse:
        """Serve an already parsed and fingerprinted request."""
        if started is None:
            started = time.perf_counter()
            self.metrics.increment("requests")
        try:
            result, cached = self._cite_through_caches(parsed, key, mode)
        except Exception as error:
            self.metrics.increment("errors")
            return ServiceResponse(
                query=original,
                error=error,
                elapsed=time.perf_counter() - started,
                fingerprint=key,
            )
        elapsed = time.perf_counter() - started
        self.metrics.observe("request", elapsed)
        return ServiceResponse(
            query=original,
            result=result,
            elapsed=elapsed,
            cached=cached,
            fingerprint=key,
        )

    def _cite_through_caches(
        self, query: ConjunctiveQuery, key: str, mode: Mode
    ) -> tuple[CitedResult, bool]:
        token = self.engine.plan_token()
        cache_key = (key, mode)
        if self.cache_results:
            hit = self.result_cache.get(cache_key, token)
            if hit is not None:
                self.metrics.increment("result_cache_hits")
                return self._rebind(hit, query), True
        plan, _hit = self._plan(query, key, mode)
        execute_started = time.perf_counter()
        result = self.engine.execute_plan(plan, query=query)
        self.metrics.observe("execute", time.perf_counter() - execute_started)
        self.metrics.increment("executions")
        if self.cache_results:
            # Results always reflect the data: stamp with the token read at
            # request start, not the (possibly epoch-only) plan stamp.
            self.result_cache.put(cache_key, result, token)
        return result, False

    def _plan_stamp(self, mode: Mode) -> tuple:
        """The validity stamp for plans of *mode*.

        Formal-mode (and fallback) plans hold only the rewriting search's
        output, which reads the query and view definitions — not the data —
        so they survive ordinary inserts/deletes and are only retired by a
        forced invalidation (epoch bump).  Economical plans embed a
        cost-based selection made against the data, so they are additionally
        stamped with the database generation.
        """
        generation, epoch = self.engine.plan_token()
        return (generation, epoch) if mode == "economical" else ("any", epoch)

    def _plan(
        self, query: ConjunctiveQuery, key: str, mode: Mode
    ) -> tuple[CitationPlan, bool]:
        stamp = self._plan_stamp(mode)
        cache_key = (key, mode)
        plan = self.plan_cache.get(cache_key, stamp)
        if plan is not None:
            self.metrics.increment("plan_cache_hits")
            return plan, True
        # Single-flight compilation: concurrent identical misses compile once.
        with self._compile_lock:
            plan = self.plan_cache.get(cache_key, stamp)
            if plan is not None:
                self.metrics.increment("plan_cache_hits")
                return plan, True
            compile_started = time.perf_counter()
            plan = self.engine.compile_plan(query, mode)
            self.metrics.observe("compile", time.perf_counter() - compile_started)
            self.metrics.increment("plan_compilations")
            generation, epoch = plan.token
            self.plan_cache.put(
                cache_key,
                plan,
                (generation, epoch) if plan.data_dependent else ("any", epoch),
            )
        return plan, False

    def _serve_deduplicated(
        self,
        queries: Sequence[ConjunctiveQuery | str],
        mode: Mode | None,
        executor: ThreadPoolExecutor | None,
        timeout: float | None,
    ) -> list[ServiceResponse]:
        mode = mode or self.engine.mode
        batch_started = time.monotonic()
        responses: list[ServiceResponse | None] = [None] * len(queries)
        parsed: list[ConjunctiveQuery | None] = [None] * len(queries)
        groups: dict[str, list[int]] = {}
        for index, query in enumerate(queries):
            try:
                parsed_query = self._parse(query)
                key = fingerprint(parsed_query)
            except Exception as error:  # malformed request: isolate immediately
                self.metrics.increment("requests")
                self.metrics.increment("errors")
                responses[index] = ServiceResponse(query=query, error=error)
                continue
            parsed[index] = parsed_query
            groups.setdefault(key, []).append(index)

        # Concurrent (or inline) execution of one representative per group,
        # reusing the parse and fingerprint work done while grouping.
        representatives = {key: members[0] for key, members in groups.items()}

        def serve_representative(key: str, index: int) -> ServiceResponse:
            representative = parsed[index]
            assert representative is not None
            return self._serve_parsed(representative, queries[index], key, mode)

        if executor is None:
            outcomes = {
                key: serve_representative(key, index)
                for key, index in representatives.items()
            }
        else:
            deadline = None if timeout is None else batch_started + timeout
            futures: dict[str, Future] = {
                key: executor.submit(serve_representative, key, index)
                for key, index in representatives.items()
            }
            outcomes = {}
            for key, future in futures.items():
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                try:
                    outcomes[key] = future.result(timeout=remaining)
                except TimeoutError:
                    self.metrics.increment("timeouts")
                    outcomes[key] = ServiceResponse(
                        query=queries[representatives[key]],
                        error=TimeoutError(
                            f"citation request missed the batch deadline of "
                            f"{timeout:.3f}s"
                        ),
                        elapsed=time.monotonic() - batch_started,
                        fingerprint=key,
                    )

        for key, members in groups.items():
            outcome = outcomes[key]
            for position, index in enumerate(members):
                if position == 0:
                    responses[index] = outcome
                    continue
                # Deduplicated member: same citations, rebound to its query.
                self.metrics.increment("requests")
                self.metrics.increment("deduplicated")
                if outcome.ok and outcome.result is not None:
                    member_query = parsed[index]
                    assert member_query is not None
                    responses[index] = ServiceResponse(
                        query=queries[index],
                        result=self._rebind(outcome.result, member_query),
                        elapsed=outcome.elapsed,
                        cached=True,
                        fingerprint=outcome.fingerprint,
                    )
                else:
                    responses[index] = ServiceResponse(
                        query=queries[index],
                        error=outcome.error,
                        elapsed=outcome.elapsed,
                        fingerprint=outcome.fingerprint,
                    )
        return [response for response in responses if response is not None]

    @staticmethod
    def _rebind(result: CitedResult, query: ConjunctiveQuery) -> CitedResult:
        """Re-attach a cached result to an isomorphic variant of its query.

        Answer rows and citations are identical across an isomorphism class;
        only the result schema (head variable names) and the reported query
        text differ.
        """
        if query == result.query:
            return result
        relation = Relation(result_schema(query), result.result.rows)
        citation = Citation(
            result.citation.records,
            expression=result.citation.expression,
            query_text=str(query),
            version=result.citation.version,
            timestamp=result.citation.timestamp,
        )
        return CitedResult(
            query=query,
            rewritings=result.rewritings,
            tuple_citations=result.tuple_citations,
            citation=citation,
            policy=result.policy,
            mode=result.mode,
            result=relation,
            used_fallback=result.used_fallback,
        )
