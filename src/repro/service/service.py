"""The :class:`CitationService`: one request/response front end for citation.

The paper's premise is that a live curated database must answer "cite this
query result" for every reader — and the paper deliberately spans query
models: conjunctive queries, unions, timestamped "citation evolution",
RDF/ontology citation and versioned data.  The service fronts all of them
through one path: every request is a
:class:`~repro.api.envelope.CitationRequest` routed to a registered
:class:`~repro.api.backend.CitationBackend`, and every backend gets the same
serving-layer machinery:

* **plan caching** — requests are fingerprinted structurally (invariant
  under variable renaming, atom and disjunct reordering); a hit skips the
  backend's compile phase (the Bucket/MiniCon search for the CQ-family
  backends) entirely;
* **result caching** — an exact structural repeat against unchanged data is
  answered from memory without any evaluation;
* **token-based invalidation** — cache entries are stamped with the
  backend's validity token (database generation / triple-store generation /
  pinned version id), so any mutation makes stale entries unservable;
* **batching** — :meth:`CitationService.submit_batch` deduplicates
  structurally identical requests inside one batch and answers every member
  of an isomorphism class from a single execution;
* **concurrency** — batches fan out over a thread pool with a batch deadline
  and error isolation: one failing or slow request never poisons its batch;
* **observability** — every phase is metered globally and per backend
  (:mod:`repro.service.metrics`); :meth:`CitationService.stats` returns a
  JSON-friendly snapshot.

The pre-redesign conjunctive-query methods (:meth:`cite`, :meth:`try_cite`,
:meth:`cite_batch`, :meth:`cite_many`, :meth:`plan_for`, :meth:`warm`) remain
as thin wrappers that build a relational-backend request and go through the
same ``submit`` path.

Mutations may arrive between requests (the caches notice via the validity
tokens) but must not race a request mid-flight — the usual reader/writer
discipline of an in-memory store applies.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from collections.abc import Callable, Hashable, Iterable, Sequence
from typing import Any

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.view_rules import analyze_view_set
from repro.api.backend import BackendRegistry, CitationBackend
from repro.api.backends.relational import RelationalBackend
from repro.api.backends.union import UnionBackend
from repro.api.envelope import CitationRequest, CitationResponse
from repro.concurrency import default_worker_count
from repro.core.engine import CitationEngine, CitationPlan, CitedResult, Mode
from repro.errors import (
    CitationError,
    DeadlineExceeded,
    Overloaded,
    StaticAnalysisError,
    error_code_for,
)
from repro.observability import (
    NULL_SPAN,
    RingBufferSink,
    Tracer,
    fingerprint_scope,
    get_tracer,
    use_tracer,
)
from repro.query.ast import ConjunctiveQuery
from repro.resilience import AdmissionController, Deadline, RetryPolicy, faults
from repro.resilience.deadline import current_deadline, deadline_scope
from repro.service.explain import ExplainReport
from repro.service.metrics import ServiceMetrics
from repro.service.plan_cache import GenerationalLRU, PlanCache

__all__ = ["CitationService", "ServiceResponse"]


@dataclass
class ServiceResponse:
    """Outcome of one request served by the legacy conjunctive-query methods.

    Exactly one of :attr:`result` / :attr:`error` is set.  ``cached`` is true
    when no evaluation ran for this request (result-cache hit or within-batch
    deduplication onto another request's execution).
    """

    query: ConjunctiveQuery | str
    result: CitedResult | None = None
    error: Exception | None = None
    elapsed: float = 0.0
    cached: bool = False
    fingerprint: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> CitedResult:
        """Return the result, re-raising the stored error on failure."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class CitationService:
    """Caching, batching, concurrent serving over pluggable citation backends."""

    def __init__(
        self,
        engine: CitationEngine | None = None,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        max_workers: int | None = None,
        metrics: ServiceMetrics | None = None,
        cache_results: bool = True,
        query_parser: Callable[[ConjunctiveQuery | str], ConjunctiveQuery] | None = None,
        backends: Sequence[CitationBackend] | None = None,
        tracer: Tracer | None = None,
        startup_lint: bool = True,
        max_inflight: int | None = None,
        queue_depth: int = 0,
        retry_policy: RetryPolicy | None = None,
        serve_stale: bool = False,
        default_timeout: float | None = None,
    ) -> None:
        if engine is None and not backends:
            raise CitationError(
                "a citation service needs an engine and/or explicit backends"
            )
        self.engine = engine
        # The service-level tracer; a context-local override (use_tracer,
        # which explain() relies on) still takes precedence — see tracer().
        self._tracer = tracer
        self.metrics = metrics or ServiceMetrics()
        self.plan_cache = PlanCache(maxsize=plan_cache_size)
        # Stale retention is opt-in (serve_stale): the degraded-serving
        # fallback needs token-mismatched entries to survive lookups, while
        # the default cache keeps its eager-eviction semantics untouched.
        self.result_cache: GenerationalLRU[Any] = GenerationalLRU(
            maxsize=result_cache_size, keep_stale=serve_stale
        )
        self.cache_results = cache_results
        # -- resilience: all default-off, each independently opt-in ----------
        # Admission control bounds concurrent execution; the retry policy
        # absorbs transient failures; serve_stale degrades to stamped stale
        # results under deadline/overload pressure; default_timeout applies a
        # per-request deadline when the request itself carries none.
        self.admission = (
            AdmissionController(max_inflight, queue_depth)
            if max_inflight is not None
            else None
        )
        self.retry_policy = retry_policy
        self.serve_stale = serve_stale
        self.default_timeout = default_timeout
        if self.admission is not None:
            self.metrics.register_gauge_source("admission", self.admission.snapshot)
        # CPU-derived bounded default, shared with the evaluator's shard
        # pool (repro.concurrency.default_worker_count) so the two pools
        # scale together instead of oversubscribing each other.
        self.max_workers = (
            max_workers if max_workers is not None else default_worker_count()
        )
        if self.max_workers < 1:
            raise CitationError(f"max_workers must be >= 1, got {self.max_workers}")
        self._compile_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._closed = False
        self.registry = BackendRegistry()
        if engine is not None:
            # Pluggable request parsing (the CLI injects a Datalog+SQL
            # parser); parse errors surface per request with the parser's own
            # message.
            self.registry.register(RelationalBackend(engine, parser=query_parser))
            self.registry.register(UnionBackend(engine))
        for backend in backends or ():
            self.registry.register(backend)
        self._count_mutation = lambda _kind, _relation, _row: self.metrics.increment(
            "mutations_observed"
        )
        if engine is not None:
            engine.database.add_mutation_listener(self._count_mutation)
            # Strategy picks, cost-model estimates vs. actuals and prelude
            # cache hit/miss rates, polled live at stats() time.
            self.metrics.register_gauge_source(
                "evaluation", engine.evaluation_metrics.snapshot
            )
            # Compile-time query analysis counters (minimizations, cache
            # hits, diagnostics), polled live at stats() time.
            self.metrics.register_gauge_source("analysis", engine.analysis_stats)
        # Startup lint: check the view set (and the policy wiring) before the
        # first request, so broken configurations surface at boot instead of
        # at request time.  Under the engine's strict analysis mode,
        # error-severity findings abort startup.
        self.startup_lint_report: AnalysisReport | None = None
        if startup_lint and engine is not None and engine.analysis != "off":
            report = analyze_view_set(
                engine.citation_views, engine.database.schema, engine.policy
            )
            self.startup_lint_report = report
            counts = report.counts()
            self.metrics.increment("lint_errors", counts["error"])
            self.metrics.increment("lint_warnings", counts["warning"])
            if engine.analysis == "strict" and report.has_errors:
                raise StaticAnalysisError(
                    "citation view set failed startup lint: "
                    + "; ".join(str(d) for d in report.errors),
                    report.errors,
                )

    # -- observability ---------------------------------------------------------
    def tracer(self) -> Tracer:
        """The tracer requests are recorded with right now.

        Resolution order: context-local override (:func:`use_tracer`, which
        :meth:`explain` installs around a single request), then the tracer
        given at construction, then the process-global one (disabled unless
        :func:`repro.observability.set_tracer` was called).
        """
        return get_tracer(self._tracer)

    def explain(
        self,
        request: CitationRequest | ConjunctiveQuery | str,
        mode: Mode | None = None,
    ) -> ExplainReport:
        """Serve *request* once with tracing forced on; return its trace.

        The request's EXPLAIN ANALYZE: the returned
        :class:`~repro.service.explain.ExplainReport` carries the response
        plus the full span tree — plan/result-cache outcomes, the strategy
        pick with its reason and cost estimate, per-join-step estimated vs.
        measured cardinalities, and the prelude-cache outcome.  The result
        cache is bypassed (via the request's ``no_result_cache`` metadata
        key) so the explained request actually executes; the plan cache is
        exercised normally, so explaining a warm query shape shows the hit.
        A bare query (or string) is wrapped in a relational-backend request
        like :meth:`cite` would.
        """
        if not isinstance(request, CitationRequest):
            request = self._cq_request(request, mode)
        request = replace(
            request,
            metadata={**dict(request.metadata), "no_result_cache": True},
        )
        capture = RingBufferSink(capacity=4)
        tracer = Tracer(sinks=[capture], slow_log=self.tracer().slow_log)
        with use_tracer(tracer):
            response = self.submit(request)
        return ExplainReport(response=response, trace=capture.last())

    def to_prometheus(self) -> str:
        """Metrics as Prometheus text exposition (see ``--stats-format``).

        Counters, per-backend events and latency histograms come from
        :class:`~repro.service.metrics.ServiceMetrics`; cache and engine
        state ride along as flattened gauges.
        """
        extra: dict[str, dict] = {
            "plan_cache": self.plan_cache.stats(),
            "result_cache": self.result_cache.stats(),
        }
        if self.engine is not None:
            generation, epoch = self.engine.plan_token()
            extra["engine"] = {"generation": generation, "cache_epoch": epoch}
        return self.metrics.to_prometheus(extra=extra)

    # -- backend management ----------------------------------------------------
    def register_backend(
        self, backend: CitationBackend, replace: bool = False
    ) -> CitationBackend:
        """Make *backend* routable by name (and by auto-routing)."""
        return self.registry.register(backend, replace=replace)

    def backend(self, name: str) -> CitationBackend:
        """The backend registered under *name*."""
        return self.registry.get(name)

    def capabilities(self) -> dict[str, dict]:
        """Capability summaries of every registered backend."""
        return self.registry.capabilities()

    # -- the unified request path ----------------------------------------------
    def submit(self, request: CitationRequest) -> CitationResponse:
        """Serve one citation request through routing and the caches.

        Never raises: errors (routing, parsing, compilation, execution) ride
        in the response — including use after :meth:`close`, which rides as a
        :class:`~repro.errors.CitationError`.  Call
        :meth:`CitationResponse.unwrap` to re-raise.
        """
        started = time.perf_counter()
        self.metrics.increment("requests")
        request = request.with_id()
        if self._closed:
            closed_error = CitationError(self._CLOSED_MESSAGE)
            self._count_error_response(closed_error)
            return CitationResponse(
                request=request,
                error=closed_error,
                error_code=error_code_for(closed_error),
                elapsed=time.perf_counter() - started,
            )
        try:
            backend = self.registry.route(request)
        except Exception as error:
            self._count_error_response(error)
            return CitationResponse(
                request=request,
                error=error,
                error_code=error_code_for(error),
                elapsed=time.perf_counter() - started,
            )
        self.metrics.increment_backend(backend.name, "requests")
        try:
            parsed = backend.parse(request)
            key = backend.fingerprint(parsed, request)
        except Exception as error:  # error isolation: report, never crash a batch
            self._count_error_response(error, backend)
            return CitationResponse(
                request=request,
                backend=backend.name,
                error=error,
                error_code=error_code_for(error),
                elapsed=time.perf_counter() - started,
            )
        return self._serve_routed(backend, request, parsed, key, started)

    def submit_batch(
        self,
        requests: Sequence[CitationRequest],
        timeout: float | None = None,
        max_workers: int | None = None,
    ) -> list[CitationResponse]:
        """Serve a batch concurrently with deduplication and error isolation.

        Requests that are structurally identical (same backend, fingerprint
        and cache variant) are executed once; the other members receive the
        same citations rebound to their own query.  *timeout* is a **response
        deadline for the batch**, measured from the call: any request not
        answered within *timeout* seconds yields a response carrying a
        :class:`TimeoutError`.  The budget also rides into each worker as a
        propagated :class:`~repro.resilience.deadline.Deadline`, so engine
        work past the deadline is cooperatively cancelled (a typed
        :class:`~repro.errors.DeadlineExceeded` response) instead of burning
        CPU to completion in the background; only workers blocked outside
        the engine's cancellation checkpoints fall back to the synthesised
        pool-timeout response.  The response list is positionally aligned
        with *requests*.
        """
        self._ensure_open()
        self.metrics.increment("batch_requests")
        if max_workers is not None and max_workers != self.max_workers:
            with self._batch_pool(max_workers) as executor:
                return self._submit_deduplicated(requests, executor, timeout)
        return self._submit_deduplicated(requests, self._pool(), timeout)

    # -- legacy conjunctive-query entry points ---------------------------------
    def _cq_request(
        self, query: ConjunctiveQuery | str, mode: Mode | None
    ) -> CitationRequest:
        return CitationRequest(query=query, backend="relational", mode=mode)

    @staticmethod
    def _to_service_response(
        response: CitationResponse, query: ConjunctiveQuery | str
    ) -> ServiceResponse:
        return ServiceResponse(
            query=query,
            result=response.result,
            error=response.error,
            elapsed=response.elapsed,
            cached=response.cached,
            fingerprint=response.fingerprint,
        )

    def cite(
        self, query: ConjunctiveQuery | str, mode: Mode | None = None
    ) -> CitedResult:
        """Serve one conjunctive-query citation request through the caches.

        Same contract as :meth:`CitationEngine.cite`, including raised
        errors; the first call for a query shape pays the full compile cost,
        repeats skip the rewriting search (plan hit) or everything
        (result hit).
        """
        return self.submit(self._cq_request(query, mode)).unwrap()

    def try_cite(
        self, query: ConjunctiveQuery | str, mode: Mode | None = None
    ) -> ServiceResponse:
        """Like :meth:`cite` but never raises: errors ride in the response."""
        return self._to_service_response(
            self.submit(self._cq_request(query, mode)), query
        )

    def plan_for(
        self, query: ConjunctiveQuery | str, mode: Mode | None = None
    ) -> tuple[CitationPlan, bool]:
        """The cached-or-compiled plan for *query* and whether it was a hit."""
        request = self._cq_request(query, mode)
        backend = self.registry.get("relational")
        parsed = backend.parse(request)
        key = backend.fingerprint(parsed, request)
        return self._plan(backend, request, parsed, key)

    def warm(
        self, queries: Iterable[ConjunctiveQuery | str], mode: Mode | None = None
    ) -> int:
        """Precompile plans for an expected workload; return the plan count."""
        compiled = 0
        for query in queries:
            _plan, hit = self.plan_for(query, mode)
            compiled += 0 if hit else 1
        return compiled

    def cite_batch(
        self, queries: Sequence[ConjunctiveQuery | str], mode: Mode | None = None
    ) -> list[CitedResult]:
        """Serve a batch sequentially, deduplicating identical queries.

        Structurally identical queries inside the batch (same fingerprint and
        mode) are executed once; the other members receive the same citations
        rebound to their own query text.  Errors propagate — use
        :meth:`cite_many` for error isolation.
        """
        self._ensure_open()
        self.metrics.increment("batch_requests")
        requests = [self._cq_request(query, mode) for query in queries]
        responses = self._submit_deduplicated(requests, executor=None, timeout=None)
        return [response.unwrap() for response in responses]

    def cite_many(
        self,
        queries: Sequence[ConjunctiveQuery | str],
        mode: Mode | None = None,
        timeout: float | None = None,
        max_workers: int | None = None,
    ) -> list[ServiceResponse]:
        """Serve a batch concurrently with per-request isolation.

        The conjunctive-query face of :meth:`submit_batch`: distinct query
        shapes run in parallel on a thread pool, duplicates within the batch
        share one execution, and a request that raises yields a response
        carrying the error.  The response list is positionally aligned with
        *queries*.
        """
        self._ensure_open()
        self.metrics.increment("batch_requests")
        requests = [self._cq_request(query, mode) for query in queries]
        if max_workers is not None and max_workers != self.max_workers:
            with self._batch_pool(max_workers) as executor:
                responses = self._submit_deduplicated(requests, executor, timeout)
        else:
            responses = self._submit_deduplicated(requests, self._pool(), timeout)
        return [
            self._to_service_response(response, query)
            for response, query in zip(responses, queries)
        ]

    # -- cache control ---------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached plans and results (rarely needed: tokens already
        invalidate stale entries lazily)."""
        self.plan_cache.invalidate()
        self.result_cache.invalidate()

    def stats(self) -> dict:
        """A JSON-friendly snapshot of metrics, caches and engine state."""
        snapshot = self.metrics.stats()
        snapshot["plan_cache"] = self.plan_cache.stats()
        snapshot["result_cache"] = self.result_cache.stats()
        snapshot["registered_backends"] = self.registry.names()
        tracer = self.tracer()
        if tracer.enabled:
            snapshot["tracing"] = tracer.stats()
            if tracer.slow_log is not None:
                snapshot["slow_queries"] = tracer.slow_log.snapshot()
        snapshot["workers"] = self.max_workers
        snapshot["resilience"] = {
            "admission": self.admission is not None,
            "max_inflight": None if self.admission is None else self.admission.max_inflight,
            "queue_depth": None if self.admission is None else self.admission.queue_depth,
            "retry": self.retry_policy is not None,
            "serve_stale": self.serve_stale,
            "default_timeout": self.default_timeout,
        }
        if self.engine is not None:
            generation, epoch = self.engine.plan_token()
            snapshot["engine"] = {
                "generation": generation,
                "cache_epoch": epoch,
                "mode": self.engine.mode,
                "strategy": self.engine.strategy,
                "analysis": self.engine.analysis,
                "citation_views": len(self.engine.citation_views),
                "workers": self.engine.workers
                if self.engine.workers is not None
                else default_worker_count(),
                "parallel_backend": self.engine.parallel_backend,
            }
        if self.startup_lint_report is not None:
            snapshot["startup_lint"] = self.startup_lint_report.as_dict()
        return snapshot

    #: The post-close contract in one place: closing detaches the mutation
    #: listener, so a resurrected pool would serve requests whose writes no
    #: longer count into ``mutations_observed`` — silently drifting the very
    #: metric the race suite reconciles.  Refusing loudly is the contract.
    _CLOSED_MESSAGE = (
        "this CitationService is closed: its worker pool was shut down and its "
        "mutation listener detached, so serving again would silently drift "
        "mutations_observed — construct a new service instead"
    )

    def close(self) -> None:
        """Shut down the worker pool and detach from the database.

        Idempotent, and **terminal**: a closed service refuses further
        serving (batch entry points raise :class:`CitationError`;
        :meth:`submit` returns it in the response) instead of lazily
        recreating the pool with the mutation listener gone.  The shutdown
        waits for in-flight work outside the lock, so a slow straggler
        cannot deadlock a concurrent caller probing :meth:`_pool`.
        """
        with self._executor_lock:
            already_closed = self._closed
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if not already_closed and self.engine is not None:
            self.engine.database.remove_mutation_listener(self._count_mutation)

    def __enter__(self) -> "CitationService":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise CitationError(self._CLOSED_MESSAGE)

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            # Checked under the same lock close() flips the flag with, so a
            # pool can never be resurrected after close() swapped it out.
            self._ensure_open()
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="citation-service",
                )
            return self._executor

    @contextlib.contextmanager
    def _batch_pool(self, max_workers: int):
        """An ad-hoc pool for one batch with an explicit worker override.

        Shut down with ``wait=False``: the batch *timeout* is a **response
        deadline**, so the call must return the moment every response is
        decided.  A ``with ThreadPoolExecutor(...)`` block would block on
        exit until timed-out stragglers finish — with ``timeout=2`` and one
        hung backend the batch would not return for the straggler's full
        runtime.  Letting stragglers finish in the background is safe: a
        straggler only writes through to the token-stamped result cache,
        exactly like the persistent pool's documented behaviour.
        """
        executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="citation-batch"
        )
        try:
            yield executor
        finally:
            executor.shutdown(wait=False)

    def _cache_key(
        self, backend: CitationBackend, key: str, request: CitationRequest
    ) -> Hashable:
        return (backend.name, key, backend.cache_variant(request))

    def _serve_routed(
        self,
        backend: CitationBackend,
        request: CitationRequest,
        parsed: Any,
        key: str,
        started: float | None = None,
    ) -> CitationResponse:
        """Serve an already routed, parsed and fingerprinted request.

        With tracing enabled, the whole request runs under a
        ``service.request`` *boundary* span — the root of the request's
        trace.  Boundary spans reach the slow-query log individually even
        when nested inside a batch span, so batch members compete for slow
        slots as requests, not as whole batches.

        The active tracer is also installed as the context-local override
        for the request's duration: the engine and evaluator layers resolve
        their tracer with a bare ``get_tracer()`` (they know nothing of the
        service), so a tracer passed to the service constructor must ride
        in the context to reach them.
        """
        tracer = self.tracer()
        if not tracer.enabled:
            return self._serve_routed_inner(backend, request, parsed, key, started)
        with use_tracer(tracer), tracer.span(
            "service.request",
            boundary=True,
            request_id=request.request_id,
            backend=backend.name,
            fingerprint=key,
            query=str(request.query).strip(),
        ) as span:
            response = self._serve_routed_inner(backend, request, parsed, key, started)
            span.set_attributes(
                cached=response.cached,
                elapsed_ms=round(response.elapsed * 1000.0, 3),
            )
            if response.row_count is not None:
                span.set_attribute("rows", response.row_count)
            if response.error is not None:
                span.set_attribute("error", repr(response.error))
            return response

    def _serve_routed_inner(
        self,
        backend: CitationBackend,
        request: CitationRequest,
        parsed: Any,
        key: str,
        started: float | None = None,
    ) -> CitationResponse:
        if started is None:
            started = time.perf_counter()
            self.metrics.increment("requests")
            self.metrics.increment_backend(backend.name, "requests")
        try:
            with self._request_deadline(request):
                result, cached, stale = self._admitted_through_caches(
                    backend, request, parsed, key
                )
        except Exception as error:
            self._count_error_response(error, backend)
            return CitationResponse(
                request=request,
                backend=backend.name,
                error=error,
                error_code=error_code_for(error),
                elapsed=time.perf_counter() - started,
                fingerprint=key,
            )
        elapsed = time.perf_counter() - started
        self.metrics.observe("request", elapsed)
        self.metrics.increment("responses")
        if stale:
            self.metrics.increment("stale_served")
            self.metrics.increment_backend(backend.name, "stale_served")
        return CitationResponse(
            request=request,
            backend=backend.name,
            result=result,
            citation=backend.citation_of(result),
            elapsed=elapsed,
            cached=cached,
            stale=stale,
            fingerprint=key,
            row_count=backend.row_count(result),
        )

    def _request_deadline(self, request: CitationRequest):
        """The deadline scope governing one request's execution.

        ``request.timeout`` (or the service's ``default_timeout``) becomes a
        propagated :class:`~repro.resilience.deadline.Deadline`; an ambient
        deadline (the batch budget installed by ``submit_batch``) still
        applies and nested scopes tighten, so a generous per-request timeout
        can never extend a batch deadline.
        """
        timeout = request.timeout if request.timeout is not None else self.default_timeout
        if timeout is None:
            return contextlib.nullcontext()
        return deadline_scope(Deadline.after(timeout))

    def _count_error_response(self, error: BaseException, backend: CitationBackend | None = None) -> None:
        """Count one materialised error response, split by failure class."""
        self.metrics.increment("errors")
        self.metrics.increment("responses")
        if backend is not None:
            self.metrics.increment_backend(backend.name, "errors")
        if isinstance(error, DeadlineExceeded):
            self.metrics.increment("errors_timeout")
        elif isinstance(error, Overloaded):
            self.metrics.increment("errors_shed")
        else:
            self.metrics.increment("errors_permanent")

    def _admitted_through_caches(
        self,
        backend: CitationBackend,
        request: CitationRequest,
        parsed: Any,
        key: str,
    ) -> tuple[Any, bool, bool]:
        """``_through_caches`` under admission control, with stale fallback.

        Returns ``(result, cached, stale)``.  Deadline or overload failures
        may degrade to a retained stale result-cache entry when the service
        was built with ``serve_stale=True``; everything else propagates.
        """
        admission = self.admission
        try:
            if admission is None:
                result, cached = self._through_caches(backend, request, parsed, key)
            else:
                service_started = time.monotonic()
                with admission.admit(current_deadline()):
                    result, cached = self._through_caches(
                        backend, request, parsed, key
                    )
                admission.record_service_time(time.monotonic() - service_started)
            return result, cached, False
        except (DeadlineExceeded, Overloaded) as error:
            fallback = self._stale_fallback(backend, request, parsed, key, error)
            if fallback is None:
                raise
            result, fresh = fallback
            if fresh:
                # The entry became valid concurrently (another worker just
                # cached it): a plain result-cache hit, not a degradation.
                self.metrics.increment("result_cache_hits")
                self.metrics.increment_backend(backend.name, "result_hits")
                return result, True, False
            return result, True, True

    def _stale_fallback(
        self,
        backend: CitationBackend,
        request: CitationRequest,
        parsed: Any,
        key: str,
        error: BaseException,
    ) -> tuple[Any, bool] | None:
        """A retained result-cache entry for *request*, or ``None``.

        Only consulted after a deadline/overload failure and only when the
        request would have been result-cacheable in the first place (no
        policy override, no ``no_result_cache`` opt-out).
        """
        if not self.serve_stale or not self.cache_results:
            return None
        if not backend.capabilities().supports_result_cache:
            return None
        if request.policy is not None or request.metadata.get("no_result_cache", False):
            return None
        cache_key = self._cache_key(backend, key, request)
        entry = self.result_cache.get_stale(cache_key, backend.result_token(request))
        if entry is None:
            return None
        value, fresh = entry
        tracer = self.tracer()
        if tracer.enabled:
            span = tracer.current_span()
            if span is not None:
                span.set_attributes(
                    stale_served=not fresh, stale_reason=error_code_for(error)
                )
        return backend.rebind(value, parsed, request), fresh

    def _through_caches(
        self,
        backend: CitationBackend,
        request: CitationRequest,
        parsed: Any,
        key: str,
    ) -> tuple[Any, bool]:
        capabilities = backend.capabilities()
        if request.policy is not None and not capabilities.supports_policy_override:
            raise CitationError(
                f"backend {backend.name!r} does not support per-request policy "
                "overrides"
            )
        cache_key = self._cache_key(backend, key, request)
        token = backend.result_token(request)
        # A policy override bypasses the result cache (cached results embed
        # the policy they were evaluated under); plans are policy-free.  A
        # request may also opt out via metadata — explain() does, so the
        # explained request actually executes.
        use_result_cache = (
            self.cache_results
            and capabilities.supports_result_cache
            and request.policy is None
            and not request.metadata.get("no_result_cache", False)
        )
        tracer = self.tracer()
        if use_result_cache:
            hit = self.result_cache.get(cache_key, token)
            if hit is not None:
                self.metrics.increment("result_cache_hits")
                self.metrics.increment_backend(backend.name, "result_hits")
                if tracer.enabled:
                    span = tracer.current_span()
                    if span is not None:
                        span.set_attribute("result_cache", "hit")
                return backend.rebind(hit, parsed, request), True
        if tracer.enabled:
            span = tracer.current_span()
            if span is not None:
                span.set_attribute(
                    "result_cache", "miss" if use_result_cache else "bypass"
                )
        if capabilities.supports_plan_cache:
            plan_span = tracer.span("service.plan") if tracer.enabled else NULL_SPAN
            with plan_span:
                plan, plan_hit = self._plan(backend, request, parsed, key)
                plan_span.set_attribute("plan_cache", "hit" if plan_hit else "miss")
        else:
            plan = backend.compile(parsed, request)
        execute_span = (
            tracer.span("service.execute", backend=backend.name)
            if tracer.enabled
            else NULL_SPAN
        )
        execute_started = time.perf_counter()
        # The fingerprint scope is always installed (one contextvar write):
        # it keys the evaluator's per-query estimate-vs-actual accumulation,
        # which must run with tracing off too.
        with execute_span, fingerprint_scope(key):
            result = self._execute_with_retry(backend, plan, parsed, request)
        self.metrics.observe("execute", time.perf_counter() - execute_started)
        self.metrics.increment("executions")
        self.metrics.increment_backend(backend.name, "executions")
        if use_result_cache:
            # Results always reflect the data: stamp with the token read at
            # request start, not the (possibly data-independent) plan stamp.
            self.result_cache.put(cache_key, result, token)
        return result, False

    def _execute_with_retry(
        self,
        backend: CitationBackend,
        plan: Any,
        parsed: Any,
        request: CitationRequest,
    ) -> Any:
        """One backend execution, retried under the configured policy.

        Only *transient* failures (see :func:`repro.errors.is_transient`) are
        retried, bounded by the request's remaining deadline; each absorbed
        retry is counted, so a spike of transient failures is visible even
        when every request ultimately succeeds.  The ``backend.execute``
        fault point lets the chaos suite inject failures exactly here.
        """

        def run() -> Any:
            faults.fire("backend.execute", key=backend.name)
            return backend.execute(plan, parsed, request)

        policy = self.retry_policy
        if policy is None:
            return run()
        tracer = self.tracer()

        def on_retry(attempt: int, error: BaseException) -> None:
            self.metrics.increment("errors_transient_retried")
            self.metrics.increment_backend(backend.name, "transient_retried")
            if tracer.enabled:
                span = tracer.current_span()
                if span is not None:
                    span.set_attributes(
                        retries=attempt, last_transient=error_code_for(error)
                    )

        return policy.call(run, deadline=current_deadline(), on_retry=on_retry)

    def _plan(
        self,
        backend: CitationBackend,
        request: CitationRequest,
        parsed: Any,
        key: str,
    ) -> tuple[Any, bool]:
        stamp = backend.plan_token(request)
        cache_key = self._cache_key(backend, key, request)
        plan = self.plan_cache.get(cache_key, stamp)
        if plan is not None:
            self.metrics.increment("plan_cache_hits")
            self.metrics.increment_backend(backend.name, "plan_hits")
            return plan, True
        # Single-flight compilation: concurrent identical misses compile once.
        with self._compile_lock:
            plan = self.plan_cache.get(cache_key, stamp)
            if plan is not None:
                self.metrics.increment("plan_cache_hits")
                self.metrics.increment_backend(backend.name, "plan_hits")
                return plan, True
            compile_started = time.perf_counter()
            plan = backend.compile(parsed, request)
            self.metrics.observe("compile", time.perf_counter() - compile_started)
            self.metrics.increment("plan_compilations")
            self.metrics.increment_backend(backend.name, "compilations")
            self.plan_cache.put(cache_key, plan, stamp)
        return plan, False

    #: How long past the batch deadline to wait for a cancelled worker to
    #: come home with its real DeadlineExceeded response before synthesising
    #: a pool-timeout response on its behalf.  Applied batch-wide (anchored
    #: to the deadline, not per future), so the worst case adds one grace to
    #: the batch, not one per straggler.  Workers running engine work hit a
    #: cancellation checkpoint within ~CHECK_STRIDE rows and beat this
    #: comfortably; only un-checkpointed backends (a blocking stub, real I/O)
    #: fall through to the synthesised response, exactly as before.
    _BATCH_CANCEL_GRACE = 0.1

    def _submit_deduplicated(
        self,
        requests: Sequence[CitationRequest],
        executor: ThreadPoolExecutor | None,
        timeout: float | None,
    ) -> list[CitationResponse]:
        tracer = self.tracer()
        if not tracer.enabled:
            return self._submit_deduplicated_inner(
                requests, executor, timeout, propagate=False
            )
        with tracer.span("service.batch", size=len(requests)) as span:
            responses = self._submit_deduplicated_inner(
                requests, executor, timeout, propagate=True
            )
            span.set_attribute(
                "errors", sum(1 for response in responses if not response.ok)
            )
            return responses

    def _submit_deduplicated_inner(
        self,
        requests: Sequence[CitationRequest],
        executor: ThreadPoolExecutor | None,
        timeout: float | None,
        propagate: bool,
    ) -> list[CitationResponse]:
        batch_started = time.monotonic()
        batch_deadline = (
            None if timeout is None else Deadline(batch_started + timeout)
        )
        responses: list[CitationResponse | None] = [None] * len(requests)
        prepared: list[tuple[CitationBackend, Any] | None] = [None] * len(requests)
        stamped = [request.with_id() for request in requests]
        groups: dict[Hashable, list[int]] = {}
        group_keys: dict[Hashable, str] = {}
        for index, request in enumerate(stamped):
            self.metrics.increment("requests")
            try:
                backend = self.registry.route(request)
            except Exception as error:  # unroutable request: isolate immediately
                self._count_error_response(error)
                responses[index] = CitationResponse(
                    request=request, error=error, error_code=error_code_for(error)
                )
                continue
            self.metrics.increment_backend(backend.name, "requests")
            try:
                parsed = backend.parse(request)
                key = backend.fingerprint(parsed, request)
            except Exception as error:  # malformed request: isolate immediately
                self._count_error_response(error, backend)
                responses[index] = CitationResponse(
                    request=request,
                    backend=backend.name,
                    error=error,
                    error_code=error_code_for(error),
                )
                continue
            prepared[index] = (backend, parsed)
            cache_key = self._cache_key(backend, key, request)
            if request.policy is not None:
                # A policy override produces citations other requests must
                # not share: never deduplicate it onto (or under) another
                # request's execution.
                cache_key = (cache_key, "policy", index)
            groups.setdefault(cache_key, []).append(index)
            group_keys[cache_key] = key

        # Concurrent (or inline) execution of one representative per group,
        # reusing the routing, parse and fingerprint work done while grouping.
        representatives = {
            cache_key: members[0] for cache_key, members in groups.items()
        }
        if propagate:
            batch_span = self.tracer().current_span()
            if batch_span is not None:
                batch_span.set_attribute("groups", len(groups))

        def serve_representative(cache_key: Hashable, index: int) -> CitationResponse:
            backend, parsed = prepared[index]  # type: ignore[misc]
            # The representative's "requests" counter was already bumped in
            # the grouping loop; _serve_routed must not double-count it.
            started = time.perf_counter()
            if batch_deadline is None:
                return self._serve_routed(
                    backend, stamped[index], parsed, group_keys[cache_key], started
                )
            # The batch budget rides into the worker as a propagated
            # deadline (thread pools do not inherit contextvars), so the
            # engine's cancellation checkpoints stop timed-out work instead
            # of letting it burn CPU to completion in the background.
            with deadline_scope(batch_deadline):
                return self._serve_routed(
                    backend, stamped[index], parsed, group_keys[cache_key], started
                )

        def submit_representative(
            submit_args: tuple, cache_key: Hashable, index: int
        ) -> Future:
            """Submit one representative, isolating submission failures.

            The ``service.pool_submit`` fault point fires here; an injected
            (or real — e.g. concurrent shutdown) submission failure becomes
            that representative's error response instead of aborting the
            whole batch with siblings already in flight.
            """
            try:
                faults.fire("service.pool_submit", key=index)
                return executor.submit(*submit_args, cache_key, index)
            except Exception as error:
                self._count_error_response(error)
                failed: Future = Future()
                failed.set_result(
                    CitationResponse(
                        request=stamped[index],
                        error=error,
                        error_code=error_code_for(error),
                        fingerprint=group_keys[cache_key],
                    )
                )
                return failed

        if executor is None:
            outcomes = {
                cache_key: serve_representative(cache_key, index)
                for cache_key, index in representatives.items()
            }
        else:
            deadline = None if timeout is None else batch_started + timeout
            if propagate:
                # Thread pools do not inherit contextvars, so the batch span
                # (and any use_tracer override) would be invisible to the
                # workers; ship each representative a copy of this context.
                # Skipped with tracing off — a context copy per request is
                # pure overhead then.
                futures: dict[Hashable, Future] = {
                    cache_key: submit_representative(
                        (contextvars.copy_context().run, serve_representative),
                        cache_key,
                        index,
                    )
                    for cache_key, index in representatives.items()
                }
            else:
                futures = {
                    cache_key: submit_representative(
                        (serve_representative,), cache_key, index
                    )
                    for cache_key, index in representatives.items()
                }
            outcomes = {}
            for cache_key, future in futures.items():
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                try:
                    outcomes[cache_key] = future.result(timeout=remaining)
                    continue
                except TimeoutError:
                    pass
                # The worker saw the same deadline and its cancellation
                # checkpoints are already unwinding it; grant one short,
                # batch-wide grace so it can come home with its real
                # DeadlineExceeded response (counted once) before we
                # synthesise a pool-timeout response on its behalf.
                grace = max(
                    0.0, deadline + self._BATCH_CANCEL_GRACE - time.monotonic()
                )
                try:
                    outcomes[cache_key] = future.result(timeout=grace)
                    continue
                except TimeoutError:
                    pass
                self.metrics.increment("timeouts")
                index = representatives[cache_key]
                timeout_error = TimeoutError(
                    f"citation request missed the batch deadline of "
                    f"{timeout:.3f}s"
                )
                outcomes[cache_key] = CitationResponse(
                    request=stamped[index],
                    error=timeout_error,
                    error_code=error_code_for(timeout_error),
                    elapsed=time.monotonic() - batch_started,
                    fingerprint=group_keys[cache_key],
                )

        for cache_key, members in groups.items():
            outcome = outcomes[cache_key]
            for position, index in enumerate(members):
                if position == 0:
                    responses[index] = outcome
                    continue
                # Deduplicated member: same citations, rebound to its query.
                self.metrics.increment("deduplicated")
                backend, parsed = prepared[index]  # type: ignore[misc]
                self.metrics.increment_backend(backend.name, "deduplicated")
                if outcome.ok and outcome.result is not None:
                    result = backend.rebind(outcome.result, parsed, stamped[index])
                    responses[index] = CitationResponse(
                        request=stamped[index],
                        backend=outcome.backend,
                        result=result,
                        citation=backend.citation_of(result),
                        elapsed=outcome.elapsed,
                        cached=True,
                        stale=outcome.stale,
                        fingerprint=outcome.fingerprint,
                        row_count=backend.row_count(result),
                    )
                else:
                    responses[index] = CitationResponse(
                        request=stamped[index],
                        backend=outcome.backend,
                        error=outcome.error,
                        error_code=outcome.error_code,
                        elapsed=outcome.elapsed,
                        fingerprint=outcome.fingerprint,
                    )
        return [response for response in responses if response is not None]
