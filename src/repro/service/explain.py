"""EXPLAIN ANALYZE for the citation service.

:meth:`CitationService.explain` serves one request with tracing forced on and
wraps the outcome in an :class:`ExplainReport`: the ordinary response next to
the request's full trace tree.  The trace *is* the annotated plan — service
spans carry the cache outcomes, the engine spans the rewriting counts, the
evaluation spans the strategy pick (with reason and cost estimate) and the
``join.step`` children the per-step estimated vs. measured cardinalities —
so rendering it (:func:`repro.observability.render.render_trace`) yields the
per-step plan text the CLI ``explain`` subcommand prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.observability import render_trace

if TYPE_CHECKING:
    from repro.api.envelope import CitationResponse
    from repro.observability.tracer import TraceSpan

__all__ = ["ExplainReport"]


@dataclass
class ExplainReport:
    """One explained request: its response plus the captured trace tree.

    ``trace`` is the request's root span (``None`` only if the request
    failed before any span opened — e.g. an unroutable backend name).
    """

    response: "CitationResponse"
    trace: "TraceSpan | None"

    @property
    def ok(self) -> bool:
        return self.response.ok

    def to_text(self) -> str:
        """The EXPLAIN ANALYZE rendering: a header plus the span tree."""
        response = self.response
        lines = [
            f"query: {str(response.request.query).strip()}",
            f"backend: {response.backend}",
            f"fingerprint: {response.fingerprint}",
            f"elapsed: {response.elapsed * 1000.0:.3f}ms",
        ]
        if response.row_count is not None:
            lines.append(f"rows: {response.row_count}")
        lines.append(f"cached: {response.cached}")
        if response.error is not None:
            lines.append(f"error: {response.error!r}")
        if self.trace is not None:
            lines.append("")
            lines.append(render_trace(self.trace))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly payload: the response summary plus the trace."""
        payload: dict[str, Any] = {"response": self.response.to_payload()}
        payload["trace"] = None if self.trace is None else self.trace.to_dict()
        return payload
