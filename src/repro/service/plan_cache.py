"""A generation-stamped LRU cache for compiled citation plans.

The cache never serves stale data: every entry is stamped with the engine's
:meth:`~repro.core.engine.CitationEngine.plan_token` at insertion time — the
pair ``(database generation, engine cache epoch)``.  Any insert/delete on the
database bumps the generation, and any forced ``invalidate_caches()`` bumps
the epoch, so a lookup whose current token differs from the stored stamp is a
miss and evicts the entry.  There is deliberately no time-based expiry: plans
only go stale when the data or the views change, and the token captures
exactly that.

:class:`GenerationalLRU` is the generic mechanism (also used for the
result cache of :class:`~repro.service.service.CitationService`);
:class:`PlanCache` is its plan-flavoured face.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Hashable
from typing import Generic, TypeVar

from repro.concurrency import shared_state
from repro.core.engine import CitationPlan

__all__ = ["CacheInfo", "GenerationalLRU", "PlanCache"]

V = TypeVar("V")


@dataclass
class CacheInfo:
    """Counters describing the behaviour of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate(), 4),
        }


@shared_state("_entries", "_info", lock="_lock")
class GenerationalLRU(Generic[V]):
    """A thread-safe LRU cache whose entries carry a validity token.

    ``get`` returns ``None`` either when the key is absent (a miss) or when
    the stored token no longer matches the caller's current token (an
    invalidation: the entry is dropped and counted separately, so hit-rate
    statistics distinguish capacity misses from staleness).

    ``keep_stale=True`` opts into *stale retention*: a token-mismatched
    ``get`` still counts an invalidation and a miss, but leaves the entry in
    place so :meth:`get_stale` can serve it later as a degraded answer (the
    citation service's ``serve_stale`` fallback under deadline or overload
    pressure).  The default drops mismatched entries eagerly, exactly as
    before — existing caches see identical eviction and invalidation counts.
    """

    def __init__(self, maxsize: int = 256, keep_stale: bool = False) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.keep_stale = keep_stale
        self._entries: OrderedDict[Hashable, tuple[Hashable, V]] = OrderedDict()
        self._lock = threading.RLock()
        self._info = CacheInfo()

    def get(self, key: Hashable, token: Hashable) -> V | None:
        """Return the cached value for *key* if present and still current."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._info.misses += 1
                return None
            stored_token, value = entry
            if stored_token != token:
                if not self.keep_stale:
                    del self._entries[key]
                self._info.invalidations += 1
                self._info.misses += 1
                return None
            self._entries.move_to_end(key)
            self._info.hits += 1
            return value

    def get_stale(self, key: Hashable, token: Hashable) -> tuple[V, bool] | None:
        """Return ``(value, fresh)`` for *key* regardless of token validity.

        The degraded-serving accessor: where :meth:`get` refuses
        token-mismatched entries, this returns whatever is stored — ``fresh``
        tells the caller whether the stamp still matches *token*.  Does not
        touch hit/miss counters or LRU order (a stale serve should neither
        look like a cache hit nor keep a dead entry warm); returns ``None``
        only when the key is absent entirely.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            stored_token, value = entry
            return value, stored_token == token

    def put(self, key: Hashable, value: V, token: Hashable) -> None:
        """Insert (or refresh) *key* with a validity stamp of *token*."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (token, value)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._info.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry; return how many were removed."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._info.invalidations += dropped
            return dropped

    def prune(self, token: Hashable) -> int:
        """Drop entries whose stamp differs from *token*; return the count."""
        with self._lock:
            stale = [
                key
                for key, (stored_token, _value) in self._entries.items()
                if stored_token != token
            ]
            for key in stale:
                del self._entries[key]
            self._info.invalidations += len(stale)
            return len(stale)

    def info(self) -> CacheInfo:
        """A consistent copy of the cache counters, taken under the lock."""
        with self._lock:
            return CacheInfo(
                hits=self._info.hits,
                misses=self._info.misses,
                evictions=self._info.evictions,
                invalidations=self._info.invalidations,
            )

    def stats(self) -> dict[str, int | float]:
        """Counters plus occupancy, as a plain dict (for ``stats()`` output)."""
        with self._lock:
            out = self._info.as_dict()
            out["size"] = len(self._entries)
            out["maxsize"] = self.maxsize
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries


class PlanCache(GenerationalLRU[CitationPlan]):
    """LRU of :class:`~repro.core.engine.CitationPlan`, keyed by
    ``(fingerprint, mode)``.

    A hit means the whole rewriting search (and economical selection) is
    skipped; the plan's own stamp (``plan.token``) is used at insertion so a
    plan compiled against an older database state can never be returned.
    """

    def store(self, key: Hashable, plan: CitationPlan) -> None:
        """Insert *plan* stamped with the token it was compiled under."""
        self.put(key, plan, plan.token)
