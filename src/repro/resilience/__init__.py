"""Resilience substrate: deadlines, admission control, retries, fault injection.

Four small, separately usable pieces that together let the serving stack
survive overload, slow queries, and dying workers:

- :mod:`~repro.resilience.deadline` — a contextvar-propagated
  :class:`~repro.resilience.deadline.Deadline` with cooperative cancellation
  checkpoints down in the join loops, so a timed-out request stops burning
  CPU instead of finishing in the background.
- :mod:`~repro.resilience.admission` — an
  :class:`~repro.resilience.admission.AdmissionController` bounding in-flight
  requests and the wait queue, shedding the rest with a typed
  :class:`~repro.errors.Overloaded` plus a retry-after hint.
- :mod:`~repro.resilience.retry` — a
  :class:`~repro.resilience.retry.RetryPolicy` (exponential backoff,
  decorrelated jitter) driven by the transient/permanent taxonomy in
  :mod:`repro.errors`.
- :mod:`~repro.resilience.faults` — a deterministic, seed-driven
  fault-injection registry with named points at every concurrency boundary,
  powering the ``pytest -m chaos`` suite.
"""

from . import faults
from .admission import AdmissionController
from .deadline import Deadline, current_deadline, deadline_scope
from .retry import RetryPolicy

__all__ = [
    "AdmissionController",
    "Deadline",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
    "faults",
]
