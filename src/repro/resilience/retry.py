"""Retry policy: exponential backoff with decorrelated jitter.

Retries are only safe and only useful for *transient* failures — conditions
of the system, not the request (see :func:`repro.errors.is_transient`).
:class:`RetryPolicy` encapsulates the three decisions every retry loop gets
subtly wrong when hand-rolled: **whether** to retry (the taxonomy), **how
long** to wait (decorrelated jitter, so synchronized clients decohere
instead of retrying in lockstep), and **when to give up** (attempt budget,
and never sleeping past the request's deadline — a retry that cannot finish
in time is abandoned immediately).

The jitter follows the "decorrelated" scheme: each sleep is drawn uniformly
from ``[base, prev * 3]`` capped at ``max_delay``, seeded via
``random.Random(seed)`` so chaos tests replay byte-identical schedules.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from typing import TypeVar

from ..errors import is_transient
from .deadline import Deadline

__all__ = ["RetryPolicy"]

_T = TypeVar("_T")


class RetryPolicy:
    """Bounded retry of transient failures with decorrelated-jitter backoff.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (1 disables retrying).
    base_delay:
        Lower bound of every backoff sleep, seconds.
    max_delay:
        Upper bound of every backoff sleep, seconds.
    seed:
        Seeds the jitter RNG; fixed seeds make retry schedules
        deterministic for tests.
    classify:
        Predicate deciding retryability; defaults to
        :func:`repro.errors.is_transient`.

    Instances are immutable after construction apart from the RNG, which is
    only touched inside :meth:`call`; each call draws its own schedule, so a
    policy may be shared across threads (``random.Random`` is internally
    locked).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        max_delay: float = 0.5,
        seed: int | None = None,
        classify: Callable[[BaseException], bool] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got {base_delay}, {max_delay}"
            )
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self._random = random.Random(seed)
        self._classify = classify or is_transient

    def call(
        self,
        fn: Callable[[], _T],
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> _T:
        """Run *fn*, retrying transient failures up to the attempt budget.

        *on_retry* is invoked with ``(attempt, error)`` before each backoff
        sleep — the service uses it to count ``errors_transient_retried``
        and annotate the trace.  Permanent errors, exhausted budgets, and
        sleeps that would overrun *deadline* all re-raise the last error.
        """
        prev_delay = self.base_delay
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as error:  # noqa: BLE001 - classified below
                if attempt >= self.max_attempts or not self._classify(error):
                    raise
                delay = self._next_delay(prev_delay)
                prev_delay = delay
                if deadline is not None and deadline.remaining() <= delay:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                if delay > 0.0:
                    time.sleep(delay)
        raise AssertionError("unreachable: loop returns or raises")

    def _next_delay(self, prev_delay: float) -> float:
        """One decorrelated-jitter draw: uniform in [base, prev*3], capped."""
        upper = max(self.base_delay, prev_delay * 3.0)
        return min(self.max_delay, self._random.uniform(self.base_delay, upper))
