"""Deterministic, seed-driven fault injection for the chaos suite.

Production code calls :func:`fire` at **named injection points** — the five
places where the serving stack crosses a concurrency or process boundary and
failures actually happen:

================================= ==============================================
point                             fired from
================================= ==============================================
``service.pool_submit``           batch worker-pool submission
``backend.execute``               just before the backend executes a request
``shard.execute``                 inside each shard worker, before its frames run
``fork.child``                    inside a forked shard child (key = shard index)
``prelude.build``                 before a semi-join prelude refresh
================================= ==============================================

With no faults armed, :func:`fire` is a truthiness test on an empty dict —
cheap enough to leave compiled in.  Tests arm faults through
:func:`inject`/:func:`plan`: a :class:`FaultSpec` names its point and what
happens on a hit (raise a typed error, stall, or ``os._exit`` — the latter
only useful at ``fork.child``, where it simulates a worker crash the parent
must survive).  ``after``/``times`` select *which* hits fire and
``probability`` draws from a ``random.Random(seed)``, so a chaos run is a
pure function of its seed — every failure it finds replays exactly.

Forked children inherit the armed registry copy-on-write, which is exactly
what ``fork.child`` needs: the parent arms the fault, the child trips it.
Per-spec hit counters are process-local, so specs targeting a single forked
child should select by ``key`` (the shard index), not by hit count.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..concurrency import shared_state

__all__ = ["FaultSpec", "FaultRegistry", "fire", "inject", "clear", "plan", "registry"]

#: The injection points production code fires.  ``inject`` validates against
#: this list so a typo in a chaos test fails loudly instead of never firing.
POINTS = (
    "service.pool_submit",
    "backend.execute",
    "shard.execute",
    "fork.child",
    "prelude.build",
)


@dataclass
class FaultSpec:
    """One armed fault: where it fires, what it does, and which hits trip it.

    Exactly one effect should be set: *error* (an exception instance or
    zero-arg factory) is raised at the injection point, *stall* sleeps that
    many seconds (simulating a hung dependency — checkpoints downstream still
    poll the deadline), *exit_status* calls ``os._exit`` (only meaningful at
    ``fork.child``).  *key*, when set, restricts the fault to hits fired
    with a matching key (e.g. one specific shard).  *after* skips that many
    matching hits first; *times* bounds how often the fault fires
    (``None`` = unlimited); *probability* gates each firing on the
    registry's seeded RNG.
    """

    point: str
    error: BaseException | type[BaseException] | None = None
    stall: float = 0.0
    exit_status: int | None = None
    key: object | None = None
    after: int = 0
    times: int | None = None
    probability: float = 1.0
    # Mutable per-process bookkeeping (guarded by the registry lock).
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)


@shared_state("_specs", lock="_lock")
class FaultRegistry:
    """Holds the armed :class:`FaultSpec` list and evaluates hits.

    One process-wide instance lives in this module; tests reach it through
    the module-level helpers.  Spec bookkeeping mutates under ``_lock``; the
    effects themselves (raise / sleep / exit) run outside it so a stalling
    fault cannot serialize unrelated injection points.
    """

    def __init__(self, seed: int = 0) -> None:
        self._lock = threading.Lock()
        self._specs: dict[str, list[FaultSpec]] = {}
        self._random = _SeededRandom(seed)

    # -- arming --------------------------------------------------------------
    def inject(self, spec: FaultSpec) -> FaultSpec:
        """Arm *spec*; returns it so tests can read its counters later."""
        if spec.point not in POINTS:
            raise ValueError(
                f"unknown fault point {spec.point!r}; known points: {', '.join(POINTS)}"
            )
        with self._lock:
            self._specs.setdefault(spec.point, []).append(spec)
        return spec

    def clear(self) -> None:
        """Disarm everything and reseed, returning to the idle fast path."""
        with self._lock:
            self._specs = {}

    def reseed(self, seed: int) -> None:
        """Restart the probability RNG from *seed* (for replaying a run)."""
        with self._lock:
            self._random = _SeededRandom(seed)

    @contextmanager
    def plan(self, *specs: FaultSpec, seed: int | None = None) -> Iterator[tuple[FaultSpec, ...]]:
        """Arm *specs* for the duration of the block, disarming on exit."""
        if seed is not None:
            self.reseed(seed)
        for spec in specs:
            self.inject(spec)
        try:
            yield specs
        finally:
            self.clear()

    # -- firing --------------------------------------------------------------
    def fire(self, point: str, key: object | None = None) -> None:
        """Evaluate every armed spec at *point*; apply the first that trips.

        Called from production code.  Returns instantly when nothing is
        armed (the permanent state outside chaos tests).
        """
        if not self._specs:
            return
        effect: FaultSpec | None = None
        with self._lock:
            for spec in self._specs.get(point, ()):
                if spec.key is not None and spec.key != key:
                    continue
                spec.hits += 1
                if spec.hits <= spec.after:
                    continue
                if spec.times is not None and spec.fired >= spec.times:
                    continue
                if spec.probability < 1.0 and not self._random.trips(spec.probability):
                    continue
                spec.fired += 1
                effect = spec
                break
        if effect is None:
            return
        if effect.stall > 0.0:
            time.sleep(effect.stall)
        if effect.error is not None:
            error = effect.error() if isinstance(effect.error, type) else effect.error
            raise error
        if effect.exit_status is not None:
            os._exit(effect.exit_status)


class _SeededRandom:
    """Tiny deterministic PRNG (xorshift) for probability gates.

    ``random.Random`` would work, but a 3-shift xorshift keeps the armed
    fast path allocation-free and makes the draw sequence trivially
    reproducible across python versions.
    """

    def __init__(self, seed: int) -> None:
        self._state = (seed or 1) & 0xFFFFFFFF

    def trips(self, probability: float) -> bool:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return (x / 0xFFFFFFFF) < probability


#: Process-wide registry; chaos tests arm it, production code fires it.
_REGISTRY = FaultRegistry()


def registry() -> FaultRegistry:
    """The process-wide fault registry."""
    return _REGISTRY


def fire(point: str, key: object | None = None) -> None:
    """Fire injection point *point* on the process-wide registry."""
    _REGISTRY.fire(point, key)


def inject(spec: FaultSpec) -> FaultSpec:
    """Arm *spec* on the process-wide registry."""
    return _REGISTRY.inject(spec)


def clear() -> None:
    """Disarm the process-wide registry."""
    _REGISTRY.clear()


@contextmanager
def plan(*specs: FaultSpec, seed: int | None = None) -> Iterator[tuple[FaultSpec, ...]]:
    """Arm *specs* on the process-wide registry for the block's duration."""
    with _REGISTRY.plan(*specs, seed=seed) as armed:
        yield armed
