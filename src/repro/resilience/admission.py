"""Admission control: bounded in-flight requests plus a bounded wait queue.

Under overload a service has exactly three honest options per request: run
it, queue it, or refuse it *now* with a hint about when to come back.
:class:`AdmissionController` implements that triage for
:class:`~repro.service.service.CitationService`.  Up to ``max_inflight``
requests execute concurrently; up to ``queue_depth`` more wait on a
condition variable (bounded further by each waiter's own deadline); anything
past both bounds is shed immediately with a typed
:class:`~repro.errors.Overloaded` carrying a ``retry_after`` derived from
observed service times — refusing cheaply is the whole point, a shed request
must not consume the capacity it is being protected from.

Disabled (``max_inflight=None``) the controller is never constructed, so the
default service path pays nothing.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager

from ..concurrency import shared_state
from ..errors import Overloaded
from .deadline import Deadline

__all__ = ["AdmissionController"]

#: Fallback retry-after hint (seconds) before any request has completed.
_DEFAULT_RETRY_AFTER = 0.05

#: Exponential-moving-average weight for the observed service time.
_EMA_ALPHA = 0.2


@shared_state("_inflight", "_queued", "_shed", "_admitted", "_mean_service_s", lock="_lock")
class AdmissionController:
    """Bounded concurrency gate with load shedding and a retry-after hint.

    Parameters
    ----------
    max_inflight:
        Requests allowed to execute concurrently.  Must be >= 1.
    queue_depth:
        Requests allowed to wait for a slot beyond ``max_inflight``.  0 means
        shed the instant all slots are busy.
    """

    def __init__(self, max_inflight: int, queue_depth: int = 0) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_inflight = int(max_inflight)
        self.queue_depth = int(queue_depth)
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self._shed = 0
        self._admitted = 0
        self._mean_service_s = 0.0

    # -- admission -----------------------------------------------------------
    @contextmanager
    def admit(self, deadline: Deadline | None = None) -> Iterator[None]:
        """Hold one execution slot for the duration of the block.

        Sheds with :class:`~repro.errors.Overloaded` when both the slots and
        the queue are full, or when this waiter's *deadline* expires before a
        slot frees up (a queued request that can no longer finish in time is
        shed, not run — running it would waste the slot on a guaranteed
        timeout).
        """
        with self._lock:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._admitted += 1
            else:
                if self._queued >= self.queue_depth:
                    self._shed += 1
                    raise Overloaded(
                        f"admission queue full ({self._inflight} in flight, "
                        f"{self._queued} queued)",
                        retry_after=self._retry_after_locked(),
                    )
                self._queued += 1
                try:
                    self._wait_for_slot_locked(deadline)
                finally:
                    self._queued -= 1
                self._inflight += 1
                self._admitted += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                self._slot_freed.notify()

    def _wait_for_slot_locked(self, deadline: Deadline | None) -> None:
        """Block until an in-flight slot is free; shed on deadline expiry."""
        while self._inflight >= self.max_inflight:
            wait_s = deadline.remaining() if deadline is not None else None
            if wait_s is not None and wait_s <= 0.0:
                self._shed += 1
                raise Overloaded(
                    "deadline expired while queued for admission",
                    retry_after=self._retry_after_locked(),
                )
            if not self._slot_freed.wait(timeout=wait_s):
                self._shed += 1
                raise Overloaded(
                    "deadline expired while queued for admission",
                    retry_after=self._retry_after_locked(),
                )

    # -- feedback ------------------------------------------------------------
    def record_service_time(self, seconds: float) -> None:
        """Fold one completed request's duration into the retry-after hint."""
        with self._lock:
            if self._mean_service_s == 0.0:
                self._mean_service_s = seconds
            else:
                self._mean_service_s += _EMA_ALPHA * (seconds - self._mean_service_s)

    def _retry_after_locked(self) -> float:
        """Hint: roughly one queue-drain of mean service times, floor 50ms."""
        mean = self._mean_service_s or _DEFAULT_RETRY_AFTER
        backlog = self._queued + 1
        return max(_DEFAULT_RETRY_AFTER, mean * backlog)

    # -- introspection -------------------------------------------------------
    def snapshot(self) -> dict[str, int | float]:
        """Point-in-time gauge block for ``ServiceMetrics`` / ``stats()``."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "inflight": self._inflight,
                "queued": self._queued,
                "admitted": self._admitted,
                "shed": self._shed,
                "mean_service_ms": self._mean_service_s * 1000.0,
            }

    @property
    def inflight(self) -> int:
        """Requests currently holding an execution slot."""
        with self._lock:
            return self._inflight
