"""Propagated request deadlines with cooperative cancellation.

A :class:`Deadline` is an absolute point on the monotonic clock.  The serving
layer creates one per request (from ``CitationRequest.timeout`` or a
``submit_batch`` budget) and installs it with :func:`deadline_scope`; the
engine, evaluator, prelude passes and compiled join loops — several import
layers down — read it back with :func:`current_deadline` and poll
:meth:`Deadline.check` at their cancellation checkpoints.  The moment the
deadline passes, the checkpoint raises
:class:`~repro.errors.DeadlineExceeded` and the request unwinds instead of
finishing in the background (the pre-resilience ``submit_batch`` failure
mode: the future timed out but the worker kept burning CPU to completion).

The clock is ``time.monotonic()``: absolute deadlines survive ``os.fork``
(the shard backend) because parent and children share the monotonic epoch,
and wall-clock adjustments cannot extend or shorten a request's budget.

Checkpoint cost matters — the innermost join loops run per *row*.
:meth:`Deadline.checker` returns a closure that only consults the clock
every ``stride`` calls, so an installed deadline costs an integer increment
per row and an idle one (``cancel is None``) costs a single predicate test.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar

from ..errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
]

#: How many checkpoint hits between monotonic-clock reads in a rate-limited
#: checker.  Powers of two keep the modulo a masked AND under CPython's
#: small-int fast path; 64 bounds overshoot to ~tens of microseconds of row
#: work while keeping clock-read overhead well under the 5% idle gate (E23).
CHECK_STRIDE = 64

_CURRENT_DEADLINE: ContextVar["Deadline | None"] = ContextVar(
    "repro_current_deadline", default=None
)


class Deadline:
    """An absolute monotonic-clock expiry shared by one request's whole tree.

    Immutable after construction; safe to read from any thread or forked
    child without a lock.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline *seconds* from now on the monotonic clock."""
        return cls(time.monotonic() + max(0.0, float(seconds)))

    def remaining(self) -> float:
        """Seconds left before expiry; never negative."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return time.monotonic() >= self.expires_at

    def check(self, where: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired.

        *where* names the checkpoint (``"join-loop"``, ``"shard"``, ...) and
        lands in the exception and therefore in traces and the slow-query
        log, so operators can see how far cancelled requests got.
        """
        if time.monotonic() >= self.expires_at:
            raise DeadlineExceeded(where)

    def checker(self, where: str, stride: int = CHECK_STRIDE) -> Callable[[], None]:
        """A rate-limited checkpoint closure for per-row call sites.

        The closure reads the clock only every *stride* calls; in between it
        costs one integer increment.  Each call site (each shard, each
        prelude pass) builds its own checker, so the counter needs no lock.
        """
        expires_at = self.expires_at
        monotonic = time.monotonic
        calls = 0

        def check() -> None:
            nonlocal calls
            calls += 1
            if calls % stride == 0 and monotonic() >= expires_at:
                raise DeadlineExceeded(where)

        return check

    def union(self, other: "Deadline | None") -> "Deadline":
        """The tighter of this deadline and *other* (``None`` means no bound)."""
        if other is None or self.expires_at <= other.expires_at:
            return self
        return other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def current_deadline() -> Deadline | None:
    """The deadline governing the current request (``None`` outside one)."""
    return _CURRENT_DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[None]:
    """Install *deadline* for everything inside the block.

    Nested scopes tighten: if an ambient deadline is already installed, the
    effective deadline is the earlier of the two, so a per-request timeout
    can never extend a batch-level budget.  The token is reset on exit —
    worker-pool threads are long-lived, so a leaked deadline would cancel
    the thread's next request.
    """
    ambient = _CURRENT_DEADLINE.get()
    effective = deadline.union(ambient) if deadline is not None else ambient
    token = _CURRENT_DEADLINE.set(effective)
    try:
        yield
    finally:
        _CURRENT_DEADLINE.reset(token)
