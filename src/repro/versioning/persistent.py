"""Persistent, resolvable citations (the fixity mechanism).

A :class:`PersistentCitation` packages everything needed to retrieve the data
exactly as it was cited: the query text, the database version, the version's
content hash and the human-readable citation snippets.  A
:class:`CitationResolver` re-executes the query against the pinned version
and checks the content hash, so a reader can verify that the retrieved data
matches the citation even though the live database has moved on.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.citation import Citation
from repro.core.citation_view import CitationView
from repro.core.engine import CitationEngine, CitedResult
from repro.core.policy import CitationPolicy
from repro.errors import VersionError
from repro.query.parser import parse_query
from repro.versioning.version_store import VersionedDatabase


@dataclass(frozen=True)
class PersistentCitation:
    """A citation that can be stored, exchanged and later re-resolved."""

    query_text: str
    version_id: int
    version_timestamp: str
    content_hash: str
    citation_json: str

    def citation(self) -> Citation:
        """The human-facing citation snippets (without re-resolving the data)."""
        payload = json.loads(self.citation_json)
        from repro.core.record import CitationRecord

        records = frozenset(CitationRecord(fields) for fields in payload["records"])
        return Citation(
            records,
            query_text=self.query_text,
            version=str(self.version_id),
            timestamp=self.version_timestamp,
        )

    def to_json(self) -> str:
        """Serialise the persistent citation (e.g. to store in a reference manager)."""
        return json.dumps(
            {
                "query": self.query_text,
                "version": self.version_id,
                "timestamp": self.version_timestamp,
                "content_hash": self.content_hash,
                "citation": json.loads(self.citation_json),
            },
            indent=2,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "PersistentCitation":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return PersistentCitation(
            query_text=payload["query"],
            version_id=payload["version"],
            version_timestamp=payload["timestamp"],
            content_hash=payload["content_hash"],
            citation_json=json.dumps(payload["citation"]),
        )


class CitationResolver:
    """Creates and resolves persistent citations against a versioned database."""

    def __init__(
        self,
        versioned: VersionedDatabase,
        citation_views: Sequence[CitationView],
        policy: CitationPolicy | None = None,
        max_cached_engines: int = 8,
    ) -> None:
        self.versioned = versioned
        self.citation_views = list(citation_views)
        self.policy = policy or CitationPolicy.default()
        # Committed versions are immutable, so the materialised database and
        # the engine built over it stay valid forever — memoize them to make
        # repeated time-travel requests against one version cheap.  Each
        # entry holds a full materialised copy of the data, so the cache is
        # LRU-bounded (unlike the cheap plan/result caches of the service).
        self.max_cached_engines = max(1, max_cached_engines)
        self._engines: OrderedDict[int, CitationEngine] = OrderedDict()

    def engine_for(self, version_id: int) -> CitationEngine:
        """The (memoized) citation engine pinned to one committed version."""
        engine = self._engines.get(version_id)
        if engine is None:
            database = self.versioned.materialize(version_id)
            engine = CitationEngine(
                database,
                self.citation_views,
                policy=self.policy,
                on_no_rewriting="fallback",
            )
            self._engines[version_id] = engine
            while len(self._engines) > self.max_cached_engines:
                self._engines.popitem(last=False)
        else:
            self._engines.move_to_end(version_id)
        return engine

    # Backwards-compatible alias (pre-API-redesign name).
    _engine_for = engine_for

    def persistent_from_result(
        self, query_text: str, version_id: int, result: CitedResult
    ) -> PersistentCitation:
        """Package an already-computed cited result as a persistent citation."""
        version = self.versioned.version(version_id)
        payload = {
            "records": [record.as_dict() for record in result.citation.sorted_records()]
        }
        return PersistentCitation(
            query_text=query_text,
            version_id=version.version_id,
            version_timestamp=version.timestamp,
            content_hash=version.content_hash,
            citation_json=json.dumps(payload, default=_jsonable, sort_keys=True),
        )

    # -- creating persistent citations -------------------------------------------------
    def cite_current(self, query_text: str) -> PersistentCitation:
        """Cite *query_text* against the latest committed version."""
        version = self.versioned.current_version
        return self.cite_at(query_text, version.version_id)

    def cite_at(self, query_text: str, version_id: int) -> PersistentCitation:
        """Cite *query_text* against a specific committed version.

        One-shot convenience — prefer
        :meth:`repro.service.CitationService.submit` with the ``"versioned"``
        backend for serving workloads, which caches plans and results per
        pinned version.
        """
        result = self.engine_for(version_id).cite(parse_query(query_text))
        return self.persistent_from_result(query_text, version_id, result)

    # -- resolving ----------------------------------------------------------------------
    def resolve(self, persistent: PersistentCitation, verify: bool = True) -> CitedResult:
        """Re-execute the cited query against the pinned version.

        With ``verify=True`` the reconstructed version's content hash must
        match the one recorded in the citation, otherwise :class:`VersionError`
        is raised — this is the fixity guarantee.
        """
        version = self.versioned.version(persistent.version_id)
        if verify:
            database = self.versioned.materialize(persistent.version_id)
            actual = database.content_hash()
            if actual != persistent.content_hash or actual != version.content_hash:
                raise VersionError(
                    f"fixity violation: content of version {persistent.version_id} has hash "
                    f"{actual[:12]}..., citation recorded {persistent.content_hash[:12]}..."
                )
        engine = self._engine_for(persistent.version_id)
        return engine.cite(parse_query(persistent.query_text))

    def has_drifted(self, persistent: PersistentCitation) -> bool:
        """``True`` when the *current* data differs from the cited version's data."""
        return self.versioned.working.content_hash() != persistent.content_hash


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return list(value)
    return str(value)
