"""Fixity: versioned databases and resolvable, time-pinned citations.

One of the core principles of data citation (FORCE-11, CODATA) is *fixity*:
a citation must bring back the data as seen at the time it was cited even
though the database keeps evolving.  The paper sketches the standard
solution — versioning plus a query (or a means of recovering it) and a
timestamp / version number inside the citation — and points to the Pröll &
Rauber query-store prototype.  This package implements that mechanism:

* :mod:`repro.versioning.version_store` — a multi-version database using
  delta chains with periodic snapshots,
* :mod:`repro.versioning.persistent` — persistent citations that pin the
  query, the version and a content digest, and can be re-resolved later.
"""

from repro.versioning.version_store import Version, VersionedDatabase
from repro.versioning.persistent import PersistentCitation, CitationResolver

__all__ = [
    "Version",
    "VersionedDatabase",
    "PersistentCitation",
    "CitationResolver",
]
