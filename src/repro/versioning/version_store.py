"""A multi-version database: snapshots, deltas and time travel.

The :class:`VersionedDatabase` wraps a working :class:`~repro.relational.database.Database`
and records every committed version.  Storage uses *delta chains*: each
version stores the inserted and deleted rows relative to its parent, with a
full snapshot taken every ``snapshot_interval`` versions so that
reconstruction cost stays bounded.  Both strategies ("delta" vs "snapshot
only") are exposed because DESIGN.md calls the choice out for ablation (E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping
from typing import Literal

from repro.errors import VersionError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema


@dataclass(frozen=True)
class Version:
    """Metadata of one committed database version."""

    version_id: int
    timestamp: str
    message: str
    content_hash: str
    parent: int | None


@dataclass
class _Delta:
    """Row-level changes of one version relative to its parent."""

    inserted: dict[str, set[tuple]] = field(default_factory=dict)
    deleted: dict[str, set[tuple]] = field(default_factory=dict)

    def record_insert(self, relation: str, row: tuple) -> None:
        if row in self.deleted.get(relation, set()):
            self.deleted[relation].discard(row)
        else:
            self.inserted.setdefault(relation, set()).add(row)

    def record_delete(self, relation: str, row: tuple) -> None:
        if row in self.inserted.get(relation, set()):
            self.inserted[relation].discard(row)
        else:
            self.deleted.setdefault(relation, set()).add(row)

    def is_empty(self) -> bool:
        return not any(self.inserted.values()) and not any(self.deleted.values())

    def change_count(self) -> int:
        return sum(len(rows) for rows in self.inserted.values()) + sum(
            len(rows) for rows in self.deleted.values()
        )


class VersionedDatabase:
    """A database whose history of versions can be re-materialised.

    Parameters
    ----------
    schema:
        Schema of the database.
    storage:
        ``"delta"`` (default) stores per-version deltas with periodic
        snapshots; ``"snapshot"`` stores a full copy per version.
    snapshot_interval:
        With delta storage, a full snapshot is kept every this many versions.
    clock:
        Callable returning the commit timestamp string; injectable for
        deterministic tests.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        storage: Literal["delta", "snapshot"] = "delta",
        snapshot_interval: int = 10,
        clock=None,
    ) -> None:
        self.schema = schema
        self.storage = storage
        self.snapshot_interval = max(1, snapshot_interval)
        self._clock = clock or _default_clock
        self.working = Database(schema)
        self._versions: list[Version] = []
        self._deltas: dict[int, _Delta] = {}
        self._snapshots: dict[int, Database] = {}
        self._pending = _Delta()

    # -- updates to the working copy ------------------------------------------------
    def insert(self, relation: str, row: tuple | Mapping[str, object]) -> bool:
        """Insert into the working copy (not yet committed)."""
        target = self.working.relation(relation)
        if isinstance(row, Mapping):
            row = target.schema.row_from_mapping(row)
        else:
            row = target.schema.validate_row(tuple(row))
        changed = self.working.insert(relation, row)
        if changed:
            self._pending.record_insert(relation, row)
        return changed

    def insert_many(self, relation: str, rows: Iterable[tuple | Mapping[str, object]]) -> int:
        """Insert many rows into the working copy."""
        return sum(1 for row in rows if self.insert(relation, row))

    def delete(self, relation: str, row: tuple) -> bool:
        """Delete from the working copy (not yet committed)."""
        row = tuple(row)
        changed = self.working.delete(relation, row)
        if changed:
            self._pending.record_delete(relation, row)
        return changed

    # -- committing --------------------------------------------------------------------
    def commit(self, message: str = "") -> Version:
        """Commit the pending changes as a new version and return its metadata."""
        version_id = len(self._versions)
        parent = version_id - 1 if version_id > 0 else None
        version = Version(
            version_id=version_id,
            timestamp=self._clock(),
            message=message,
            content_hash=self.working.content_hash(),
            parent=parent,
        )
        self._versions.append(version)
        if self.storage == "snapshot" or version_id % self.snapshot_interval == 0:
            self._snapshots[version_id] = self.working.copy()
        self._deltas[version_id] = self._pending
        self._pending = _Delta()
        return version

    # -- history ------------------------------------------------------------------------
    @property
    def versions(self) -> tuple[Version, ...]:
        """All committed versions, oldest first."""
        return tuple(self._versions)

    @property
    def current_version(self) -> Version:
        """Metadata of the most recent commit."""
        if not self._versions:
            raise VersionError("no version has been committed yet")
        return self._versions[-1]

    def version(self, version_id: int) -> Version:
        """Metadata of version *version_id*."""
        if not 0 <= version_id < len(self._versions):
            raise VersionError(f"unknown version {version_id}")
        return self._versions[version_id]

    def has_uncommitted_changes(self) -> bool:
        """``True`` when the working copy differs from the last commit."""
        return not self._pending.is_empty()

    def storage_cost(self) -> dict[str, int]:
        """Rows held in snapshots and deltas (for the E6 storage ablation)."""
        snapshot_rows = sum(db.total_rows() for db in self._snapshots.values())
        delta_rows = sum(delta.change_count() for delta in self._deltas.values())
        return {
            "snapshots": len(self._snapshots),
            "snapshot_rows": snapshot_rows,
            "delta_rows": delta_rows,
        }

    # -- reconstruction --------------------------------------------------------------------
    def materialize(self, version_id: int) -> Database:
        """Reconstruct the database content as of version *version_id*."""
        self.version(version_id)  # validates
        base_id = max(
            (vid for vid in self._snapshots if vid <= version_id), default=None
        )
        if base_id is None:
            database = Database(self.schema, enforce_foreign_keys=False)
            start = 0
        else:
            database = self._snapshots[base_id].copy()
            database.enforce_foreign_keys = False
            start = base_id + 1
        for vid in range(start, version_id + 1):
            delta = self._deltas.get(vid)
            if delta is None:
                continue
            for relation, rows in delta.deleted.items():
                for row in rows:
                    database.relation(relation).delete(row)
            for relation, rows in delta.inserted.items():
                for row in rows:
                    database.relation(relation).insert(row)
        database.enforce_foreign_keys = True
        return database

    def verify(self, version_id: int) -> bool:
        """Check that reconstruction reproduces the recorded content hash."""
        reconstructed = self.materialize(version_id)
        return reconstructed.content_hash() == self.version(version_id).content_hash


def _default_clock() -> str:
    import datetime

    return datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
