"""The Bucket algorithm for answering queries using views.

For every subgoal of the query, a *bucket* collects view atoms that can cover
it.  Candidate rewritings are formed by taking one element from every bucket
and are then verified (via expansion and containment) to be equivalent to the
query.  The algorithm follows Halevy's survey (VLDB J. 2001), which the paper
cites as [9]; verification makes the generate-and-test loop sound even where
the bucket-filling heuristics are permissive.

Known limitation (shared with the classical formulation): because bucket
entries consider one query subgoal at a time, a rewriting that needs a single
view atom to cover *several* subgoals connected through an existential view
variable is not discovered — the per-subgoal entries introduce distinct fresh
variables that the assembly step never re-unifies.  The MiniCon algorithm
(:mod:`repro.rewriting.minicon`) was designed around exactly this weakness
and finds those rewritings; benchmark E3 quantifies the difference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.query.ast import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)
from repro.rewriting.rewriting import (
    Rewriting,
    deduplicate_rewritings,
    is_equivalent_rewriting,
    minimize_rewriting,
)
from repro.rewriting.view import View

_fresh_counter = itertools.count()


def _fresh_variable(stem: str) -> Variable:
    return Variable(f"_b{next(_fresh_counter)}_{stem}")


@dataclass(frozen=True)
class BucketEntry:
    """One way a view can cover one query subgoal."""

    view: View
    view_atom: Atom
    covered_subgoal: int


@dataclass
class BucketStatistics:
    """Counters describing the search performed by :class:`BucketRewriter`."""

    buckets: list[int]
    candidates_considered: int = 0
    candidates_verified: int = 0

    @property
    def candidate_space(self) -> int:
        """Size of the full cross product of the buckets."""
        space = 1
        for size in self.buckets:
            space *= size
        return space


class BucketRewriter:
    """Generate equivalent rewritings of a conjunctive query using views."""

    def __init__(self, views: Sequence[View], max_candidates: int | None = 100_000) -> None:
        self.views = tuple(views)
        self.max_candidates = max_candidates
        self.last_statistics: BucketStatistics | None = None

    # -- bucket construction ---------------------------------------------------
    def _bucket_for(self, query: ConjunctiveQuery, subgoal_index: int) -> list[BucketEntry]:
        subgoal = query.body[subgoal_index]
        required = query.head_variables() | query.join_variables()
        bucket: list[BucketEntry] = []
        for view in self.views:
            definition = view.query.without_parameters().inline_equalities()
            view_head_vars = set(
                t for t in definition.head_terms if isinstance(t, Variable)
            )
            for view_subgoal in definition.body:
                mapping = self._unify_subgoal(
                    subgoal, view_subgoal, view_head_vars, required
                )
                if mapping is None:
                    continue
                view_atom = self._entry_atom(view, definition, mapping)
                bucket.append(BucketEntry(view, view_atom, subgoal_index))
        return bucket

    @staticmethod
    def _unify_subgoal(
        query_subgoal: Atom,
        view_subgoal: Atom,
        view_head_vars: set[Variable],
        required: set[Variable],
    ) -> dict[Variable, Term] | None:
        """Map view variables (of one view subgoal) to query terms, or ``None``.

        A query term that is a head/join variable of the query or a constant
        must be matched by a *distinguished* view variable, otherwise the view
        cannot expose or constrain it.
        """
        if (
            query_subgoal.predicate != view_subgoal.predicate
            or query_subgoal.arity != view_subgoal.arity
        ):
            return None
        mapping: dict[Variable, Term] = {}
        for query_term, view_term in zip(query_subgoal.terms, view_subgoal.terms):
            if isinstance(view_term, Constant):
                if isinstance(query_term, Constant) and query_term == view_term:
                    continue
                if isinstance(query_term, Variable) and query_term not in required:
                    continue
                return None
            assert isinstance(view_term, Variable)
            needs_distinguished = isinstance(query_term, Constant) or (
                isinstance(query_term, Variable) and query_term in required
            )
            if needs_distinguished and view_term not in view_head_vars:
                return None
            existing = mapping.get(view_term)
            if existing is None:
                mapping[view_term] = query_term
            elif existing != query_term:
                return None
        return mapping

    @staticmethod
    def _entry_atom(
        view: View, definition: ConjunctiveQuery, mapping: dict[Variable, Term]
    ) -> Atom:
        terms: list[Term] = []
        for head_term in definition.head_terms:
            if isinstance(head_term, Variable) and head_term in mapping:
                terms.append(mapping[head_term])
            elif isinstance(head_term, Constant):
                terms.append(head_term)
            else:
                stem = head_term.name if isinstance(head_term, Variable) else "c"
                terms.append(_fresh_variable(stem))
        return Atom(view.name, tuple(terms))

    # -- candidate generation -----------------------------------------------------
    def rewrite(
        self, query: ConjunctiveQuery, minimize: bool = True
    ) -> list[Rewriting]:
        """Return all minimal equivalent rewritings found for *query*."""
        query = query.without_parameters().inline_equalities()
        buckets = [self._bucket_for(query, i) for i in range(len(query.body))]
        statistics = BucketStatistics(buckets=[len(b) for b in buckets])
        self.last_statistics = statistics
        if any(not bucket for bucket in buckets):
            return []

        results: list[Rewriting] = []
        for combination in itertools.product(*buckets):
            statistics.candidates_considered += 1
            if (
                self.max_candidates is not None
                and statistics.candidates_considered > self.max_candidates
            ):
                break
            candidate = self._assemble(query, combination)
            if candidate is None:
                continue
            statistics.candidates_verified += 1
            if not is_equivalent_rewriting(query, candidate):
                continue
            if minimize:
                candidate = minimize_rewriting(candidate)
            results.append(candidate)
        return deduplicate_rewritings(results)

    def _assemble(
        self, query: ConjunctiveQuery, combination: Iterable[BucketEntry]
    ) -> Rewriting | None:
        atoms: list[Atom] = []
        for entry in combination:
            if entry.view_atom not in atoms:
                atoms.append(entry.view_atom)
        bound = {v for atom in atoms for v in atom.variables()}
        bound.update(eq.variable for eq in query.equalities)
        for term in query.head_terms:
            if isinstance(term, Variable) and term not in bound:
                return None
        rewriting_query = ConjunctiveQuery(query.head, tuple(atoms), query.equalities)
        try:
            return Rewriting(rewriting_query, self.views)
        except Exception:
            return None
