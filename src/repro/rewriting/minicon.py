"""A MiniCon-style rewriting algorithm.

MiniCon (Pottinger & Halevy) improves on the Bucket algorithm by reasoning
about *sets* of query subgoals a view can cover consistently — a MiniCon
Description (MCD) — and then combining MCDs whose covered sets partition the
query's subgoals.  This prunes combinations the Bucket algorithm would
generate and reject, which is exactly the kind of search-space reduction the
paper's "Calculating citations" challenge calls for.

As with the Bucket implementation, every produced rewriting is verified by
expansion + containment, so heuristic over-approximations in MCD formation
cannot yield incorrect rewritings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.query.ast import Atom, ConjunctiveQuery, Constant, Term, Variable
from repro.rewriting.rewriting import (
    Rewriting,
    deduplicate_rewritings,
    is_equivalent_rewriting,
    minimize_rewriting,
)
from repro.rewriting.view import View

_fresh_counter = itertools.count()


def _fresh_variable(stem: str) -> Variable:
    return Variable(f"_m{next(_fresh_counter)}_{stem}")


@dataclass
class MCD:
    """A MiniCon Description: a view covering a set of query subgoals."""

    view: View
    covered: frozenset[int]
    #: mapping from query terms to view terms (the homomorphism φ⁻¹ direction)
    query_to_view: dict[Term, Term] = field(default_factory=dict)

    def conflicts_with(self, other: "MCD") -> bool:
        """Two MCDs conflict when their covered subgoal sets overlap."""
        return bool(self.covered & other.covered)


@dataclass
class MiniConStatistics:
    """Counters describing the MCD search."""

    mcds: int = 0
    combinations_considered: int = 0
    candidates_verified: int = 0


class MiniConRewriter:
    """Generate equivalent rewritings via MCD formation and combination."""

    def __init__(self, views: Sequence[View], max_candidates: int | None = 100_000) -> None:
        self.views = tuple(views)
        self.max_candidates = max_candidates
        self.last_statistics: MiniConStatistics | None = None

    # -- MCD formation ------------------------------------------------------------
    def _form_mcds(self, query: ConjunctiveQuery) -> list[MCD]:
        mcds: list[MCD] = []
        head_vars = query.head_variables()
        for view in self.views:
            definition = view.query.without_parameters().inline_equalities()
            view_head_vars = {
                t for t in definition.head_terms if isinstance(t, Variable)
            }
            for start_index, start_subgoal in enumerate(query.body):
                for view_subgoal in definition.body:
                    mcd = self._grow_mcd(
                        query,
                        definition,
                        view,
                        view_head_vars,
                        head_vars,
                        start_index,
                        start_subgoal,
                        view_subgoal,
                    )
                    if mcd is not None and not any(
                        mcd.covered == existing.covered
                        and mcd.view is existing.view
                        and mcd.query_to_view == existing.query_to_view
                        for existing in mcds
                    ):
                        mcds.append(mcd)
        return mcds

    def _grow_mcd(
        self,
        query: ConjunctiveQuery,
        definition: ConjunctiveQuery,
        view: View,
        view_head_vars: set[Variable],
        query_head_vars: set[Variable],
        start_index: int,
        start_subgoal: Atom,
        view_subgoal: Atom,
    ) -> MCD | None:
        mapping: dict[Term, Term] = {}
        if not self._extend_mapping(start_subgoal, view_subgoal, mapping):
            return None
        covered = {start_index}

        # Closure: if a query variable maps to an existential view variable, every
        # query subgoal using that variable must also be covered by this MCD.
        changed = True
        while changed:
            changed = False
            for query_term, view_term in list(mapping.items()):
                if not isinstance(query_term, Variable):
                    continue
                if not isinstance(view_term, Variable):
                    continue
                if view_term in view_head_vars:
                    continue
                if query_term in query_head_vars:
                    return None  # head variable hidden behind an existential view var
                for index, subgoal in enumerate(query.body):
                    if index in covered or query_term not in subgoal.variables():
                        continue
                    placed = False
                    for candidate in definition.body:
                        trial = dict(mapping)
                        if self._extend_mapping(subgoal, candidate, trial):
                            mapping.clear()
                            mapping.update(trial)
                            covered.add(index)
                            placed = True
                            changed = True
                            break
                    if not placed:
                        return None
        return MCD(view=view, covered=frozenset(covered), query_to_view=mapping)

    @staticmethod
    def _extend_mapping(
        query_subgoal: Atom, view_subgoal: Atom, mapping: dict[Term, Term]
    ) -> bool:
        if (
            query_subgoal.predicate != view_subgoal.predicate
            or query_subgoal.arity != view_subgoal.arity
        ):
            return False
        for query_term, view_term in zip(query_subgoal.terms, view_subgoal.terms):
            if isinstance(query_term, Constant):
                if isinstance(view_term, Constant):
                    if query_term != view_term:
                        return False
                    continue
                # constant in the query must be checkable through the view head
                existing = mapping.get(query_term)
                if existing is not None and existing != view_term:
                    return False
                mapping[query_term] = view_term
                continue
            existing = mapping.get(query_term)
            if existing is None:
                mapping[query_term] = view_term
            elif existing != view_term:
                return False
        return True

    # -- combination ---------------------------------------------------------------
    def rewrite(self, query: ConjunctiveQuery, minimize: bool = True) -> list[Rewriting]:
        """Return all minimal equivalent rewritings found for *query*."""
        query = query.without_parameters().inline_equalities()
        mcds = self._form_mcds(query)
        statistics = MiniConStatistics(mcds=len(mcds))
        self.last_statistics = statistics
        subgoals = frozenset(range(len(query.body)))
        results: list[Rewriting] = []

        for combination in self._partitions(mcds, subgoals):
            statistics.combinations_considered += 1
            if (
                self.max_candidates is not None
                and statistics.combinations_considered > self.max_candidates
            ):
                break
            candidate = self._assemble(query, combination)
            if candidate is None:
                continue
            statistics.candidates_verified += 1
            if not is_equivalent_rewriting(query, candidate):
                continue
            if minimize:
                candidate = minimize_rewriting(candidate)
            results.append(candidate)
        return deduplicate_rewritings(results)

    def _partitions(self, mcds: list[MCD], subgoals: frozenset[int]):
        """Yield combinations of pairwise-disjoint MCDs covering all subgoals.

        Each step must cover the minimal uncovered subgoal, so every valid
        combination is produced exactly once (its members are chosen in the
        canonical order of the subgoals they cover).
        """

        def recurse(remaining: frozenset[int], chosen: list[MCD]):
            if not remaining:
                yield list(chosen)
                return
            target = min(remaining)
            for mcd in mcds:
                if target not in mcd.covered:
                    continue
                if not mcd.covered <= remaining:
                    continue
                chosen.append(mcd)
                yield from recurse(remaining - mcd.covered, chosen)
                chosen.pop()

        yield from recurse(subgoals, [])

    def _assemble(
        self, query: ConjunctiveQuery, combination: Sequence[MCD]
    ) -> Rewriting | None:
        atoms: list[Atom] = []
        for mcd in combination:
            definition = mcd.view.query.without_parameters()
            view_to_query: dict[Term, Term] = {}
            for query_term, view_term in mcd.query_to_view.items():
                if isinstance(view_term, Variable) and view_term not in view_to_query:
                    view_to_query[view_term] = query_term
            terms: list[Term] = []
            for head_term in definition.head_terms:
                if isinstance(head_term, Variable):
                    mapped = view_to_query.get(head_term)
                    terms.append(
                        mapped if mapped is not None else _fresh_variable(head_term.name)
                    )
                else:
                    terms.append(head_term)
            atom = Atom(mcd.view.name, tuple(terms))
            if atom not in atoms:
                atoms.append(atom)
        bound = {v for atom in atoms for v in atom.variables()}
        bound.update(eq.variable for eq in query.equalities)
        for term in query.head_terms:
            if isinstance(term, Variable) and term not in bound:
                return None
        rewriting_query = ConjunctiveQuery(query.head, tuple(atoms), query.equalities)
        try:
            return Rewriting(rewriting_query, self.views)
        except Exception:
            return None
