"""Rewritings of queries over views: representation, expansion, verification.

A :class:`Rewriting` is a conjunctive query whose body atoms refer to view
predicates.  Its *expansion* replaces every view atom with the view's body
(head variables unified with the atom's terms, existential variables renamed
fresh per occurrence).  A rewriting is an *equivalent rewriting* of a query
``Q`` when its expansion is equivalent to ``Q``; this is the notion the paper
relies on ("the set of minimal equivalent rewritings {Q1, ..., Qn}").
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import RewritingError
from repro.query.ast import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)
from repro.query.containment import containment_mapping, is_equivalent_to
from repro.rewriting.view import View, views_by_name

_fresh = itertools.count()


class Rewriting:
    """A query expressed over view predicates, together with its expansion."""

    __slots__ = ("query", "views", "expansion")

    def __init__(self, query: ConjunctiveQuery, views: Sequence[View]) -> None:
        self.query = query
        self.views = tuple(views)
        index = views_by_name(self.views)
        missing = {a.predicate for a in query.body} - set(index)
        if missing:
            raise RewritingError(
                f"rewriting {query.name!r} uses unknown view predicates: {sorted(missing)}"
            )
        self.expansion = expand_rewriting(query, index)

    # -- introspection -------------------------------------------------------
    @property
    def view_atoms(self) -> tuple[Atom, ...]:
        """Body atoms of the rewriting (each refers to a view)."""
        return self.query.body

    def views_used(self) -> tuple[View, ...]:
        """Views referenced by at least one body atom, in first-use order."""
        index = views_by_name(self.views)
        seen: list[View] = []
        for atom in self.query.body:
            view = index[atom.predicate]
            if view not in seen:
                seen.append(view)
        return tuple(seen)

    def uses_parameterized_view(self) -> bool:
        """``True`` when any referenced view is λ-parameterized."""
        return any(view.parameters for view in self.views_used())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rewriting):
            return NotImplemented
        return self.query == other.query

    def __hash__(self) -> int:
        return hash(self.query)

    def __repr__(self) -> str:
        return f"Rewriting({self.query})"

    def __str__(self) -> str:
        return str(self.query)


def _freshen(name: str) -> Variable:
    return Variable(f"_e{next(_fresh)}_{name}")


def expand_rewriting(
    rewriting_query: ConjunctiveQuery, views: Mapping[str, View]
) -> ConjunctiveQuery:
    """Expand view atoms of *rewriting_query* into base-relation atoms.

    Each occurrence of a view atom gets its own fresh copies of the view's
    existential variables.  Repeated variables or constants in a view head are
    handled by unifying the corresponding rewriting terms.
    """
    expanded_atoms: list[Atom] = []
    merges: dict[Variable, Term] = {}

    def canonical(term: Term) -> Term:
        while isinstance(term, Variable) and term in merges:
            term = merges[term]
        return term

    def unify(left: Term, right: Term) -> None:
        left, right = canonical(left), canonical(right)
        if left == right:
            return
        if isinstance(left, Variable):
            merges[left] = right
        elif isinstance(right, Variable):
            merges[right] = left
        else:
            raise RewritingError(
                f"expansion requires unifying distinct constants {left} and {right}"
            )

    for atom in rewriting_query.body:
        view = views.get(atom.predicate)
        if view is None:
            # Base-relation atom in a partial rewriting: keep as is.
            expanded_atoms.append(atom)
            continue
        definition = view.query.without_parameters()
        if len(definition.head_terms) != atom.arity:
            raise RewritingError(
                f"atom {atom} has arity {atom.arity} but view {view.name!r} "
                f"has arity {len(definition.head_terms)}"
            )
        substitution: dict[Variable, Term] = {}
        for head_term, atom_term in zip(definition.head_terms, atom.terms):
            if isinstance(head_term, Variable):
                if head_term in substitution:
                    unify(substitution[head_term], atom_term)
                else:
                    substitution[head_term] = atom_term
            else:
                unify(head_term, atom_term)
        for variable in definition.existential_variables():
            substitution[variable] = _freshen(variable.name)
        # Equality atoms of the view constrain the corresponding rewriting term.
        for equality in definition.equalities:
            target = substitution.get(equality.variable)
            if target is not None:
                unify(target, equality.constant)
        inlined = definition.inline_equalities()
        for body_atom in inlined.body:
            expanded_atoms.append(body_atom.substitute(substitution))

    if merges:
        resolved = {v: canonical(v) for v in merges}
        expanded_atoms = [a.substitute(resolved) for a in expanded_atoms]
        head = rewriting_query.head.substitute(resolved)
    else:
        head = rewriting_query.head

    equalities = list(rewriting_query.equalities)
    return ConjunctiveQuery(head, expanded_atoms, equalities)


def is_equivalent_rewriting(
    query: ConjunctiveQuery, rewriting: Rewriting
) -> bool:
    """``True`` when the rewriting's expansion is equivalent to *query*."""
    return is_equivalent_to(rewriting.expansion, query.without_parameters())


def is_contained_rewriting(query: ConjunctiveQuery, rewriting: Rewriting) -> bool:
    """``True`` when the rewriting's expansion is contained in *query*.

    Contained (not necessarily equivalent) rewritings are the building block
    of maximally-contained rewritings; the citation engine prefers equivalent
    ones but can fall back to contained ones when instructed.
    """
    return (
        containment_mapping(query.without_parameters(), rewriting.expansion) is not None
    )


def minimize_rewriting(rewriting: Rewriting) -> Rewriting:
    """Drop redundant view atoms from a rewriting (keeping equivalence of the expansion)."""
    query = rewriting.query
    changed = True
    while changed:
        changed = False
        body = list(query.body)
        if len(body) <= 1:
            break
        for index in range(len(body)):
            candidate_body = body[:index] + body[index + 1 :]
            bound = {v for atom in candidate_body for v in atom.variables()}
            bound.update(eq.variable for eq in query.equalities)
            if not all(
                (not t.is_variable()) or t in bound for t in query.head_terms
            ):
                continue
            candidate = query.with_body(candidate_body)
            try:
                candidate_rewriting = Rewriting(candidate, rewriting.views)
            except RewritingError:
                continue
            if is_equivalent_to(candidate_rewriting.expansion, rewriting.expansion):
                query = candidate
                changed = True
                break
    return Rewriting(query, rewriting.views)


def deduplicate_rewritings(rewritings: Iterable[Rewriting]) -> list[Rewriting]:
    """Remove rewritings whose view-level queries are equivalent to an earlier one."""
    kept: list[Rewriting] = []
    for rewriting in rewritings:
        duplicate = False
        for existing in kept:
            same_views = {a.predicate for a in rewriting.query.body} == {
                a.predicate for a in existing.query.body
            }
            if same_views and is_equivalent_to(rewriting.query, existing.query):
                duplicate = True
                break
        if not duplicate:
            kept.append(rewriting)
    return kept


def make_rewriting_query(
    name: str,
    head_terms: Sequence[Term],
    view_atoms: Sequence[Atom],
) -> ConjunctiveQuery:
    """Assemble a rewriting query from prepared view atoms."""
    return ConjunctiveQuery(Atom(name, tuple(head_terms)), tuple(view_atoms))


def constant_or_variable(value: object) -> Term:
    """Helper turning a raw value into a term (strings become variables)."""
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Variable(value)
    return Constant(value)
