"""View definitions for query rewriting.

A :class:`View` is a named conjunctive query over the base schema.  The
citation layer (:mod:`repro.core`) wraps views with citation queries and a
citation function; this module only cares about the relational part.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import RewritingError
from repro.query.ast import ConjunctiveQuery, Variable
from repro.query.evaluator import QueryEvaluator, result_schema
from repro.relational.database import Database
from repro.relational.relation import Relation


class View:
    """A named view defined by a conjunctive query.

    Parameters
    ----------
    query:
        The defining conjunctive query.  Its head predicate is the view name;
        λ-parameters (if any) are retained and exposed via :attr:`parameters`
        but are ignored by the rewriting algorithms, as the paper specifies.
    """

    __slots__ = ("query",)

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query

    @property
    def name(self) -> str:
        """The view name (head predicate of the defining query)."""
        return self.query.name

    @property
    def arity(self) -> int:
        """Arity of the view's output."""
        return len(self.query.head_terms)

    @property
    def parameters(self) -> tuple[Variable, ...]:
        """λ-parameters of the view definition."""
        return self.query.parameters

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        """Head (distinguished) variables of the defining query."""
        return tuple(
            term for term in self.query.head_terms if isinstance(term, Variable)
        )

    def parameter_positions(self) -> dict[str, int]:
        """Map each parameter name to its position in the view head.

        Needed by the citation engine: given a view atom in a rewriting and a
        binding, the value of parameter ``p`` is the binding of the term at
        this head position.
        """
        positions: dict[str, int] = {}
        for param in self.query.parameters:
            for index, term in enumerate(self.query.head_terms):
                if term == param:
                    positions[param.name] = index
                    break
            else:  # pragma: no cover - guarded by ConjunctiveQuery validation
                raise RewritingError(
                    f"parameter {param.name!r} does not appear in the head of view {self.name!r}"
                )
        return positions

    def materialize(self, database: Database) -> Relation:
        """Evaluate the view over *database* (parameters ignored)."""
        return QueryEvaluator(database).evaluate(self.query.without_parameters())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self.query == other.query

    def __hash__(self) -> int:
        return hash(self.query)

    def __repr__(self) -> str:
        return f"View({self.query})"


def materialize_views(
    views: Iterable[View], database: Database
) -> dict[str, Relation]:
    """Materialize every view over *database*, keyed by view name.

    The resulting mapping can be passed as ``extra_relations`` to
    :class:`~repro.query.evaluator.QueryEvaluator` so that rewritings (which
    mention view predicates) can be evaluated directly.
    """
    out: dict[str, Relation] = {}
    for view in views:
        if view.name in out:
            raise RewritingError(f"duplicate view name {view.name!r}")
        relation = view.materialize(database)
        # Rename the schema so the relation is addressable by the view name.
        out[view.name] = Relation(result_schema(view.query), relation.rows)
    return out


def views_by_name(views: Iterable[View]) -> Mapping[str, View]:
    """Index views by name, checking for duplicates."""
    out: dict[str, View] = {}
    for view in views:
        if view.name in out:
            raise RewritingError(f"duplicate view name {view.name!r}")
        out[view.name] = view
    return out
