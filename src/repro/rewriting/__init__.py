"""Answering queries using views: the rewriting substrate of the citation model.

The paper's approach rewrites a general query into equivalent queries over the
*citation views* and combines their citations.  This package provides:

* :mod:`repro.rewriting.view` — view definitions (a named conjunctive query),
* :mod:`repro.rewriting.rewriting` — the :class:`Rewriting` object, expansion
  of view atoms into base atoms, and verification of equivalence,
* :mod:`repro.rewriting.bucket` — the classical Bucket algorithm,
* :mod:`repro.rewriting.minicon` — a MiniCon-style algorithm (MCD generation
  and combination),
* :mod:`repro.rewriting.cost` — cost estimation used to prune the rewriting
  search space (paper, Section 3 "Calculating citations").
"""

from repro.rewriting.view import View, materialize_views
from repro.rewriting.rewriting import Rewriting, expand_rewriting, is_equivalent_rewriting
from repro.rewriting.bucket import BucketRewriter
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.cost import RewritingCostModel

__all__ = [
    "View",
    "materialize_views",
    "Rewriting",
    "expand_rewriting",
    "is_equivalent_rewriting",
    "BucketRewriter",
    "MiniConRewriter",
    "RewritingCostModel",
]
