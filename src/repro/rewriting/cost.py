"""Cost estimation for rewritings.

Section 3 of the paper ("Calculating citations") notes that enumerating all
rewritings and all assignments within each is infeasible, "pointing to the
need for cost functions to reduce the search space".  This module provides a
simple but effective cost model with two components:

* **evaluation cost** — an estimate of how expensive it is to evaluate the
  rewriting over the materialised views (product of view cardinalities scaled
  by join selectivity), and
* **citation size** — an estimate of how many distinct citations the
  rewriting will produce.  A λ-parameterized view contributes one citation
  per distinct parameter value appearing in the result (proportional to the
  view's size); an unparameterized view contributes exactly one.

The second component is precisely the "estimated minimum size" interpretation
of ``+R`` the paper uses in its worked example, where the rewriting through
the unparameterized view V2 wins over the one through the parameterized V1.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.query.ast import Variable
from repro.relational.database import Database
from repro.rewriting.rewriting import Rewriting
from repro.rewriting.view import View


@dataclass(frozen=True)
class RewritingCost:
    """Cost estimate of one rewriting."""

    evaluation_cost: float
    citation_size: float
    views_used: int

    def total(self, citation_weight: float = 1.0, evaluation_weight: float = 1.0) -> float:
        """Weighted combination used for ranking."""
        return (
            evaluation_weight * self.evaluation_cost
            + citation_weight * self.citation_size
        )


class RewritingCostModel:
    """Estimates rewriting costs from base-relation statistics.

    Parameters
    ----------
    database:
        The database the views are defined over; per-relation cardinalities
        are read from it.  When ``None``, every relation is assumed to have
        ``default_cardinality`` rows (useful for schema-level reasoning
        without an instance).
    default_cardinality:
        Cardinality used for relations that are missing or empty.
    join_selectivity:
        Multiplicative factor applied per join variable shared between view
        atoms (a crude but standard selectivity guess).
    """

    def __init__(
        self,
        database: Database | None = None,
        default_cardinality: int = 1_000,
        join_selectivity: float = 0.1,
    ) -> None:
        self.database = database
        self.default_cardinality = default_cardinality
        self.join_selectivity = join_selectivity

    # -- statistics ------------------------------------------------------------
    def relation_cardinality(self, name: str) -> float:
        """Estimated number of rows in base relation *name*."""
        if self.database is not None and name in self.database:
            size = len(self.database.relation(name))
            if size > 0:
                return float(size)
        return float(self.default_cardinality)

    def view_cardinality(self, view: View) -> float:
        """Estimated number of rows in *view* (joins shrink, projections keep)."""
        definition = view.query.without_parameters()
        cardinality = 1.0
        for atom in definition.body:
            cardinality *= self.relation_cardinality(atom.predicate)
        join_vars = definition.join_variables()
        cardinality *= self.join_selectivity ** len(join_vars)
        return max(cardinality, 1.0)

    def distinct_parameter_values(self, view: View) -> float:
        """Estimated number of distinct parameter valuations of *view*.

        This drives the citation-size estimate: a parameterized view yields
        one citation per distinct parameter valuation in the result.
        """
        if not view.parameters:
            return 1.0
        if self.database is None:
            return self.view_cardinality(view)
        definition = view.query.without_parameters()
        estimate = 1.0
        for parameter in view.parameters:
            best = self.view_cardinality(view)
            for atom in definition.body:
                for position, term in enumerate(atom.terms):
                    if isinstance(term, Variable) and term == parameter:
                        if self.database is not None and atom.predicate in self.database:
                            relation = self.database.relation(atom.predicate)
                            distinct = len(
                                relation.project_positions([position])
                            )
                            best = min(best, float(max(distinct, 1)))
            estimate *= best
        return estimate

    # -- rewriting-level estimates -------------------------------------------------
    def evaluation_cost(self, rewriting: Rewriting) -> float:
        """Estimated cost of evaluating the rewriting over materialised views."""
        cost = 1.0
        for view in (self._view_for(rewriting, a.predicate) for a in rewriting.query.body):
            cost *= self.view_cardinality(view)
        join_vars = rewriting.query.join_variables()
        cost *= self.join_selectivity ** len(join_vars)
        return max(cost, 1.0)

    def citation_size(self, rewriting: Rewriting) -> float:
        """Estimated number of distinct citations produced by the rewriting.

        Follows the paper's worked example: unparameterized views contribute a
        single citation; a parameterized view contributes one citation per
        distinct parameter valuation.
        """
        size = 0.0
        for atom in rewriting.query.body:
            view = self._view_for(rewriting, atom.predicate)
            size += self.distinct_parameter_values(view)
        return max(size, 1.0)

    def cost(self, rewriting: Rewriting) -> RewritingCost:
        """Full cost estimate of *rewriting*."""
        return RewritingCost(
            evaluation_cost=self.evaluation_cost(rewriting),
            citation_size=self.citation_size(rewriting),
            views_used=len(rewriting.views_used()),
        )

    def rank(self, rewritings: Sequence[Rewriting]) -> list[tuple[Rewriting, RewritingCost]]:
        """Rank rewritings by estimated citation size, then evaluation cost."""
        scored = [(rewriting, self.cost(rewriting)) for rewriting in rewritings]
        scored.sort(key=lambda pair: (pair[1].citation_size, pair[1].evaluation_cost))
        return scored

    @staticmethod
    def _view_for(rewriting: Rewriting, name: str) -> View:
        for view in rewriting.views:
            if view.name == name:
                return view
        raise KeyError(name)


def cheapest_rewriting(
    rewritings: Sequence[Rewriting],
    model: RewritingCostModel,
) -> Rewriting | None:
    """Return the rewriting with the smallest estimated citation size."""
    ranked = model.rank(list(rewritings))
    return ranked[0][0] if ranked else None


def cost_table(
    rewritings: Sequence[Rewriting], model: RewritingCostModel
) -> list[Mapping[str, object]]:
    """Tabulate the cost estimates of a set of rewritings (for reports)."""
    rows = []
    for rewriting, cost in model.rank(list(rewritings)):
        rows.append(
            {
                "rewriting": str(rewriting.query),
                "views": [v.name for v in rewriting.views_used()],
                "evaluation_cost": cost.evaluation_cost,
                "citation_size": cost.citation_size,
            }
        )
    return rows
