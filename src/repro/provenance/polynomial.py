"""Provenance polynomials: the most general commutative semiring ``N[X]``.

A polynomial annotation is a bag of monomials; a monomial is a bag of
annotation tokens (base-tuple identifiers).  The polynomial records *how* an
answer was derived: ``·`` concatenates the tokens used jointly and ``+``
collects alternative derivations.  Every other commutative semiring is a
homomorphic image of ``N[X]``, which is what lets the citation engine reuse
the same propagation logic and only change the interpretation of the
operators (the "policies" of the paper).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Callable, Hashable, Iterable, Mapping

from repro.provenance.semiring import Semiring


@dataclass(frozen=True)
class Monomial:
    """A product of annotation tokens with multiplicities (e.g. ``x²y``)."""

    powers: tuple[tuple[Hashable, int], ...]

    @staticmethod
    def from_tokens(tokens: Iterable[Hashable]) -> "Monomial":
        """Build a monomial from a bag of tokens."""
        counts = Counter(tokens)
        return Monomial(tuple(sorted(counts.items(), key=lambda kv: repr(kv[0]))))

    @staticmethod
    def unit() -> "Monomial":
        """The empty monomial (the multiplicative identity ``1``)."""
        return Monomial(())

    def tokens(self) -> set[Hashable]:
        """The distinct tokens occurring in the monomial."""
        return {token for token, _power in self.powers}

    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(power for _token, power in self.powers)

    def times(self, other: "Monomial") -> "Monomial":
        """Multiply two monomials (add exponents)."""
        counts = Counter(dict(self.powers))
        counts.update(dict(other.powers))
        return Monomial(tuple(sorted(counts.items(), key=lambda kv: repr(kv[0]))))

    def evaluate(self, semiring: Semiring, valuation: Mapping[Hashable, object]) -> object:
        """Evaluate under a token valuation into the target semiring."""
        result = semiring.one()
        for token, power in self.powers:
            value = valuation[token]
            for _ in range(power):
                result = semiring.times(result, value)
        return result

    def __str__(self) -> str:
        if not self.powers:
            return "1"
        parts = []
        for token, power in self.powers:
            text = str(token)
            parts.append(text if power == 1 else f"{text}^{power}")
        return "·".join(parts)


@dataclass(frozen=True)
class Polynomial:
    """A formal sum of monomials with natural-number coefficients."""

    terms: tuple[tuple[Monomial, int], ...]

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def zero() -> "Polynomial":
        """The additive identity."""
        return Polynomial(())

    @staticmethod
    def one() -> "Polynomial":
        """The multiplicative identity."""
        return Polynomial(((Monomial.unit(), 1),))

    @staticmethod
    def variable(token: Hashable) -> "Polynomial":
        """The polynomial consisting of a single annotation token."""
        return Polynomial(((Monomial.from_tokens([token]), 1),))

    @staticmethod
    def _normalize(counter: Counter) -> "Polynomial":
        items = [(m, c) for m, c in counter.items() if c != 0]
        items.sort(key=lambda mc: (mc[0].degree(), str(mc[0])))
        return Polynomial(tuple(items))

    # -- arithmetic --------------------------------------------------------------
    def plus(self, other: "Polynomial") -> "Polynomial":
        """Add two polynomials (collect alternative derivations)."""
        counter: Counter = Counter(dict(self.terms))
        counter.update(dict(other.terms))
        return Polynomial._normalize(counter)

    def times(self, other: "Polynomial") -> "Polynomial":
        """Multiply two polynomials (joint derivations)."""
        counter: Counter = Counter()
        for mono_a, coeff_a in self.terms:
            for mono_b, coeff_b in other.terms:
                counter[mono_a.times(mono_b)] += coeff_a * coeff_b
        return Polynomial._normalize(counter)

    def __add__(self, other: "Polynomial") -> "Polynomial":
        return self.plus(other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        return self.times(other)

    # -- inspection ----------------------------------------------------------------
    def is_zero(self) -> bool:
        """``True`` for the additive identity."""
        return not self.terms

    def tokens(self) -> set[Hashable]:
        """All distinct annotation tokens occurring in the polynomial."""
        out: set[Hashable] = set()
        for monomial, _coeff in self.terms:
            out.update(monomial.tokens())
        return out

    def monomial_count(self) -> int:
        """Number of distinct monomials (size of the provenance expression)."""
        return len(self.terms)

    def degree(self) -> int:
        """Maximal degree over the monomials (0 for the zero polynomial)."""
        return max((m.degree() for m, _c in self.terms), default=0)

    # -- specialisation ----------------------------------------------------------------
    def evaluate(
        self, semiring: Semiring, valuation: Mapping[Hashable, object] | Callable[[Hashable], object]
    ) -> object:
        """Evaluate the polynomial in another semiring (the universal property).

        ``valuation`` maps every token to an element of the target semiring.
        """
        if callable(valuation) and not isinstance(valuation, Mapping):
            lookup: Mapping[Hashable, object] = _CallableMapping(valuation)
        else:
            lookup = valuation  # type: ignore[assignment]
        result = semiring.zero()
        for monomial, coefficient in self.terms:
            value = monomial.evaluate(semiring, lookup)
            for _ in range(coefficient):
                result = semiring.plus(result, value)
        return result

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coefficient in self.terms:
            text = str(monomial)
            parts.append(text if coefficient == 1 else f"{coefficient}·{text}")
        return " + ".join(parts)


class _CallableMapping(Mapping):
    """Adapter exposing a callable as a read-only mapping."""

    def __init__(self, func: Callable[[Hashable], object]) -> None:
        self._func = func

    def __getitem__(self, key: Hashable) -> object:
        return self._func(key)

    def __iter__(self):  # pragma: no cover - not enumerable
        return iter(())

    def __len__(self) -> int:  # pragma: no cover - not enumerable
        return 0


class PolynomialSemiring(Semiring[Polynomial]):
    """The semiring of provenance polynomials ``N[X]``."""

    name = "polynomial"

    def zero(self) -> Polynomial:
        return Polynomial.zero()

    def one(self) -> Polynomial:
        return Polynomial.one()

    def plus(self, left: Polynomial, right: Polynomial) -> Polynomial:
        return left.plus(right)

    def times(self, left: Polynomial, right: Polynomial) -> Polynomial:
        return left.times(right)
