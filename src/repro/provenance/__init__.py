"""Provenance semirings (Green, Karvounarakis, Tannen; PODS 2007).

The paper models the joint (``·``) and alternative (``+``) use of citation
annotations "using the semirings approach of [8]".  This package provides the
semiring machinery:

* :mod:`repro.provenance.semiring` — the abstract commutative semiring,
* :mod:`repro.provenance.semirings` — standard instances (Boolean, counting,
  tropical, lineage, why-provenance, security levels),
* :mod:`repro.provenance.polynomial` — the most general semiring of
  provenance polynomials ``N[X]``,
* :mod:`repro.provenance.annotated` — annotation-propagating evaluation of
  conjunctive queries over annotated databases.
"""

from repro.provenance.semiring import Semiring
from repro.provenance.semirings import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    SecuritySemiring,
    TropicalSemiring,
    WhySemiring,
)
from repro.provenance.polynomial import Monomial, Polynomial, PolynomialSemiring
from repro.provenance.annotated import (
    AnnotatedDatabase,
    AnnotatedRelation,
    evaluate_annotated,
)

__all__ = [
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "TropicalSemiring",
    "LineageSemiring",
    "WhySemiring",
    "SecuritySemiring",
    "Monomial",
    "Polynomial",
    "PolynomialSemiring",
    "AnnotatedRelation",
    "AnnotatedDatabase",
    "evaluate_annotated",
]
