"""The abstract commutative semiring.

A commutative semiring ``(K, +, ·, 0, 1)`` satisfies, for all a, b, c in K::

    (a + b) + c = a + (b + c)        (a · b) · c = a · (b · c)
    a + b = b + a                    a · b = b · a
    a + 0 = a                        a · 1 = a
    a · 0 = 0
    a · (b + c) = a · b + a · c

Annotation propagation through a conjunctive query uses ``·`` for joint use
(join) and ``+`` for alternative use (union / projection of multiple
derivations) — exactly the structure the citation model borrows.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Generic, TypeVar

from repro.errors import ProvenanceError

K = TypeVar("K")


class Semiring(Generic[K]):
    """Abstract base class for commutative semirings.

    Subclasses implement :meth:`zero`, :meth:`one`, :meth:`plus` and
    :meth:`times`; the base class provides n-ary folds and a property-check
    helper used by the test-suite.
    """

    name: str = "abstract"

    def zero(self) -> K:
        """The additive identity (annotation of absent tuples)."""
        raise NotImplementedError

    def one(self) -> K:
        """The multiplicative identity (neutral annotation)."""
        raise NotImplementedError

    def plus(self, left: K, right: K) -> K:
        """Alternative use of two annotations."""
        raise NotImplementedError

    def times(self, left: K, right: K) -> K:
        """Joint use of two annotations."""
        raise NotImplementedError

    # -- folds -------------------------------------------------------------
    def sum(self, values: Iterable[K]) -> K:
        """Fold ``+`` over *values* (``zero`` for the empty iterable)."""
        result = self.zero()
        for value in values:
            result = self.plus(result, value)
        return result

    def product(self, values: Iterable[K]) -> K:
        """Fold ``·`` over *values* (``one`` for the empty iterable)."""
        result = self.one()
        for value in values:
            result = self.times(result, value)
        return result

    # -- diagnostics --------------------------------------------------------
    def check_axioms(self, samples: Iterable[K]) -> None:
        """Check the semiring axioms on a finite sample; raise on violation.

        Used by property-based tests; not intended for production paths.
        """
        samples = list(samples)
        zero, one = self.zero(), self.one()
        for a in samples:
            if self.plus(a, zero) != a:
                raise ProvenanceError(f"{self.name}: a + 0 != a for {a!r}")
            if self.times(a, one) != a:
                raise ProvenanceError(f"{self.name}: a * 1 != a for {a!r}")
            if self.times(a, zero) != zero:
                raise ProvenanceError(f"{self.name}: a * 0 != 0 for {a!r}")
        for a in samples:
            for b in samples:
                if self.plus(a, b) != self.plus(b, a):
                    raise ProvenanceError(f"{self.name}: + not commutative for {a!r}, {b!r}")
                if self.times(a, b) != self.times(b, a):
                    raise ProvenanceError(f"{self.name}: * not commutative for {a!r}, {b!r}")
        for a in samples:
            for b in samples:
                for c in samples:
                    if self.plus(self.plus(a, b), c) != self.plus(a, self.plus(b, c)):
                        raise ProvenanceError(f"{self.name}: + not associative")
                    if self.times(self.times(a, b), c) != self.times(a, self.times(b, c)):
                        raise ProvenanceError(f"{self.name}: * not associative")
                    left = self.times(a, self.plus(b, c))
                    right = self.plus(self.times(a, b), self.times(a, c))
                    if left != right:
                        raise ProvenanceError(f"{self.name}: * does not distribute over +")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
