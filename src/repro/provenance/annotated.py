"""Annotated relations and annotation-propagating query evaluation.

An :class:`AnnotatedRelation` attaches a semiring element to every tuple.
:func:`evaluate_annotated` evaluates a conjunctive query over an
:class:`AnnotatedDatabase`, combining annotations with ``·`` within a binding
(joint use of the matched base tuples) and with ``+`` across the bindings
that produce the same output tuple (alternative derivations) — the standard
semiring semantics the citation model builds on.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import ProvenanceError, UnknownRelationError
from repro.provenance.polynomial import Polynomial, PolynomialSemiring
from repro.provenance.semiring import Semiring
from repro.query.ast import ConjunctiveQuery, Constant, Variable
from repro.query.evaluator import QueryEvaluator, result_schema
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


class AnnotatedRelation:
    """A relation whose tuples carry semiring annotations."""

    def __init__(
        self,
        schema: RelationSchema,
        semiring: Semiring,
        annotations: Mapping[tuple, object] | None = None,
    ) -> None:
        self.schema = schema
        self.semiring = semiring
        self._annotations: dict[tuple, object] = {}
        for row, annotation in (annotations or {}).items():
            self.set(row, annotation)

    def set(self, row: tuple, annotation: object) -> None:
        """Annotate *row*; annotating with ``zero`` removes it."""
        row = self.schema.validate_row(tuple(row))
        if annotation == self.semiring.zero():
            self._annotations.pop(row, None)
        else:
            self._annotations[row] = annotation

    def add(self, row: tuple, annotation: object) -> None:
        """Combine *annotation* with the existing one using ``+``."""
        row = self.schema.validate_row(tuple(row))
        current = self._annotations.get(row, self.semiring.zero())
        self.set(row, self.semiring.plus(current, annotation))

    def annotation(self, row: tuple) -> object:
        """Annotation of *row* (``zero`` when absent)."""
        return self._annotations.get(tuple(row), self.semiring.zero())

    def support(self) -> Relation:
        """The plain relation of rows with non-zero annotation."""
        return Relation(self.schema, self._annotations.keys())

    def items(self) -> Iterable[tuple[tuple, object]]:
        """Iterate over (row, annotation) pairs."""
        return self._annotations.items()

    def __len__(self) -> int:
        return len(self._annotations)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._annotations if isinstance(row, (tuple, list)) else False

    def __repr__(self) -> str:
        return f"AnnotatedRelation({self.schema.name}, {len(self)} rows, {self.semiring.name})"


class AnnotatedDatabase:
    """A database paired with per-tuple annotations in a common semiring."""

    def __init__(self, database: Database, semiring: Semiring) -> None:
        self.database = database
        self.semiring = semiring
        self._relations: dict[str, AnnotatedRelation] = {}
        for relation in database.relations():
            self._relations[relation.schema.name] = AnnotatedRelation(
                relation.schema, semiring
            )

    @staticmethod
    def with_tuple_tokens(database: Database) -> "AnnotatedDatabase":
        """Annotate every base tuple with its own polynomial variable.

        The token is ``(relation_name, row)`` which identifies the tuple; the
        result is the universal ``N[X]`` annotation from which any other
        semiring annotation can be derived by evaluation.
        """
        annotated = AnnotatedDatabase(database, PolynomialSemiring())
        for relation in database.relations():
            target = annotated.relation(relation.schema.name)
            for row in relation:
                target.set(row, Polynomial.variable((relation.schema.name, row)))
        return annotated

    def relation(self, name: str) -> AnnotatedRelation:
        """The annotated relation named *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def annotate(self, relation: str, row: tuple, annotation: object) -> None:
        """Annotate a base tuple (the tuple must exist in the database)."""
        base = self.database.relation(relation)
        if tuple(row) not in base:
            raise ProvenanceError(
                f"cannot annotate missing tuple {row!r} of relation {relation!r}"
            )
        self.relation(relation).set(row, annotation)

    def annotation(self, relation: str, row: tuple) -> object:
        """Annotation of a base tuple (``zero`` when not annotated)."""
        return self.relation(relation).annotation(row)


def evaluate_annotated(
    query: ConjunctiveQuery,
    annotated: AnnotatedDatabase,
    default_annotation: object | None = None,
) -> AnnotatedRelation:
    """Evaluate *query* propagating annotations through joins and projections.

    Parameters
    ----------
    query:
        The conjunctive query (λ-parameters are ignored).
    annotated:
        The annotated database.
    default_annotation:
        Annotation assumed for base tuples that exist in the database but
        carry no explicit annotation.  Defaults to the semiring ``one`` so
        that un-annotated tuples are neutral under joint use.
    """
    semiring = annotated.semiring
    if default_annotation is None:
        default_annotation = semiring.one()
    evaluator = QueryEvaluator(annotated.database)
    query = query.without_parameters()
    output = AnnotatedRelation(result_schema(query), semiring)

    for binding in evaluator.bindings(query):
        annotation = semiring.one()
        for atom in query.body:
            row = []
            for term in atom.terms:
                if isinstance(term, Constant):
                    row.append(term.value)
                else:
                    assert isinstance(term, Variable)
                    row.append(binding[term])
            base = annotated.relation(atom.predicate)
            tuple_annotation = base.annotation(tuple(row))
            if tuple_annotation == semiring.zero():
                tuple_annotation = default_annotation
            annotation = semiring.times(annotation, tuple_annotation)
        out_row = evaluator.output_tuple(query, binding)
        output.add(out_row, annotation)
    return output


def lineage_of(
    query: ConjunctiveQuery, database: Database
) -> dict[tuple, set[Hashable]]:
    """Convenience: the set of contributing base tuples per output tuple."""
    annotated = AnnotatedDatabase.with_tuple_tokens(database)
    result = evaluate_annotated(query, annotated)
    return {row: polynomial.tokens() for row, polynomial in result.items()}
