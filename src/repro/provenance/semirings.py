"""Standard provenance semirings.

These are the classical instances from Green, Karvounarakis & Tannen (2007):

================  ====================================  =============================
Semiring          Carrier                               Interpretation
================  ====================================  =============================
Boolean           {True, False}                         set semantics
Counting          natural numbers                       bag semantics / multiplicity
Tropical          naturals ∪ {∞} with (min, +)          cost of the cheapest derivation
Lineage           sets of tuple identifiers             which tuples contributed
Why-provenance    sets of sets of tuple identifiers     witnesses (minimal support sets)
Security          ordered clearance levels (min, max)   clearance needed to see a tuple
================  ====================================  =============================
"""

from __future__ import annotations

import math
from collections.abc import Hashable

from repro.provenance.semiring import Semiring


class BooleanSemiring(Semiring[bool]):
    """Set semantics: a tuple is either present or absent."""

    name = "boolean"

    def zero(self) -> bool:
        return False

    def one(self) -> bool:
        return True

    def plus(self, left: bool, right: bool) -> bool:
        return left or right

    def times(self, left: bool, right: bool) -> bool:
        return left and right


class CountingSemiring(Semiring[int]):
    """Bag semantics: annotations count the number of derivations."""

    name = "counting"

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def plus(self, left: int, right: int) -> int:
        return left + right

    def times(self, left: int, right: int) -> int:
        return left * right


class TropicalSemiring(Semiring[float]):
    """(min, +) semiring: cost of the cheapest derivation."""

    name = "tropical"

    def zero(self) -> float:
        return math.inf

    def one(self) -> float:
        return 0.0

    def plus(self, left: float, right: float) -> float:
        return min(left, right)

    def times(self, left: float, right: float) -> float:
        return left + right


class LineageSemiring(Semiring[frozenset[Hashable]]):
    """Lineage: the set of base tuples that contribute to an answer.

    Both ``+`` and ``·`` are set union; ``0`` is a distinguished bottom
    element represented here by ``frozenset({_ABSENT})`` so that
    ``a · 0 = 0`` holds (a plain empty set would violate that axiom).
    """

    name = "lineage"
    _ABSENT = ("__absent__",)

    def zero(self) -> frozenset:
        return frozenset({self._ABSENT})

    def one(self) -> frozenset:
        return frozenset()

    def plus(self, left: frozenset, right: frozenset) -> frozenset:
        if left == self.zero():
            return right
        if right == self.zero():
            return left
        return left | right

    def times(self, left: frozenset, right: frozenset) -> frozenset:
        if left == self.zero() or right == self.zero():
            return self.zero()
        return left | right


class WhySemiring(Semiring[frozenset[frozenset[Hashable]]]):
    """Why-provenance: sets of witnesses (each witness is a set of tuple ids)."""

    name = "why"

    def zero(self) -> frozenset:
        return frozenset()

    def one(self) -> frozenset:
        return frozenset({frozenset()})

    def plus(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def times(self, left: frozenset, right: frozenset) -> frozenset:
        return frozenset(a | b for a in left for b in right)


class SecuritySemiring(Semiring[int]):
    """Access-control semiring over clearance levels ``0 (public) .. top``.

    ``+`` takes the minimum clearance among alternative derivations (the
    most permissive way to obtain the tuple) and ``·`` the maximum over
    jointly used tuples (all of them must be visible).  ``zero`` is a level
    above ``top`` meaning "never visible".
    """

    name = "security"

    def __init__(self, top: int = 5) -> None:
        self.top = top

    def zero(self) -> int:
        return self.top + 1

    def one(self) -> int:
        return 0

    def plus(self, left: int, right: int) -> int:
        return min(left, right)

    def times(self, left: int, right: int) -> int:
        return max(left, right)
