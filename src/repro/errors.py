"""Exception hierarchy for the :mod:`repro` data-citation library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Subsystems raise the more specific subclasses
below; each carries a human-readable message and, where useful, structured
context attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation, attribute or key was used inconsistently with the schema."""


class IntegrityError(ReproError):
    """A key or foreign-key constraint was violated by an update."""


class UnknownRelationError(SchemaError):
    """A query or update referenced a relation that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class ArityError(SchemaError):
    """An atom or tuple had the wrong number of terms for its relation."""

    def __init__(self, relation: str, expected: int, got: int) -> None:
        super().__init__(
            f"relation {relation!r} has arity {expected}, got {got} terms"
        )
        self.relation = relation
        self.expected = expected
        self.got = got


class QueryError(ReproError):
    """A conjunctive query was malformed (unsafe head, bad parameters, ...)."""


class ParseError(QueryError):
    """The textual form of a query or view could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None) -> None:
        location = f" at position {position}" if position is not None else ""
        super().__init__(f"{message}{location}")
        self.text = text
        self.position = position


class StaticAnalysisError(ReproError):
    """Static analysis found error-severity diagnostics under strict mode.

    Carries the offending diagnostics (see :mod:`repro.analysis`) on the
    ``diagnostics`` attribute so callers can render or serialize them.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class PlanVerificationError(StaticAnalysisError):
    """The IR verifier rejected a compiled plan under ``verify_plans="strict"``.

    Raised from :meth:`~repro.core.engine.CitationEngine.compile_plan` when the
    dataflow verifier (:mod:`repro.analysis.ir`) finds error-severity
    diagnostics in a compiled ``JoinProgram``/``ReducedProgram``.  Like its
    base class it carries the offending diagnostics on ``diagnostics``.
    """


class RewritingError(ReproError):
    """Query rewriting using views failed or produced an inconsistent result."""


class NoRewritingError(RewritingError):
    """No equivalent rewriting of the query exists over the given views."""

    def __init__(self, query_name: str) -> None:
        super().__init__(
            f"query {query_name!r} has no equivalent rewriting over the citation views"
        )
        self.query_name = query_name


class CitationError(ReproError):
    """Citation construction failed (missing view, bad policy, ...)."""


class PolicyError(CitationError):
    """A citation-combination policy was misconfigured."""


class VersionError(ReproError):
    """A versioned-database operation referenced an unknown or invalid version."""


class ProvenanceError(ReproError):
    """A provenance annotation or semiring operation was invalid."""


class OntologyError(ReproError):
    """An RDF/ontology operation referenced unknown classes or produced a cycle."""


# -- resilience taxonomy ------------------------------------------------------
#
# The serving layer classifies failures into *transient* (worth retrying:
# the same request may succeed a moment later on an unchanged system) and
# *permanent* (retrying is wasted work: the request itself is at fault).
# :class:`TransientError` is the marker base; :func:`is_transient` folds in
# stdlib exception types that cross the process/OS boundary, so callers ask
# one question instead of growing private isinstance ladders.


class TransientError(ReproError):
    """Marker base for failures that may succeed if the caller retries.

    Subclasses describe conditions of the *system* (a crashed worker, a full
    queue) rather than of the *request*; a :class:`RetryPolicy
    <repro.resilience.retry.RetryPolicy>` retries these and nothing else.
    """


class DeadlineExceeded(ReproError, TimeoutError):
    """A request ran past its deadline and was cooperatively cancelled.

    Raised from a cancellation checkpoint (join loop, prelude pass, shard
    worker, cache wait) the moment the propagated
    :class:`~repro.resilience.deadline.Deadline` expires.  ``where`` names the
    checkpoint that fired, so traces show how deep the request got.  Also a
    :class:`TimeoutError` so existing ``except TimeoutError`` callers treat
    engine-side cancellation like the pool-side timeout it replaces.

    Deliberately **not** transient: retrying an expired request against the
    same deadline cannot succeed, and the caller's clock — not the system's
    state — is what changed.
    """

    def __init__(self, where: str = "", remaining: float = 0.0) -> None:
        suffix = f" at {where}" if where else ""
        super().__init__(f"deadline exceeded{suffix}")
        self.where = where
        self.remaining = remaining

    def __reduce__(self):  # crosses the fork-shard pickle pipe intact
        return (type(self), (self.where, self.remaining))


class Overloaded(TransientError):
    """The service shed this request: admission queue and in-flight slots full.

    Carries ``retry_after`` (seconds), a backoff hint derived from observed
    service times, so well-behaved clients spread their retries instead of
    stampeding the moment capacity frees up.
    """

    def __init__(self, message: str, retry_after: float = 0.1) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def __reduce__(self):  # crosses the fork-shard pickle pipe intact
        return (type(self), (self.args[0], self.retry_after))


class WorkerCrashError(TransientError):
    """A shard worker process died before reporting a result.

    Raised by :func:`repro.concurrency.fork_map` when a forked child exits
    without writing its result pickle (killed, OOM, ``os._exit`` in a fault
    injection).  Transient by definition — the input shard is intact and
    re-running it in-process succeeds — which is exactly the contract the
    evaluator's serial-retry degradation path relies on.
    """

    def __init__(self, pid: int, status: int) -> None:
        super().__init__(f"shard worker {pid} died without a result (status {status})")
        self.pid = pid
        self.status = status

    def __reduce__(self):  # crosses the fork-shard pickle pipe intact
        return (type(self), (self.pid, self.status))


def is_transient(error: BaseException) -> bool:
    """Whether *error* is worth retrying against an unchanged request.

    True for the :class:`TransientError` hierarchy plus stdlib conditions
    that originate in the environment rather than the request:
    ``ConnectionError`` and ``InterruptedError``.  :class:`DeadlineExceeded`
    is always permanent (see its docstring), even though it subclasses
    ``TimeoutError``.
    """
    if isinstance(error, DeadlineExceeded):
        return False
    return isinstance(error, (TransientError, ConnectionError, InterruptedError))


#: Exception type -> stable machine-readable code for response envelopes.
#: Checked in order, so subclasses must precede their bases.
_ERROR_CODES: tuple[tuple[type[BaseException], str], ...] = (
    (DeadlineExceeded, "DEADLINE_EXCEEDED"),
    (Overloaded, "OVERLOADED"),
    (WorkerCrashError, "WORKER_CRASHED"),
    (ParseError, "PARSE_ERROR"),
    (PlanVerificationError, "PLAN_VERIFICATION_FAILED"),
    (StaticAnalysisError, "STATIC_ANALYSIS_FAILED"),
    (NoRewritingError, "NO_REWRITING"),
    (RewritingError, "REWRITING_FAILED"),
    (UnknownRelationError, "UNKNOWN_RELATION"),
    (ArityError, "ARITY_MISMATCH"),
    (SchemaError, "SCHEMA_ERROR"),
    (IntegrityError, "INTEGRITY_ERROR"),
    (QueryError, "QUERY_ERROR"),
    (PolicyError, "POLICY_ERROR"),
    (CitationError, "CITATION_ERROR"),
    (VersionError, "VERSION_ERROR"),
    (ProvenanceError, "PROVENANCE_ERROR"),
    (OntologyError, "ONTOLOGY_ERROR"),
    (TimeoutError, "TIMEOUT"),
)


def error_code_for(error: BaseException) -> str:
    """Stable machine-readable code for *error* (``"DEADLINE_EXCEEDED"``, ...).

    Unlisted exception types fall back to the upper-cased class name, so
    every error gets *some* code and new types degrade gracefully rather
    than all collapsing into one bucket.
    """
    for exc_type, code in _ERROR_CODES:
        if isinstance(error, exc_type):
            return code
    return type(error).__name__.upper()
