"""Exception hierarchy for the :mod:`repro` data-citation library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Subsystems raise the more specific subclasses
below; each carries a human-readable message and, where useful, structured
context attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation, attribute or key was used inconsistently with the schema."""


class IntegrityError(ReproError):
    """A key or foreign-key constraint was violated by an update."""


class UnknownRelationError(SchemaError):
    """A query or update referenced a relation that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class ArityError(SchemaError):
    """An atom or tuple had the wrong number of terms for its relation."""

    def __init__(self, relation: str, expected: int, got: int) -> None:
        super().__init__(
            f"relation {relation!r} has arity {expected}, got {got} terms"
        )
        self.relation = relation
        self.expected = expected
        self.got = got


class QueryError(ReproError):
    """A conjunctive query was malformed (unsafe head, bad parameters, ...)."""


class ParseError(QueryError):
    """The textual form of a query or view could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None) -> None:
        location = f" at position {position}" if position is not None else ""
        super().__init__(f"{message}{location}")
        self.text = text
        self.position = position


class StaticAnalysisError(ReproError):
    """Static analysis found error-severity diagnostics under strict mode.

    Carries the offending diagnostics (see :mod:`repro.analysis`) on the
    ``diagnostics`` attribute so callers can render or serialize them.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class PlanVerificationError(StaticAnalysisError):
    """The IR verifier rejected a compiled plan under ``verify_plans="strict"``.

    Raised from :meth:`~repro.core.engine.CitationEngine.compile_plan` when the
    dataflow verifier (:mod:`repro.analysis.ir`) finds error-severity
    diagnostics in a compiled ``JoinProgram``/``ReducedProgram``.  Like its
    base class it carries the offending diagnostics on ``diagnostics``.
    """


class RewritingError(ReproError):
    """Query rewriting using views failed or produced an inconsistent result."""


class NoRewritingError(RewritingError):
    """No equivalent rewriting of the query exists over the given views."""

    def __init__(self, query_name: str) -> None:
        super().__init__(
            f"query {query_name!r} has no equivalent rewriting over the citation views"
        )
        self.query_name = query_name


class CitationError(ReproError):
    """Citation construction failed (missing view, bad policy, ...)."""


class PolicyError(CitationError):
    """A citation-combination policy was misconfigured."""


class VersionError(ReproError):
    """A versioned-database operation referenced an unknown or invalid version."""


class ProvenanceError(ReproError):
    """A provenance annotation or semiring operation was invalid."""


class OntologyError(ReproError):
    """An RDF/ontology operation referenced unknown classes or produced a cycle."""
