"""The shipped :class:`~repro.api.backend.CitationBackend` adapters.

One adapter per query model the paper spans:

* :mod:`repro.api.backends.relational` — conjunctive queries over the
  :class:`~repro.core.engine.CitationEngine` (Datalog and SQL dialects);
* :mod:`repro.api.backends.union` — unions of conjunctive queries, with
  per-disjunct plan compilation;
* :mod:`repro.api.backends.temporal` — timestamped "citation evolution"
  with ``as_of`` era pinning;
* :mod:`repro.api.backends.rdf` — basic-graph-pattern queries with
  ontology-resolved class citations;
* :mod:`repro.api.backends.versioned` — time-travel citation against a
  versioned store, producing persistent (fixity-checked) citations.
"""

from repro.api.backends.rdf import RDFBackend, RDFCitedResult
from repro.api.backends.relational import RelationalBackend
from repro.api.backends.temporal import TemporalBackend
from repro.api.backends.union import UnionBackend
from repro.api.backends.versioned import VersionedBackend

__all__ = [
    "RelationalBackend",
    "UnionBackend",
    "TemporalBackend",
    "RDFBackend",
    "RDFCitedResult",
    "VersionedBackend",
]
