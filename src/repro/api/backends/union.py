"""The UCQ backend: unions of conjunctive queries behind the API.

Adapts :func:`~repro.core.union_engine.compile_union_plan` /
:func:`~repro.core.union_engine.execute_union_plan`, so a cached union plan
skips the rewriting search of *every* disjunct.  The fingerprint is the
sorted multiset of the disjuncts' structural fingerprints: two unions that
differ only in variable naming, atom order or disjunct order share one cache
slot.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from collections.abc import Hashable

from repro.api.backend import BackendCapabilities, CitationBackend
from repro.api.backends.relational import _looks_like_program
from repro.api.envelope import CitationRequest
from repro.core.citation import Citation
from repro.core.engine import CitationEngine
from repro.core.union_engine import (
    UnionCitationPlan,
    UnionCitedResult,
    compile_union_plan,
    execute_union_plan,
)
from repro.errors import CitationError
from repro.query.ast import ConjunctiveQuery
from repro.query.evaluator import result_schema
from repro.query.ucq import UnionQuery, as_union
from repro.relational.relation import Relation
from repro.service.fingerprint import fingerprint

__all__ = ["UnionBackend"]


class UnionBackend(CitationBackend):
    """Serve union-of-CQ citation requests over a :class:`CitationEngine`."""

    name = "union"

    def __init__(
        self,
        engine: CitationEngine,
        on_uncovered_disjunct: str = "error",
        name: str | None = None,
    ) -> None:
        self.engine = engine
        self.on_uncovered_disjunct = on_uncovered_disjunct
        if name is not None:
            self.name = name
        self._capabilities = BackendCapabilities(
            name=self.name,
            description="unions of conjunctive queries, one compiled plan per disjunct",
            dialects=("program",),
            payload_types=(UnionQuery, str),
            modes=("formal", "economical"),
            supports_plan_cache=True,
            supports_result_cache=True,
            supports_as_of=False,
            supports_policy_override=False,
        )

    def capabilities(self) -> BackendCapabilities:
        return self._capabilities

    # -- routing ---------------------------------------------------------------
    def claims(self, request: CitationRequest) -> bool:
        if request.as_of is not None:
            return False
        if request.dialect != "auto":
            return request.dialect in self._capabilities.dialects
        if isinstance(request.query, UnionQuery):
            return True
        # A multi-rule program string routes here under auto-detection — the
        # exact complement of what RelationalBackend declines.
        return isinstance(request.query, str) and _looks_like_program(request.query)

    # -- the five phases -------------------------------------------------------
    def parse(self, request: CitationRequest) -> UnionQuery:
        query = request.query
        if isinstance(query, str):
            # Accept ';' as a single-line rule separator (the CLI's batch
            # files are one query per line).
            return UnionQuery.parse(query.replace(";", "\n"))
        if isinstance(query, (UnionQuery, ConjunctiveQuery, Sequence)):
            return as_union(query)
        raise CitationError(
            f"the {self.name!r} backend takes a UnionQuery, a ConjunctiveQuery, "
            f"a sequence of ConjunctiveQuery or a program string, "
            f"not {type(query).__name__}"
        )

    def fingerprint(self, parsed: UnionQuery, request: CitationRequest) -> str:
        disjunct_keys = sorted(fingerprint(disjunct) for disjunct in parsed.disjuncts)
        digest = hashlib.sha256(("ucq1|" + "|".join(disjunct_keys)).encode("utf-8"))
        return digest.hexdigest()[:32]

    def compile(self, parsed: UnionQuery, request: CitationRequest) -> UnionCitationPlan:
        return compile_union_plan(
            self.engine,
            parsed,
            mode=self._mode(request),
            on_uncovered_disjunct=self.on_uncovered_disjunct,
        )

    def execute(
        self, plan: UnionCitationPlan, parsed: UnionQuery, request: CitationRequest
    ) -> UnionCitedResult:
        result = execute_union_plan(self.engine, plan)
        return self.rebind(result, parsed, request)

    # -- cache integration -----------------------------------------------------
    def _mode(self, request: CitationRequest) -> str:
        return request.mode or self.engine.mode

    def cache_variant(self, request: CitationRequest) -> Hashable:
        return ("mode", self._mode(request), "uncovered", self.on_uncovered_disjunct)

    def result_token(self, request: CitationRequest) -> Hashable:
        return self.engine.plan_token()

    def plan_token(self, request: CitationRequest) -> Hashable:
        generation, epoch = self.engine.plan_token()
        if self._mode(request) == "economical":
            return (generation, epoch)
        return ("any", epoch)

    def rebind(
        self, result: UnionCitedResult, parsed: UnionQuery, request: CitationRequest
    ) -> UnionCitedResult:
        """Re-attach a cached union result to an isomorphic variant.

        Rows, tuple citations and records are identical across the
        isomorphism class; the result schema takes the variant's first
        disjunct's head names and the reported query text is the variant's.
        ``per_disjunct_rewritings`` keeps the executed query's disjunct
        order.
        """
        if parsed == result.query:
            return result
        schema = result_schema(parsed.disjuncts[0])
        relation = Relation(
            type(schema)(parsed.name, schema.attributes, key=None), result.result.rows
        )
        citation = Citation(
            result.citation.records,
            expression=result.citation.expression,
            query_text=str(parsed),
        )
        return UnionCitedResult(
            query=parsed,
            tuple_citations=result.tuple_citations,
            citation=citation,
            result=relation,
            per_disjunct_rewritings=result.per_disjunct_rewritings,
            uncovered_disjuncts=result.uncovered_disjuncts,
        )

    # -- response helpers ------------------------------------------------------
    def citation_of(self, result: UnionCitedResult) -> Citation:
        return result.citation
