"""The temporal backend: citation evolution with ``as_of`` era pinning.

Adapts :class:`~repro.core.temporal.TemporalCitationEngine`.  An ``as_of``
request is rewritten at parse time into an ordinary conjunctive query whose
timestamped atoms carry the era as a constant — from there the request flows
through the relational machinery unchanged, and because the era constant
participates in the structural fingerprint, every era gets its own plan and
result cache entries.
"""

from __future__ import annotations

from repro.api.backend import BackendCapabilities
from repro.api.backends.relational import RelationalBackend
from repro.api.envelope import CitationRequest
from repro.core.temporal import TemporalCitationEngine
from repro.errors import CitationError
from repro.query.ast import ConjunctiveQuery
from repro.query.parser import parse_query

__all__ = ["TemporalBackend"]


class TemporalBackend(RelationalBackend):
    """Serve era-pinned citation requests over timestamp-parameterized views."""

    name = "temporal"

    def __init__(
        self, temporal_engine: TemporalCitationEngine, name: str | None = None
    ) -> None:
        super().__init__(temporal_engine.engine, name=name or type(self).name)
        self.temporal = temporal_engine
        self._capabilities = BackendCapabilities(
            name=self.name,
            description=(
                "timestamped citation evolution; as_of pins a single era"
            ),
            dialects=("datalog",),
            payload_types=(str, ConjunctiveQuery),
            modes=("formal", "economical"),
            supports_plan_cache=True,
            supports_result_cache=True,
            supports_as_of=True,
            supports_policy_override=True,
        )

    def parse(self, request: CitationRequest) -> ConjunctiveQuery:
        query = request.query
        if isinstance(query, str):
            query = parse_query(query.strip())
        elif not isinstance(query, ConjunctiveQuery):
            raise CitationError(
                f"the {self.name!r} backend takes a ConjunctiveQuery or a Datalog "
                f"string, not {type(query).__name__}"
            )
        if request.as_of is not None:
            query = self.temporal.restrict_to_era(query, request.as_of)
        return query
