"""The conjunctive-query backend: the paper's core model behind the API.

Adapts :class:`~repro.core.engine.CitationEngine` — its
``compile_plan`` / ``execute_plan`` split maps directly onto the backend
protocol, and the structural fingerprint of
:mod:`repro.service.fingerprint` provides isomorphism-invariant cache keys.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.api.backend import BackendCapabilities, CitationBackend
from repro.api.envelope import CitationRequest
from repro.core.citation import Citation
from repro.core.engine import CitationEngine, CitationPlan, CitedResult
from repro.errors import CitationError
from repro.query.ast import ConjunctiveQuery
from repro.query.evaluator import result_schema
from repro.query.parser import parse_query
from repro.query.sql import parse_sql
from repro.relational.relation import Relation
from repro.service.fingerprint import fingerprint

__all__ = ["RelationalBackend"]


class RelationalBackend(CitationBackend):
    """Serve conjunctive-query citation requests over a :class:`CitationEngine`."""

    name = "relational"

    def __init__(
        self,
        engine: CitationEngine,
        parser: Callable[[object], ConjunctiveQuery] | None = None,
        name: str | None = None,
    ) -> None:
        self.engine = engine
        self._parser = parser
        if name is not None:
            self.name = name
        self._capabilities = BackendCapabilities(
            name=self.name,
            description="conjunctive queries over the view-rewriting citation engine",
            dialects=("datalog", "sql"),
            payload_types=(str, ConjunctiveQuery),
            modes=("formal", "economical"),
            supports_plan_cache=True,
            supports_result_cache=True,
            supports_as_of=False,
            supports_policy_override=True,
        )

    def capabilities(self) -> BackendCapabilities:
        return self._capabilities

    # -- routing ---------------------------------------------------------------
    def claims(self, request: CitationRequest) -> bool:
        if not super().claims(request):
            return False
        # Under auto-routing, a multi-rule program string belongs to the
        # union backend, not here.
        if request.dialect == "auto" and isinstance(request.query, str):
            return not _looks_like_program(request.query)
        return True

    # -- the five phases -------------------------------------------------------
    def parse(self, request: CitationRequest) -> ConjunctiveQuery:
        query = request.query
        if not isinstance(query, str):
            if isinstance(query, ConjunctiveQuery):
                return query
            raise CitationError(
                f"the {self.name!r} backend takes a ConjunctiveQuery or a string, "
                f"not {type(query).__name__}"
            )
        if self._parser is not None:
            return self._parser(query)
        text = query.strip()
        if request.dialect == "sql" or (
            request.dialect == "auto" and text.lower().startswith("select")
        ):
            return parse_sql(text, self.engine.database.schema)
        return parse_query(text)

    def fingerprint(self, parsed: ConjunctiveQuery, request: CitationRequest) -> str:
        """Fingerprint of the *minimized core*, not the query as submitted.

        Cores are unique up to isomorphism and the fingerprint is
        isomorphism-invariant, so every redundant variant of the same query
        lands on one plan-cache and result-cache entry.  The engine caches
        the analysis, so the subsequent ``compile`` reuses it; with the
        engine's ``analysis="off"`` the core *is* the parsed query.
        """
        return fingerprint(self.engine.analyze(parsed).core)

    def compile(self, parsed: ConjunctiveQuery, request: CitationRequest) -> CitationPlan:
        return self.engine.compile_plan(parsed, self._mode(request))

    def execute(
        self, plan: CitationPlan, parsed: ConjunctiveQuery, request: CitationRequest
    ) -> CitedResult:
        if request.policy is None:
            return self.engine.execute_plan(plan, query=parsed)
        return self.engine.execute_plan(plan, query=parsed, policy=request.policy)

    # -- cache integration -----------------------------------------------------
    def _mode(self, request: CitationRequest) -> str:
        return request.mode or self.engine.mode

    def cache_variant(self, request: CitationRequest) -> Hashable:
        return ("mode", self._mode(request))

    def result_token(self, request: CitationRequest) -> Hashable:
        return self.engine.plan_token()

    def plan_token(self, request: CitationRequest) -> Hashable:
        """Formal-mode plans survive data changes; economical ones do not.

        The rewriting search reads only the query and the view definitions,
        so formal (and fallback) plans are stamped ``("any", epoch)`` and
        outlive ordinary inserts/deletes; economical plans embed a cost-based
        selection made against the data and carry the full generation stamp.
        """
        generation, epoch = self.engine.plan_token()
        if self._mode(request) == "economical":
            return (generation, epoch)
        return ("any", epoch)

    def rebind(
        self, result: CitedResult, parsed: ConjunctiveQuery, request: CitationRequest
    ) -> CitedResult:
        """Re-attach a cached result to an isomorphic variant of its query.

        Answer rows and citations are identical across an isomorphism class;
        only the result schema (head variable names) and the reported query
        text differ.
        """
        if parsed == result.query:
            return result
        relation = Relation(result_schema(parsed), result.result.rows)
        citation = Citation(
            result.citation.records,
            expression=result.citation.expression,
            query_text=str(parsed),
            version=result.citation.version,
            timestamp=result.citation.timestamp,
        )
        return CitedResult(
            query=parsed,
            rewritings=result.rewritings,
            tuple_citations=result.tuple_citations,
            citation=citation,
            policy=result.policy,
            mode=result.mode,
            result=relation,
            used_fallback=result.used_fallback,
        )

    # -- response helpers ------------------------------------------------------
    def citation_of(self, result: CitedResult) -> Citation:
        return result.citation


def _looks_like_program(text: str) -> bool:
    """Cheap heuristic: does *text* contain more than one Datalog rule?"""
    return text.count(":-") > 1
