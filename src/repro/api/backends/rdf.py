"""The RDF backend: basic-graph-pattern citation behind the API.

Adapts :class:`~repro.rdf.citation_rdf.RDFCitationEngine`.  There is no
rewriting search to compile away, so the backend opts out of plan caching;
result caching still applies, keyed by a structural fingerprint of the BGP
(via its conjunctive-query translation) plus the projection names, and
stamped with the triple store's generation so mutations invalidate it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from collections.abc import Hashable

from repro.api.backend import BackendCapabilities, CitationBackend
from repro.api.envelope import CitationRequest
from repro.core.citation import Citation
from repro.errors import CitationError
from repro.rdf.bgp import BGPQuery, bgp_to_conjunctive_query
from repro.rdf.citation_rdf import RDFCitationEngine
from repro.service.fingerprint import fingerprint

__all__ = ["RDFBackend", "RDFCitedResult"]


@dataclass
class RDFCitedResult:
    """The answer of a BGP query with its aggregate citation."""

    query: BGPQuery
    solutions: list[dict[str, object]]
    citation: Citation

    def rows(self) -> list[dict[str, object]]:
        """The projected solution bindings."""
        return self.solutions

    def __len__(self) -> int:
        return len(self.solutions)


class RDFBackend(CitationBackend):
    """Serve BGP citation requests over an :class:`RDFCitationEngine`."""

    name = "rdf"

    def __init__(self, engine: RDFCitationEngine, name: str | None = None) -> None:
        self.engine = engine
        if name is not None:
            self.name = name
        self._capabilities = BackendCapabilities(
            name=self.name,
            description=(
                "basic graph patterns with ontology-resolved class citations"
            ),
            dialects=("bgp",),
            payload_types=(BGPQuery,),
            modes=(),
            supports_plan_cache=False,
            supports_result_cache=True,
            supports_as_of=False,
            supports_policy_override=False,
        )

    def capabilities(self) -> BackendCapabilities:
        return self._capabilities

    # -- the five phases -------------------------------------------------------
    def parse(self, request: CitationRequest) -> BGPQuery:
        if isinstance(request.query, BGPQuery):
            return request.query
        raise CitationError(
            f"the {self.name!r} backend takes a BGPQuery payload, "
            f"not {type(request.query).__name__}"
        )

    def fingerprint(self, parsed: BGPQuery, request: CitationRequest) -> str:
        """Structural fingerprint of the BGP plus its projection names.

        The conjunctive-query translation normalises variable names away, but
        RDF solutions are dicts keyed by the projected names — two BGPs that
        differ only in projection naming must therefore *not* share a result
        cache slot.
        """
        structural = fingerprint(bgp_to_conjunctive_query(parsed))
        digest = hashlib.sha256(
            ("bgp1|" + structural + "|" + "|".join(parsed.projection)).encode("utf-8")
        )
        return digest.hexdigest()[:32]

    def compile(self, parsed: BGPQuery, request: CitationRequest) -> BGPQuery:
        return parsed

    def execute(
        self, plan: BGPQuery, parsed: BGPQuery, request: CitationRequest
    ) -> RDFCitedResult:
        solutions, citation = self.engine.cite_query(parsed)
        return RDFCitedResult(query=parsed, solutions=solutions, citation=citation)

    # -- cache integration -----------------------------------------------------
    def result_token(self, request: CitationRequest) -> Hashable:
        return ("rdf", self.engine.store.generation)

    # -- response helpers ------------------------------------------------------
    def citation_of(self, result: RDFCitedResult) -> Citation:
        return result.citation
