"""The versioned backend: time-travel citation behind the API.

Adapts :class:`~repro.versioning.persistent.CitationResolver`.  ``as_of``
names a committed version id (``None`` pins the latest committed version at
request time); the response's native result is a
:class:`~repro.versioning.persistent.PersistentCitation` — the fixity
artifact a reader can later re-resolve and hash-verify.

Committed versions are immutable, so cache entries for a pinned version
never go stale: the validity token is the version id itself, and the
resolver memoizes one engine per version so repeated time-travel requests
skip re-materialisation.
"""

from __future__ import annotations

from dataclasses import replace
from collections.abc import Hashable

from repro.api.backend import BackendCapabilities, CitationBackend
from repro.api.envelope import CitationRequest
from repro.core.citation import Citation
from repro.core.engine import CitationPlan
from repro.errors import CitationError
from repro.query.ast import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.service.fingerprint import fingerprint
from repro.versioning.persistent import CitationResolver, PersistentCitation

__all__ = ["VersionedBackend"]


class VersionedBackend(CitationBackend):
    """Serve version-pinned citation requests over a :class:`CitationResolver`."""

    name = "versioned"

    def __init__(self, resolver: CitationResolver, name: str | None = None) -> None:
        self.resolver = resolver
        if name is not None:
            self.name = name
        self._capabilities = BackendCapabilities(
            name=self.name,
            description=(
                "persistent, fixity-checked citations against committed versions"
            ),
            dialects=("datalog",),
            payload_types=(str, ConjunctiveQuery),
            modes=("formal", "economical"),
            supports_plan_cache=True,
            supports_result_cache=True,
            supports_as_of=True,
            supports_policy_override=False,
        )

    def capabilities(self) -> BackendCapabilities:
        return self._capabilities

    def _version_id(self, request: CitationRequest) -> int:
        if request.as_of is not None:
            if not isinstance(request.as_of, int):
                raise CitationError(
                    f"the {self.name!r} backend expects an integer version id as "
                    f"as_of, got {request.as_of!r}"
                )
            return request.as_of
        return self.resolver.versioned.current_version.version_id

    # -- the five phases -------------------------------------------------------
    def parse(self, request: CitationRequest) -> ConjunctiveQuery:
        query = request.query
        if isinstance(query, str):
            return parse_query(query.strip())
        if isinstance(query, ConjunctiveQuery):
            return query
        raise CitationError(
            f"the {self.name!r} backend takes a ConjunctiveQuery or a Datalog "
            f"string, not {type(query).__name__}"
        )

    def fingerprint(self, parsed: ConjunctiveQuery, request: CitationRequest) -> str:
        return fingerprint(parsed)

    def compile(self, parsed: ConjunctiveQuery, request: CitationRequest) -> CitationPlan:
        engine = self.resolver.engine_for(self._version_id(request))
        return engine.compile_plan(parsed, request.mode or engine.mode)

    def execute(
        self, plan: CitationPlan, parsed: ConjunctiveQuery, request: CitationRequest
    ) -> PersistentCitation:
        version_id = self._version_id(request)
        engine = self.resolver.engine_for(version_id)
        result = engine.execute_plan(plan, query=parsed)
        query_text = (
            request.query.strip() if isinstance(request.query, str) else str(parsed)
        )
        return self.resolver.persistent_from_result(query_text, version_id, result)

    # -- cache integration -----------------------------------------------------
    def cache_variant(self, request: CitationRequest) -> Hashable:
        # Resolver engines are built with the CitationEngine default mode;
        # avoid materialising a version just to read it.
        return ("version", self._version_id(request), request.mode or "formal")

    def result_token(self, request: CitationRequest) -> Hashable:
        # Committed versions are immutable: entries for a pinned version are
        # valid forever.  The version id in the cache *variant* separates
        # versions; the token never changes.
        return ("version", self._version_id(request))

    def rebind(
        self,
        result: PersistentCitation,
        parsed: ConjunctiveQuery,
        request: CitationRequest,
    ) -> PersistentCitation:
        """Serve a cached persistent citation under the variant's query text."""
        query_text = (
            request.query.strip() if isinstance(request.query, str) else str(parsed)
        )
        if query_text == result.query_text:
            return result
        return replace(result, query_text=query_text)

    # -- response helpers ------------------------------------------------------
    def citation_of(self, result: PersistentCitation) -> Citation:
        return result.citation()

    def row_count(self, result: PersistentCitation) -> int | None:
        return None
