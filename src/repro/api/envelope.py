"""The request/response envelope of the unified citation API.

Every citation workload — conjunctive query, union, temporal "as of era",
RDF basic graph pattern, versioned time travel — is expressed as one
:class:`CitationRequest` and answered with one :class:`CitationResponse`.
The envelope is deliberately backend-agnostic: the ``query`` payload may be a
string in any supported dialect or an already-constructed query object, and
the optional fields (``mode``, ``as_of``, ``policy``) are interpreted by the
backend the request is routed to.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field, replace
from collections.abc import Mapping
from typing import Any

from repro.core.citation import Citation

__all__ = ["CitationRequest", "CitationResponse"]

_request_ids = itertools.count(1)
_request_id_lock = threading.Lock()


def next_request_id() -> str:
    """A process-unique request id (assigned when the caller supplies none)."""
    with _request_id_lock:
        return f"req-{next(_request_ids)}"


@dataclass(frozen=True)
class CitationRequest:
    """One citation request, routable to any registered backend.

    Parameters
    ----------
    query:
        The query payload.  A string (Datalog rule, SQL ``SELECT``, or a
        multi-rule union program, depending on *dialect*) or a query object
        (:class:`~repro.query.ast.ConjunctiveQuery`,
        :class:`~repro.query.ucq.UnionQuery`,
        :class:`~repro.rdf.bgp.BGPQuery`).
    backend:
        Explicit backend name (``"relational"``, ``"union"``, ``"temporal"``,
        ``"rdf"``, ``"versioned"``, or any registered name).  ``None`` lets
        the registry route by payload type and dialect.
    dialect:
        How to read a string payload: ``"auto"`` (default), ``"datalog"``,
        ``"sql"``, ``"program"`` (multi-rule union) or ``"bgp"``.
    mode:
        ``"formal"`` or ``"economical"`` for the CQ-family backends;
        ``None`` uses the backend engine's default.
    as_of:
        A point in data history: a timestamp *era* for the temporal backend,
        a committed *version id* for the versioned backend.  Backends that do
        not support time travel reject requests carrying it.
    policy:
        A :class:`~repro.core.policy.CitationPolicy` override applied to this
        request only.  Plan caching still applies (plans are
        policy-independent) but the result cache is bypassed, since cached
        results embed the policy they were evaluated under.
    request_id:
        Caller-supplied correlation id; the service assigns ``req-N`` when
        omitted.
    timeout:
        Per-request deadline in seconds.  The service converts it into a
        propagated :class:`~repro.resilience.deadline.Deadline` the moment the
        request starts executing, so the engine's cooperative cancellation
        checkpoints stop the evaluation instead of letting it finish in the
        background; the response then carries a
        :class:`~repro.errors.DeadlineExceeded` error.  ``None`` (default)
        means no per-request deadline (a batch deadline may still apply).
    metadata:
        Free-form annotations carried through to the response.  The service
        honours one key — ``no_result_cache: True`` skips the result cache
        for this request (``CitationService.explain`` sets it so an explained
        request actually executes) — and ignores the rest.
    """

    query: Any
    backend: str | None = None
    dialect: str = "auto"
    mode: str | None = None
    as_of: Any = None
    policy: Any = None
    request_id: str | None = None
    timeout: float | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def with_id(self) -> "CitationRequest":
        """This request, with a generated id when none was supplied."""
        if self.request_id is not None:
            return self
        return replace(self, request_id=next_request_id())


@dataclass
class CitationResponse:
    """The outcome of one request served by ``CitationService.submit``.

    Exactly one of :attr:`result` / :attr:`error` is set.  :attr:`result` is
    the backend-native cited result (:class:`~repro.core.engine.CitedResult`,
    :class:`~repro.core.union_engine.UnionCitedResult`,
    :class:`~repro.api.backends.rdf.RDFCitedResult` or
    :class:`~repro.versioning.persistent.PersistentCitation`);
    :attr:`citation` is the backend-independent view of its citation.
    ``cached`` is true when no evaluation ran for this request (result-cache
    hit or within-batch deduplication onto another request's execution).
    ``stale`` marks a degraded answer: under deadline or overload pressure
    the service (when configured with ``serve_stale=True``) may fall back to
    a result-cache entry whose generation stamp no longer matches the live
    database.  ``error_code`` is the stable machine-readable classification
    of :attr:`error` (see :func:`repro.errors.error_code_for`), ``None`` on
    success.
    """

    request: CitationRequest
    backend: str | None = None
    result: Any = None
    citation: Citation | None = None
    error: Exception | None = None
    error_code: str | None = None
    elapsed: float = 0.0
    cached: bool = False
    stale: bool = False
    fingerprint: str | None = None
    row_count: int | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def request_id(self) -> str | None:
        return self.request.request_id

    def unwrap(self) -> Any:
        """Return the backend-native result, re-raising the stored error."""
        if self.error is not None:
            raise self.error
        return self.result

    def to_payload(self) -> dict[str, Any]:
        """A JSON-friendly summary (the CLI's JSONL line format)."""
        from repro.core.formatter.jsonfmt import citation_payload

        payload: dict[str, Any] = {
            "query": str(self.request.query).strip(),
            "backend": self.backend,
            "ok": self.ok,
            "cached": self.cached,
            "elapsed_ms": round(self.elapsed * 1000.0, 3),
        }
        if self.request.request_id is not None:
            payload["request_id"] = self.request.request_id
        if self.stale:
            payload["stale"] = True
        if self.ok:
            if self.row_count is not None:
                payload["rows"] = self.row_count
            if self.citation is not None:
                payload["citation"] = citation_payload(self.citation)
        else:
            payload["error"] = str(self.error)
            payload["error_type"] = type(self.error).__name__
            if self.error_code is not None:
                payload["error_code"] = self.error_code
        return payload
