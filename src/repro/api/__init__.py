"""One citation API over every query model the paper spans.

The repo grew one engine per query model — conjunctive queries
(:class:`~repro.core.engine.CitationEngine`), unions
(:func:`~repro.core.union_engine.cite_union`), timestamped evolution
(:class:`~repro.core.temporal.TemporalCitationEngine`), RDF/ontology citation
(:class:`~repro.rdf.citation_rdf.RDFCitationEngine`) and versioned data
(:class:`~repro.versioning.persistent.CitationResolver`) — each with a
differently-shaped entry point.  This package is the single front door:

* :mod:`repro.api.envelope` — the :class:`CitationRequest` /
  :class:`CitationResponse` request/response envelope (query payload, dialect,
  mode, as-of version or era, policy override, request id);
* :mod:`repro.api.backend` — the :class:`CitationBackend` protocol
  (``capabilities`` / ``parse`` / ``fingerprint`` / ``compile`` / ``execute``)
  and the :class:`BackendRegistry` that routes requests;
* :mod:`repro.api.backends` — the five shipped adapters: relational CQ,
  UCQ/union, temporal, RDF/BGP and versioned-store.

:class:`~repro.service.service.CitationService` routes every request through
one ``submit()`` / ``submit_batch()`` path over registered backends, so
fingerprint-keyed plan/result caching, within-batch deduplication, thread-pool
concurrency and metrics apply to *all* workloads, not just conjunctive
queries.
"""

from repro.api.backend import BackendCapabilities, BackendRegistry, CitationBackend
from repro.api.backends import (
    RDFBackend,
    RDFCitedResult,
    RelationalBackend,
    TemporalBackend,
    UnionBackend,
    VersionedBackend,
)
from repro.api.envelope import CitationRequest, CitationResponse

__all__ = [
    "CitationRequest",
    "CitationResponse",
    "CitationBackend",
    "BackendCapabilities",
    "BackendRegistry",
    "RelationalBackend",
    "UnionBackend",
    "TemporalBackend",
    "RDFBackend",
    "RDFCitedResult",
    "VersionedBackend",
]
