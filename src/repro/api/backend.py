"""The pluggable backend protocol of the unified citation API.

A :class:`CitationBackend` adapts one query model (relational CQ, union,
temporal, RDF, versioned, ...) to the five-phase serving pipeline that
:class:`~repro.service.service.CitationService` drives:

``parse`` → ``fingerprint`` → ``compile`` (plan-cached) → ``execute``
(result-cached) → cite.

The backend also tells the service how to cache its work: validity tokens
(:meth:`CitationBackend.result_token` / :meth:`CitationBackend.plan_token`)
stamp cache entries so mutations invalidate them, a cache variant
(:meth:`CitationBackend.cache_variant`) separates entries that share a
fingerprint but must not share an execution (e.g. formal vs economical mode,
or different pinned versions), and :meth:`CitationBackend.rebind` re-attaches
a cached result to a structurally identical variant of its query.

Registering a new backend is three steps: subclass :class:`CitationBackend`,
describe it with :class:`BackendCapabilities`, and
``service.register_backend(MyBackend(...))`` — see the backend-author guide
in the README.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Hashable, Iterator
from typing import Any

from repro.api.envelope import CitationRequest
from repro.core.citation import Citation
from repro.errors import CitationError

__all__ = ["BackendCapabilities", "CitationBackend", "BackendRegistry"]


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can do, used for routing and cache policy.

    ``dialects`` are the string-payload dialects the backend parses;
    ``payload_types`` the query object types it accepts.  The three
    ``supports_*`` flags gate the service's plan cache, result cache and
    per-request policy overrides; ``supports_as_of`` admits requests that pin
    a point in data history (a temporal era or a committed version).
    """

    name: str
    description: str = ""
    dialects: tuple[str, ...] = ()
    payload_types: tuple[type, ...] = ()
    modes: tuple[str, ...] = ()
    supports_plan_cache: bool = True
    supports_result_cache: bool = True
    supports_as_of: bool = False
    supports_policy_override: bool = False

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly summary (``stats()`` and the CLI use this)."""
        return {
            "name": self.name,
            "description": self.description,
            "dialects": list(self.dialects),
            "payload_types": [t.__name__ for t in self.payload_types],
            "modes": list(self.modes),
            "supports_plan_cache": self.supports_plan_cache,
            "supports_result_cache": self.supports_result_cache,
            "supports_as_of": self.supports_as_of,
            "supports_policy_override": self.supports_policy_override,
        }


class CitationBackend(abc.ABC):
    """Adapter between the request envelope and one citation engine.

    The five abstract phases are the contract; the cache-integration hooks
    have sensible defaults (no variant, identity rebind, result token shared
    with the plan token) that a backend overrides as needed.
    """

    #: Registry key and default routing name; adapters set this.
    name: str = "backend"

    # -- the five phases -----------------------------------------------------
    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static description of the backend (cached by callers)."""

    @abc.abstractmethod
    def parse(self, request: CitationRequest) -> Any:
        """Turn the request payload into the backend's query object."""

    @abc.abstractmethod
    def fingerprint(self, parsed: Any, request: CitationRequest) -> str:
        """A structural cache key: isomorphic queries collide, others don't."""

    @abc.abstractmethod
    def compile(self, parsed: Any, request: CitationRequest) -> Any:
        """The expensive, reusable part (e.g. the view-rewriting search)."""

    @abc.abstractmethod
    def execute(self, plan: Any, parsed: Any, request: CitationRequest) -> Any:
        """Evaluate a compiled plan into the backend-native cited result."""

    # -- cache integration ---------------------------------------------------
    @abc.abstractmethod
    def result_token(self, request: CitationRequest) -> Hashable:
        """Validity stamp for cached results (changes when the data does)."""

    def plan_token(self, request: CitationRequest) -> Hashable:
        """Validity stamp for cached plans (default: same as results)."""
        return self.result_token(request)

    def cache_variant(self, request: CitationRequest) -> Hashable:
        """Discriminator added to cache keys beside the fingerprint."""
        return None

    def rebind(self, result: Any, parsed: Any, request: CitationRequest) -> Any:
        """Re-attach a cached result to an isomorphic variant of its query."""
        return result

    # -- response helpers ----------------------------------------------------
    @abc.abstractmethod
    def citation_of(self, result: Any) -> Citation:
        """The backend-independent citation carried by a native result."""

    def row_count(self, result: Any) -> int | None:
        """Number of answer rows, when the result has that notion."""
        try:
            return len(result)
        except TypeError:
            return None

    # -- routing -------------------------------------------------------------
    def claims(self, request: CitationRequest) -> bool:
        """Whether this backend should serve *request* under auto-routing.

        The default matches on capabilities: explicit dialects beat payload
        types, and ``as_of`` requests only go to time-travel backends.
        """
        capabilities = self.capabilities()
        if request.as_of is not None and not capabilities.supports_as_of:
            return False
        if request.dialect != "auto":
            return request.dialect in capabilities.dialects
        return isinstance(request.query, capabilities.payload_types)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class BackendRegistry:
    """Named backends plus request routing, in registration order.

    Routing honours an explicit ``request.backend`` name first; otherwise the
    first registered backend whose :meth:`CitationBackend.claims` accepts the
    request wins, so registration order is the routing priority.
    """

    def __init__(self) -> None:
        self._backends: dict[str, CitationBackend] = {}

    def register(self, backend: CitationBackend, replace: bool = False) -> CitationBackend:
        """Add *backend* under its name; duplicate names need ``replace``."""
        if backend.name in self._backends and not replace:
            raise CitationError(
                f"a backend named {backend.name!r} is already registered "
                "(pass replace=True to swap it)"
            )
        self._backends[backend.name] = backend
        return backend

    def unregister(self, name: str) -> None:
        """Remove the backend registered under *name* (missing is an error)."""
        if name not in self._backends:
            raise CitationError(f"no backend named {name!r} is registered")
        del self._backends[name]

    def get(self, name: str) -> CitationBackend:
        """The backend registered under *name*."""
        backend = self._backends.get(name)
        if backend is None:
            known = ", ".join(sorted(self._backends)) or "none"
            raise CitationError(f"unknown backend {name!r} (registered: {known})")
        return backend

    def route(self, request: CitationRequest) -> CitationBackend:
        """The backend that should serve *request*."""
        if request.backend is not None:
            return self.get(request.backend)
        for backend in self._backends.values():
            if backend.claims(request):
                return backend
        raise CitationError(
            f"no registered backend claims a {type(request.query).__name__} payload "
            f"with dialect {request.dialect!r}"
            + (" and an as_of pin" if request.as_of is not None else "")
        )

    def names(self) -> list[str]:
        return list(self._backends)

    def capabilities(self) -> dict[str, dict[str, Any]]:
        """Capability summaries of every registered backend."""
        return {name: b.capabilities().as_dict() for name, b in self._backends.items()}

    def __iter__(self) -> Iterator[CitationBackend]:
        return iter(self._backends.values())

    def __contains__(self, name: object) -> bool:
        return name in self._backends

    def __len__(self) -> int:
        return len(self._backends)
