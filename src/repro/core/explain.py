"""Human-readable explanations of how a citation was constructed.

Data citation is about credit, so users (and database owners debugging their
view specifications) need to see *why* a citation looks the way it does: which
rewritings were considered, which one the cost model preferred, how many
bindings each answer tuple had, and which view contributed which snippet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import CitationEngine, CitedResult
from repro.core.schema_level import cite_schema_level
from repro.errors import NoRewritingError
from repro.query.ast import ConjunctiveQuery
from repro.rewriting.cost import RewritingCostModel


@dataclass
class CitationExplanation:
    """Structured explanation of one citation construction."""

    query: str
    rewritings: list[dict] = field(default_factory=list)
    selected_rewriting: str | None = None
    tuples: list[dict] = field(default_factory=list)
    aggregate_records: int = 0
    aggregate_size: int = 0
    policy: str = ""
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the explanation as indented text."""
        lines = [f"Query: {self.query}", f"Policy: {self.policy}"]
        lines.append(f"Rewritings considered: {len(self.rewritings)}")
        for entry in self.rewritings:
            marker = "*" if entry["rewriting"] == self.selected_rewriting else " "
            lines.append(
                f"  {marker} {entry['rewriting']}"
                f"  [views: {', '.join(entry['views'])};"
                f" est. citations: {entry['estimated_citation_size']:.0f};"
                f" parameterized: {entry['parameterized']}]"
            )
        if self.selected_rewriting is not None:
            lines.append("  (* = preferred by the minimum-estimated-size cost model)")
        lines.append(f"Answer tuples: {len(self.tuples)}")
        for entry in self.tuples[:10]:
            lines.append(
                f"  {entry['tuple']}: {entry['bindings']} binding(s), "
                f"{entry['records']} citation record(s) — {entry['expression']}"
            )
        if len(self.tuples) > 10:
            lines.append(f"  ... ({len(self.tuples) - 10} more tuples)")
        lines.append(
            f"Aggregate citation: {self.aggregate_records} record(s), size {self.aggregate_size}"
        )
        for note in self.notes:
            lines.append(f"Note: {note}")
        return "\n".join(lines)


def explain_citation(
    engine: CitationEngine, query: ConjunctiveQuery | str, mode: str = "formal"
) -> CitationExplanation:
    """Run the citation pipeline and explain every step of it."""
    query = engine._as_query(query)
    explanation = CitationExplanation(query=str(query), policy=engine.policy.name)
    model = RewritingCostModel(engine.database)

    try:
        rewritings = engine.rewritings(query)
    except Exception as error:  # pragma: no cover - defensive
        explanation.notes.append(f"rewriting failed: {error}")
        return explanation

    if not rewritings:
        explanation.notes.append(
            "no equivalent rewriting exists over the citation views; the engine would "
            + (
                "fall back to the database-level citation"
                if engine.on_no_rewriting == "fallback"
                else "raise NoRewritingError"
            )
        )
        return explanation

    ranked = model.rank(rewritings)
    for rewriting, cost in ranked:
        explanation.rewritings.append(
            {
                "rewriting": str(rewriting.query),
                "views": [view.name for view in rewriting.views_used()],
                "estimated_citation_size": cost.citation_size,
                "estimated_evaluation_cost": cost.evaluation_cost,
                "parameterized": rewriting.uses_parameterized_view(),
            }
        )
    explanation.selected_rewriting = str(ranked[0][0].query)

    result: CitedResult = engine.cite(query, mode=mode)  # type: ignore[arg-type]
    for tuple_citation in result.tuple_citations:
        explanation.tuples.append(
            {
                "tuple": tuple_citation.row,
                "bindings": _binding_count(tuple_citation),
                "records": len(tuple_citation.records),
                "expression": str(tuple_citation.expression),
            }
        )
    explanation.aggregate_records = result.citation.record_count()
    explanation.aggregate_size = result.citation.size()

    if any(entry["parameterized"] for entry in explanation.rewritings):
        explanation.notes.append(
            "at least one rewriting goes through a λ-parameterized view: its citation size "
            "grows with the number of distinct parameter values in the result"
        )
    return explanation


def _binding_count(tuple_citation) -> int:
    """Number of leaf joint-terms in the tuple's expression (≈ bindings used)."""
    from repro.core.expression import Alternative, Joint, RewriteAlternative

    expression = tuple_citation.expression
    if isinstance(expression, RewriteAlternative):
        operands = expression.operands
    else:
        operands = (expression,)
    count = 0
    for operand in operands:
        if isinstance(operand, Alternative):
            count = max(count, len(operand.operands))
        elif isinstance(operand, Joint) or operand is not None:
            count = max(count, 1)
    return count


def explain_coverage(
    engine: CitationEngine, workload: list[ConjunctiveQuery | str]
) -> list[dict]:
    """For every workload query, report whether and how the views cover it."""
    rows = []
    for query in workload:
        parsed = engine._as_query(query)
        try:
            rewritings = engine.rewritings(parsed)
        except NoRewritingError:
            rewritings = []
        if rewritings:
            schema_level = cite_schema_level(engine, parsed)
            rows.append(
                {
                    "query": parsed.name,
                    "covered": True,
                    "rewritings": len(rewritings),
                    "citation_records": schema_level.citation.record_count(),
                }
            )
        else:
            rows.append(
                {
                    "query": parsed.name,
                    "covered": False,
                    "rewritings": 0,
                    "citation_records": 0,
                }
            )
    return rows
