"""Human-readable citation rendering."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.citation import Citation
    from repro.core.record import CitationRecord

#: Fields rendered first, in this order, when present.
_PREFERRED_ORDER = (
    "authors",
    "contributors",
    "title",
    "source",
    "publisher",
    "year",
    "version",
    "timestamp",
    "identifier",
    "url",
)

#: Internal bookkeeping fields that are not part of the human-readable text.
_HIDDEN_FIELDS = {"view"}


def _listify(value: object) -> list[object]:
    if isinstance(value, tuple):
        return list(value)
    return [value]


def format_record(record: "CitationRecord", abbreviate_after: int | None = None) -> str:
    """Render one citation record as a single human-readable line.

    ``abbreviate_after`` truncates long name lists with "et al." — the paper's
    "Size of citations" discussion notes this is how conventional citations
    stay small.
    """
    parts: list[str] = []
    fields = record.as_dict()
    ordered = [f for f in _PREFERRED_ORDER if f in fields] + [
        f for f in sorted(fields) if f not in _PREFERRED_ORDER and f not in _HIDDEN_FIELDS
    ]
    for field in ordered:
        value = fields[field]
        if field in ("authors", "contributors"):
            names = [str(v) for v in _listify(value)]
            if abbreviate_after is not None and len(names) > abbreviate_after:
                names = names[:abbreviate_after] + ["et al."]
            parts.append(", ".join(names))
        elif field == "parameters" and isinstance(value, tuple):
            rendered = ", ".join(f"{k}={v}" for k, v in value)
            parts.append(f"[{rendered}]")
        else:
            values = _listify(value)
            parts.append("; ".join(str(v) for v in values))
    return ". ".join(str(p) for p in parts if str(p))


def format_citation(citation: "Citation", abbreviate_after: int | None = None) -> str:
    """Render a full citation (one line per record plus fixity metadata)."""
    lines = [
        format_record(record, abbreviate_after=abbreviate_after)
        for record in citation.sorted_records()
    ]
    suffix: list[str] = []
    if citation.version:
        suffix.append(f"Database version: {citation.version}")
    if citation.timestamp:
        suffix.append(f"Accessed: {citation.timestamp}")
    if citation.query_text:
        suffix.append(f"Query: {citation.query_text}")
    return "\n".join([line for line in lines if line] + suffix)
