"""JSON citation rendering."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.citation import Citation


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def citation_payload(citation: "Citation") -> dict:
    """Build the JSON-serialisable payload of a citation."""
    records = []
    for record in citation.sorted_records():
        fields = {}
        for key, value in sorted(record.as_dict().items()):
            if key == "parameters" and isinstance(value, tuple):
                fields[key] = {str(k): _jsonable(v) for k, v in value}
            else:
                fields[key] = _jsonable(value)
        records.append(fields)
    payload: dict[str, object] = {"records": records, "size": citation.size()}
    if citation.version:
        payload["version"] = citation.version
    if citation.timestamp:
        payload["timestamp"] = citation.timestamp
    if citation.query_text:
        payload["query"] = citation.query_text
    if citation.expression is not None:
        payload["expression"] = citation.symbolic()
    return payload


def format_citation(citation: "Citation") -> str:
    """Render a citation as pretty-printed JSON."""
    return json.dumps(citation_payload(citation), indent=2, sort_keys=True)
