"""XML citation rendering."""

from __future__ import annotations

from typing import TYPE_CHECKING
from xml.sax.saxutils import escape

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.citation import Citation
    from repro.core.record import CitationRecord


def _render_value(name: str, value: object, indent: str) -> list[str]:
    if isinstance(value, tuple) and name == "parameters":
        lines = [f"{indent}<parameters>"]
        for key, parameter_value in value:
            lines.append(
                f'{indent}  <parameter name="{escape(str(key))}">'
                f"{escape(str(parameter_value))}</parameter>"
            )
        lines.append(f"{indent}</parameters>")
        return lines
    if isinstance(value, tuple):
        lines = [f"{indent}<{name}>"]
        for item in value:
            lines.append(f"{indent}  <item>{escape(str(item))}</item>")
        lines.append(f"{indent}</{name}>")
        return lines
    return [f"{indent}<{name}>{escape(str(value))}</{name}>"]


def format_record(record: "CitationRecord", indent: str = "  ") -> str:
    """Render one record as a ``<record>`` element."""
    lines = [f"{indent}<record>"]
    for name, value in sorted(record.as_dict().items()):
        lines.extend(_render_value(name, value, indent + "  "))
    lines.append(f"{indent}</record>")
    return "\n".join(lines)


def format_citation(citation: "Citation") -> str:
    """Render a full citation as a ``<citation>`` document."""
    attributes = []
    if citation.version:
        attributes.append(f'version="{escape(citation.version)}"')
    if citation.timestamp:
        attributes.append(f'timestamp="{escape(citation.timestamp)}"')
    opening = "<citation" + ("".join(" " + a for a in attributes)) + ">"
    lines = ['<?xml version="1.0" encoding="UTF-8"?>', opening]
    if citation.query_text:
        lines.append(f"  <query>{escape(citation.query_text)}</query>")
    if citation.expression is not None:
        lines.append(f"  <expression>{escape(citation.symbolic())}</expression>")
    for record in citation.sorted_records():
        lines.append(format_record(record))
    lines.append("</citation>")
    return "\n".join(lines)
