"""BibTeX citation rendering."""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.citation import Citation
    from repro.core.record import CitationRecord

_FIELD_MAP = {
    "title": "title",
    "source": "howpublished",
    "publisher": "publisher",
    "year": "year",
    "url": "url",
    "identifier": "note",
    "version": "edition",
}


def _escape(value: object) -> str:
    text = str(value)
    return text.replace("{", "\\{").replace("}", "\\}")


def _slug(value: object) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "", str(value))[:24] or "entry"


def format_record(record: "CitationRecord", key: str) -> str:
    """Render one record as an ``@misc`` BibTeX entry."""
    fields = record.as_dict()
    lines = [f"@misc{{{key},"]
    people = fields.get("authors") or fields.get("contributors")
    if people is not None:
        names = people if isinstance(people, tuple) else (people,)
        lines.append(f"  author = {{{' and '.join(_escape(n) for n in names)}}},")
    for source_field, bibtex_field in _FIELD_MAP.items():
        if source_field in fields:
            lines.append(f"  {bibtex_field} = {{{_escape(fields[source_field])}}},")
    extras = {
        k: v
        for k, v in fields.items()
        if k not in _FIELD_MAP and k not in ("authors", "contributors", "view", "parameters")
    }
    if "parameters" in fields:
        rendered = ", ".join(f"{k}={v}" for k, v in fields["parameters"])
        lines.append(f"  note = {{parameters: {_escape(rendered)}}},")
    if extras:
        rendered = "; ".join(f"{k}: {v}" for k, v in sorted(extras.items()))
        lines.append(f"  annote = {{{_escape(rendered)}}},")
    lines.append("}")
    return "\n".join(lines)


def format_citation(citation: "Citation", key_prefix: str = "datacite") -> str:
    """Render a citation as a sequence of BibTeX entries."""
    entries = []
    for index, record in enumerate(citation.sorted_records(), start=1):
        stem = record.as_dict().get("view") or record.as_dict().get("title") or "record"
        key = f"{key_prefix}_{_slug(stem)}_{index}"
        entry = format_record(record, key)
        if citation.version and "edition" not in entry:
            entry = entry[:-2] + f"  edition = {{{_escape(citation.version)}}},\n}}"
        entries.append(entry)
    return "\n\n".join(entries)
