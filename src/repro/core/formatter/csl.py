"""CSL-JSON rendering (the citation format used by Zotero, Pandoc, etc.).

CSL-JSON represents each reference as an object with typed fields
(``type``, ``title``, ``author``, ``issued``, ...).  Data citations map onto
the ``dataset`` type.  This formatter complements the BibTeX/RIS/XML ones
mentioned in the paper so that downstream reference managers can ingest the
citations directly.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.citation import Citation
    from repro.core.record import CitationRecord


def _people(value: object) -> list[dict]:
    names = value if isinstance(value, tuple) else (value,)
    people = []
    for name in names:
        text = str(name).strip()
        if "," in text:
            family, given = (part.strip() for part in text.split(",", 1))
            people.append({"family": family, "given": given})
        elif " " in text:
            given, family = text.rsplit(" ", 1)
            people.append({"family": family, "given": given})
        else:
            people.append({"literal": text})
    return people


def record_to_csl(record: "CitationRecord", item_id: str) -> dict:
    """Convert one citation record into a CSL-JSON item."""
    fields = record.as_dict()
    item: dict[str, object] = {"id": item_id, "type": "dataset"}
    if "title" in fields:
        item["title"] = str(fields["title"])
    people = []
    for field in ("authors", "contributors"):
        if field in fields:
            people.extend(_people(fields[field]))
    if people:
        item["author"] = people
    if "publisher" in fields:
        item["publisher"] = str(fields["publisher"])
    if "source" in fields:
        item["container-title"] = str(fields["source"])
    if "year" in fields:
        try:
            item["issued"] = {"date-parts": [[int(fields["year"])]]}
        except (TypeError, ValueError):
            item["issued"] = {"literal": str(fields["year"])}
    if "url" in fields:
        item["URL"] = str(fields["url"])
    if "identifier" in fields:
        item["DOI" if str(fields["identifier"]).startswith("10.") else "note"] = str(
            fields["identifier"]
        )
    if "version" in fields:
        item["version"] = str(fields["version"])
    if "parameters" in fields and isinstance(fields["parameters"], tuple):
        rendered = ", ".join(f"{k}={v}" for k, v in fields["parameters"])
        item["annote"] = f"parameters: {rendered}"
    return item


def citation_to_csl(citation: "Citation", id_prefix: str = "datacite") -> list[dict]:
    """Convert a citation into a list of CSL-JSON items."""
    items = []
    for index, record in enumerate(citation.sorted_records(), start=1):
        item = record_to_csl(record, f"{id_prefix}-{index}")
        if citation.version and "version" not in item:
            item["version"] = citation.version
        if citation.timestamp:
            item["accessed"] = {"literal": citation.timestamp}
        items.append(item)
    return items


def format_citation(citation: "Citation", id_prefix: str = "datacite") -> str:
    """Render a citation as a CSL-JSON array (pretty-printed)."""
    return json.dumps(citation_to_csl(citation, id_prefix), indent=2, sort_keys=True)
