"""Citation formatters.

The paper requires the citation function to output citations "in some
appropriate format (e.g. human readable, BibTex, RIS or XML)".  Each module in
this package renders a :class:`~repro.core.citation.Citation` (a set of
citation records plus metadata) in one of those formats; JSON is added for
programmatic consumers.
"""

from repro.core.formatter import bibtex, csl, jsonfmt, ris, text, xmlfmt

__all__ = ["text", "bibtex", "ris", "xmlfmt", "jsonfmt", "csl"]
