"""RIS citation rendering."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.citation import Citation
    from repro.core.record import CitationRecord


def _listify(value: object) -> list[object]:
    return list(value) if isinstance(value, tuple) else [value]


def format_record(record: "CitationRecord") -> str:
    """Render one record as a RIS ``DATA`` entry."""
    fields = record.as_dict()
    lines = ["TY  - DATA"]
    for person in _listify(fields.get("authors", ())) + _listify(fields.get("contributors", ())):
        if person:
            lines.append(f"AU  - {person}")
    if "title" in fields:
        lines.append(f"TI  - {fields['title']}")
    if "source" in fields:
        lines.append(f"T2  - {fields['source']}")
    if "publisher" in fields:
        lines.append(f"PB  - {fields['publisher']}")
    if "year" in fields:
        lines.append(f"PY  - {fields['year']}")
    if "url" in fields:
        lines.append(f"UR  - {fields['url']}")
    if "identifier" in fields:
        lines.append(f"ID  - {fields['identifier']}")
    if "version" in fields:
        lines.append(f"ET  - {fields['version']}")
    if "parameters" in fields:
        rendered = ", ".join(f"{k}={v}" for k, v in fields["parameters"])
        lines.append(f"N1  - parameters: {rendered}")
    known = {
        "authors",
        "contributors",
        "title",
        "source",
        "publisher",
        "year",
        "url",
        "identifier",
        "version",
        "parameters",
        "view",
    }
    for key in sorted(fields):
        if key not in known:
            for value in _listify(fields[key]):
                lines.append(f"N1  - {key}: {value}")
    lines.append("ER  - ")
    return "\n".join(lines)


def format_citation(citation: "Citation") -> str:
    """Render a citation as a sequence of RIS entries."""
    blocks = [format_record(record) for record in citation.sorted_records()]
    return "\n".join(blocks)
