"""Incremental citation maintenance (Section 3, "Citation evolution").

Data and citation views evolve over time.  Recomputing every citation after
every update is wasteful; the paper calls computing citations incrementally
"an intriguing computational challenge".  The
:class:`IncrementalCitationMaintainer` keeps the cited result of one query up
to date under base-table inserts and deletes:

* updates to relations that none of the used views mention are absorbed with
  no work at all (the common case for a curated database with many tables);
* inserts are handled with semi-naive delta evaluation: only bindings that
  use at least one *new* view row are enumerated and added;
* deletes first compute which view rows disappeared; only output tuples whose
  citation used one of those rows are re-derived.

A full recomputation path (:meth:`recompute`) is kept for comparison — the E7
benchmark measures the speed-up of the incremental path over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Mapping

from repro.core.engine import CitationEngine, CitedResult, TupleCitation
from repro.core.citation import Citation
from repro.core.expression import Aggregate, alternative, rewrite_alternative
from repro.errors import CitationError
from repro.query.ast import Atom, ConjunctiveQuery, Constant, Variable
from repro.query.evaluator import Binding, QueryEvaluator
from repro.relational.relation import Relation
from repro.rewriting.rewriting import Rewriting
from repro.rewriting.view import View

#: Signature of a maintenance listener: ``(relation, kind)`` where *kind* is
#: one of ``"answer"`` (the cited result was patched), ``"records"`` (only
#: snippet contents were refreshed) or ``"ignored"`` (the update did not
#: affect the maintained result).  The serving layer registers one of these
#: to observe maintenance activity; cache *correctness* does not depend on it
#: (stale plans are already rejected via the database generation token).
MaintenanceListener = Callable[[str, str], None]


@dataclass
class MaintenanceStatistics:
    """Counters describing the work done by the maintainer."""

    updates_seen: int = 0
    updates_ignored: int = 0
    rows_recomputed: int = 0
    rows_added: int = 0
    rows_removed: int = 0
    full_recomputations: int = 0


class IncrementalCitationMaintainer:
    """Keeps the cited result of one query current under database updates."""

    def __init__(self, engine: CitationEngine, query: ConjunctiveQuery | str) -> None:
        self.engine = engine
        self.query = engine._as_query(query)
        self.statistics = MaintenanceStatistics()
        self._listeners: list[MaintenanceListener] = []
        self._result: CitedResult | None = None
        self._view_extents: dict[str, set[tuple]] = {}
        self._relations_of_interest: set[str] = set()
        self._citation_relations: set[str] = set()
        self.recompute()

    # -- state -----------------------------------------------------------------
    @property
    def result(self) -> CitedResult:
        """The current cited result."""
        assert self._result is not None
        return self._result

    def citation(self) -> Citation:
        """The current aggregate citation."""
        return self.result.citation

    def _rewritings(self) -> list[Rewriting]:
        return self.result.rewritings

    # -- invalidation hooks -----------------------------------------------------
    def add_change_listener(self, listener: MaintenanceListener) -> None:
        """Register a callback invoked after every processed update."""
        self._listeners.append(listener)

    def remove_change_listener(self, listener: MaintenanceListener) -> None:
        """Unregister a previously added listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, relation: str, kind: str) -> None:
        for listener in self._listeners:
            listener(relation, kind)

    def _views_in_use(self) -> list[View]:
        views: list[View] = []
        for rewriting in self._rewritings():
            for view in rewriting.views_used():
                if view not in views:
                    views.append(view)
        return views

    # -- full recomputation -------------------------------------------------------
    def recompute(self) -> CitedResult:
        """Recompute the cited result from scratch (also refreshes caches)."""
        self.engine.invalidate_caches()
        self._result = self.engine.cite(self.query)
        self.statistics.full_recomputations += 1
        self._view_extents = {
            name: set(relation.rows)
            for name, relation in self.engine.view_relations().items()
        }
        self._relations_of_interest = {
            atom.predicate
            for view in self._views_in_use()
            for atom in view.query.body
        }
        views_in_use = {view.name for view in self._views_in_use()}
        self._citation_relations = {
            atom.predicate
            for citation_view in self.engine.citation_views
            if citation_view.name in views_in_use
            for citation_query in citation_view.citation_queries
            for atom in citation_query.body
        } - self._relations_of_interest
        return self._result

    # -- update entry points ----------------------------------------------------------
    def insert(self, relation: str, row: tuple | Mapping[str, object]) -> bool:
        """Apply an insert to the database and maintain the citations."""
        changed = self.engine.database.insert(relation, row)
        return self._after_update(relation, changed)

    def delete(self, relation: str, row: tuple) -> bool:
        """Apply a delete to the database and maintain the citations."""
        changed = self.engine.database.delete(relation, row)
        return self._after_update(relation, changed)

    def _after_update(self, relation: str, changed: bool) -> bool:
        self.statistics.updates_seen += 1
        if not changed:
            self.statistics.updates_ignored += 1
            return False
        if relation in self._relations_of_interest:
            self._apply_view_deltas()
            self._notify(relation, "answer")
            return True
        if relation in self._citation_relations:
            # Only the snippet contents changed: the answer set and the
            # expressions' structure are unaffected, but every citation record
            # must be rebuilt from the updated snippets.
            self._refresh_citation_records()
            self._notify(relation, "records")
            return True
        self.statistics.updates_ignored += 1
        self._notify(relation, "ignored")
        return False

    def _refresh_citation_records(self) -> None:
        """Rebuild the citation records of all tuples after a snippet update.

        The engine's record cache is generation-aware, so the mutation that
        triggered this call has already made it refresh on next access; only
        the stored tuple citations need re-deriving.
        """
        self._patch_rows({tc.row for tc in self.result.tuple_citations})

    # -- delta machinery -----------------------------------------------------------------
    def _apply_view_deltas(self) -> None:
        """Refresh view extents, find added/removed view rows and patch the result.

        ``engine.view_relations()`` re-materialises by itself after the
        mutation (generation-keyed cache), so no forced invalidation is
        needed here.
        """
        new_extents = {
            name: set(relation.rows)
            for name, relation in self.engine.view_relations().items()
        }
        added: dict[str, set[tuple]] = {}
        removed: dict[str, set[tuple]] = {}
        for name, rows in new_extents.items():
            old = self._view_extents.get(name, set())
            plus = rows - old
            minus = old - rows
            if plus:
                added[name] = plus
            if minus:
                removed[name] = minus
        self._view_extents = new_extents
        if not added and not removed:
            self.statistics.updates_ignored += 1
            return
        affected_rows = self._rows_using(removed) if removed else set()
        new_rows = self._delta_output_rows(added) if added else set()
        self._patch_rows(affected_rows | new_rows)

    def _rows_using(self, removed: Mapping[str, set[tuple]]) -> set[tuple]:
        """Output rows whose citation used a view row that has disappeared.

        Conservative: an output row is affected when, for some rewriting, one
        of its recorded bindings instantiates a view atom to a removed row.
        Bindings are re-derived from the stored tuple citations' expressions
        (the parameter valuations) plus the rewriting structure; to stay
        sound we simply mark every output row of a rewriting that uses a view
        with removed rows.  Precision is then restored by re-deriving those
        rows (rows that still have derivations keep their citations).
        """
        views_with_removals = set(removed)
        affected: set[tuple] = set()
        for rewriting in self._rewritings():
            if views_with_removals & {atom.predicate for atom in rewriting.query.body}:
                affected.update(tc.row for tc in self.result.tuple_citations)
                break
        return affected

    def _delta_output_rows(self, added: Mapping[str, set[tuple]]) -> set[tuple]:
        """Output rows that gain at least one new derivation (semi-naive delta)."""
        new_rows: set[tuple] = set()
        relations = self.engine.view_relations()
        for rewriting in self._rewritings():
            for index, atom in enumerate(rewriting.query.body):
                delta_rows = added.get(atom.predicate)
                if not delta_rows:
                    continue
                delta_name = f"__delta_{atom.predicate}__"
                extras = dict(relations)
                extras[delta_name] = Relation(
                    relations[atom.predicate].schema, delta_rows
                )
                body = list(rewriting.query.body)
                body[index] = Atom(delta_name, atom.terms)
                delta_query = ConjunctiveQuery(
                    rewriting.query.head, tuple(body), rewriting.query.equalities
                )
                evaluator = QueryEvaluator(self.engine.database, extra_relations=extras)
                for binding in evaluator.bindings(delta_query):
                    new_rows.add(evaluator.output_tuple(delta_query, binding))
        return new_rows

    # -- row-level patching -------------------------------------------------------------------
    def _bindings_for_row(self, rewriting: Rewriting, row: tuple) -> list[Binding]:
        """All bindings of *rewriting* that produce exactly *row*."""
        head_terms = rewriting.query.head_terms
        substitution: dict[Variable, Constant] = {}
        for term, value in zip(head_terms, row):
            if isinstance(term, Variable):
                existing = substitution.get(term)
                if existing is not None and existing.value != value:
                    return []
                substitution[term] = Constant(value)
            elif isinstance(term, Constant) and term.value != value:
                return []
        bound_query = rewriting.query.substitute(substitution)
        evaluator = QueryEvaluator(
            self.engine.database, extra_relations=self.engine.view_relations()
        )
        bindings = []
        for binding in evaluator.bindings(bound_query):
            merged: Binding = dict(binding)
            for variable, constant in substitution.items():
                merged[variable] = constant.value
            bindings.append(merged)
        return bindings

    def _recompute_tuple(self, row: tuple) -> TupleCitation | None:
        """Re-derive the citation of one output row (``None`` when it vanished)."""
        alternatives = []
        for rewriting in self._rewritings():
            bindings = self._bindings_for_row(rewriting, row)
            if not bindings:
                continue
            expressions = [
                self.engine.citation_for_binding(rewriting, binding) for binding in bindings
            ]
            alternatives.append(alternative(expressions))
        if not alternatives:
            return None
        expression = rewrite_alternative(alternatives)
        records = self.engine.policy.evaluate(expression)
        return TupleCitation(row, expression, records)

    def _patch_rows(self, rows: Iterable[tuple]) -> None:
        rows = set(rows)
        if not rows:
            return
        result = self.result
        surviving = [tc for tc in result.tuple_citations if tc.row not in rows]
        existing_rows = {tc.row for tc in result.tuple_citations}
        for row in sorted(rows, key=repr):
            patched = self._recompute_tuple(row)
            self.statistics.rows_recomputed += 1
            if patched is not None:
                surviving.append(patched)
                if row not in existing_rows:
                    self.statistics.rows_added += 1
            elif row in existing_rows:
                self.statistics.rows_removed += 1
        surviving.sort(key=lambda tc: repr(tc.row))

        aggregate_expression = Aggregate([tc.expression for tc in surviving])
        aggregate_records = self.engine.policy.aggregate([tc.records for tc in surviving])
        citation = Citation(
            aggregate_records,
            expression=aggregate_expression,
            query_text=str(self.query),
        )
        new_relation = Relation(result.result.schema, (tc.row for tc in surviving))
        self._result = CitedResult(
            query=result.query,
            rewritings=result.rewritings,
            tuple_citations=surviving,
            citation=citation,
            policy=result.policy,
            mode=result.mode,
            result=new_relation,
        )

    # -- invariants -------------------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify that the maintained result matches a from-scratch computation.

        Raises :class:`CitationError` on divergence; used heavily in tests.
        """
        fresh_engine_result = self.engine.cite(self.query)
        maintained_rows = {tc.row for tc in self.result.tuple_citations}
        fresh_rows = {tc.row for tc in fresh_engine_result.tuple_citations}
        if maintained_rows != fresh_rows:
            raise CitationError(
                "incremental maintenance diverged on the answer set: "
                f"maintained={sorted(maintained_rows, key=repr)} "
                f"fresh={sorted(fresh_rows, key=repr)}"
            )
        if self.result.citation.records != fresh_engine_result.citation.records:
            raise CitationError("incremental maintenance diverged on the aggregate citation")
