"""Cost-based selection of rewritings (Section 3, "Calculating citations").

Going through all rewritings and all assignments within each of them is
infeasible for large view sets; the paper calls for cost functions to reduce
the search space.  The :class:`RewritingSelector` ranks rewritings with the
:class:`~repro.rewriting.cost.RewritingCostModel` and keeps only the ones the
engine should actually evaluate.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Literal

from repro.errors import PolicyError
from repro.relational.database import Database
from repro.rewriting.cost import RewritingCostModel
from repro.rewriting.rewriting import Rewriting

SelectionStrategy = Literal[
    "all",
    "min_citation_size",
    "min_evaluation_cost",
    "prefer_unparameterized",
]


class RewritingSelector:
    """Selects which rewritings the citation engine evaluates."""

    def __init__(
        self,
        database: Database | None = None,
        strategy: SelectionStrategy = "all",
        keep: int = 1,
        cost_model: RewritingCostModel | None = None,
    ) -> None:
        self.strategy = strategy
        self.keep = max(1, keep)
        self.cost_model = cost_model or RewritingCostModel(database)

    def select(self, rewritings: Sequence[Rewriting]) -> list[Rewriting]:
        """Return the rewritings to evaluate, best first."""
        rewritings = list(rewritings)
        if not rewritings:
            return []
        if self.strategy == "all":
            return rewritings
        if self.strategy == "min_citation_size":
            ranked = self.cost_model.rank(rewritings)
            return [rewriting for rewriting, _cost in ranked[: self.keep]]
        if self.strategy == "min_evaluation_cost":
            scored = [(self.cost_model.cost(r), r) for r in rewritings]
            scored.sort(key=lambda pair: (pair[0].evaluation_cost, pair[0].citation_size))
            return [rewriting for _cost, rewriting in scored[: self.keep]]
        if self.strategy == "prefer_unparameterized":
            unparameterized = [r for r in rewritings if not r.uses_parameterized_view()]
            pool = unparameterized or rewritings
            ranked = self.cost_model.rank(pool)
            return [rewriting for rewriting, _cost in ranked[: self.keep]]
        raise PolicyError(f"unknown rewriting-selection strategy {self.strategy!r}")

    def describe(self, rewritings: Sequence[Rewriting]) -> list[dict[str, object]]:
        """Return a human-readable cost table for diagnostics."""
        rows = []
        for rewriting, cost in self.cost_model.rank(list(rewritings)):
            rows.append(
                {
                    "rewriting": str(rewriting.query),
                    "views": [view.name for view in rewriting.views_used()],
                    "evaluation_cost": cost.evaluation_cost,
                    "citation_size": cost.citation_size,
                    "parameterized": rewriting.uses_parameterized_view(),
                }
            )
        return rows
