"""Citation records: the concrete "snippets of information" a citation carries.

A :class:`CitationRecord` is an immutable mapping from field names (authors,
title, identifier, version, ...) to values.  The output of a citation function
is a record; policies combine sets of records (:data:`CitationSet`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import CitationError

#: A set of citation records — the value citation expressions evaluate to.
CitationSet = frozenset


def _freeze_value(value: object) -> object:
    """Make a field value hashable (lists/sets become sorted tuples)."""
    if isinstance(value, (list, set, frozenset)):
        try:
            return tuple(sorted(value))
        except TypeError:
            return tuple(sorted(value, key=repr))
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, tuple):
        return tuple(_freeze_value(v) for v in value)
    return value


class CitationRecord(Mapping[str, object]):
    """An immutable, hashable mapping of citation fields to values.

    Well-known fields used by the formatters: ``title``, ``authors`` (tuple of
    names), ``contributors``, ``year``, ``publisher``, ``source``, ``url``,
    ``identifier``, ``version``, ``timestamp``, ``query``, ``parameters``.
    Arbitrary additional fields are allowed and preserved.
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields: Mapping[str, object] | Iterable[tuple[str, object]] = ()) -> None:
        items = dict(fields)
        frozen = {}
        for key, value in items.items():
            if not isinstance(key, str) or not key:
                raise CitationError(f"citation field names must be non-empty strings, got {key!r}")
            frozen[key] = _freeze_value(value)
        self._fields: dict[str, object] = frozen
        self._hash: int | None = None

    # -- mapping protocol ----------------------------------------------------
    def __getitem__(self, key: str) -> object:
        return self._fields[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    # -- manipulation -----------------------------------------------------------
    def with_fields(self, **updates: object) -> "CitationRecord":
        """Return a copy with the given fields added or replaced."""
        merged = dict(self._fields)
        merged.update(updates)
        return CitationRecord(merged)

    def without_fields(self, *names: str) -> "CitationRecord":
        """Return a copy with the given fields removed (missing names ignored)."""
        return CitationRecord({k: v for k, v in self._fields.items() if k not in names})

    def merge(self, other: "CitationRecord") -> "CitationRecord":
        """Merge two records field-wise (the "join" combination of the paper).

        Fields present in only one record are kept; fields present in both
        are combined into a tuple of the distinct values (order-stable).
        """
        merged: dict[str, object] = dict(self._fields)
        for key, value in other._fields.items():
            if key not in merged or merged[key] == value:
                merged[key] = value
                continue
            existing = merged[key]
            existing_values = list(existing) if isinstance(existing, tuple) else [existing]
            new_values = list(value) if isinstance(value, tuple) else [value]
            combined = existing_values + [v for v in new_values if v not in existing_values]
            merged[key] = tuple(combined)
        return CitationRecord(merged)

    # -- measurement -------------------------------------------------------------
    def size(self) -> int:
        """Number of atomic snippet values carried by the record."""
        total = 0
        for value in self._fields.values():
            if isinstance(value, tuple):
                total += len(value)
            else:
                total += 1
        return total

    def text_length(self) -> int:
        """Length of the record when rendered as plain text (rough size proxy)."""
        return sum(len(str(k)) + len(str(v)) for k, v in self._fields.items())

    # -- dunder ---------------------------------------------------------------------
    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._fields.items(), key=lambda kv: kv[0])))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CitationRecord):
            return self._fields == other._fields
        if isinstance(other, Mapping):
            return dict(self._fields) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._fields.items()))
        return f"CitationRecord({inner})"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict copy of the fields."""
        return dict(self._fields)


def record_set(*records: CitationRecord | Mapping[str, object]) -> CitationSet:
    """Build a :data:`CitationSet` from records or plain mappings."""
    out = []
    for record in records:
        if isinstance(record, CitationRecord):
            out.append(record)
        else:
            out.append(CitationRecord(record))
    return frozenset(out)


def set_size(records: Iterable[CitationRecord]) -> int:
    """Total snippet count of a set of records (the paper's "size of citation")."""
    return sum(record.size() for record in records)
