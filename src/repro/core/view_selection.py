"""Choosing the "best" citation views for an expected workload.

Section 3 ("Defining citations") raises the question of "defining and
efficiently deciding whether these views represent the best ones given an
expected query workload, i.e. the ones that cover the expected queries, and
give concise and unambiguous results".

This module formalises a practical version of that problem:

* a candidate view *covers* a workload query when an equivalent rewriting of
  the query exists using (a subset of) the already-selected views plus the
  candidate;
* the *cost* of a view is its estimated citation size (parameterized views
  are more precise but produce more citations);
* the goal is to select at most ``k`` views maximising workload coverage and,
  among equally covering selections, minimising total cost and ambiguity
  (number of distinct rewritings per covered query).

Exact selection is exponential in the number of candidates, so a greedy
algorithm (standard for set-cover-like problems) is provided along with an
exhaustive optimum for small instances, which the tests compare.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.citation_view import CitationView
from repro.query.ast import ConjunctiveQuery
from repro.relational.database import Database
from repro.rewriting.cost import RewritingCostModel
from repro.rewriting.minicon import MiniConRewriter
from repro.rewriting.view import View


@dataclass
class ViewSelectionProblem:
    """A workload-driven view-selection instance."""

    candidates: Sequence[CitationView]
    workload: Sequence[ConjunctiveQuery]
    database: Database | None = None
    max_views: int | None = None
    _cover_cache: dict[tuple[frozenset, int], bool] = field(default_factory=dict, repr=False)

    # -- primitives -------------------------------------------------------------
    def covers(self, selected: Sequence[CitationView], query_index: int) -> bool:
        """``True`` when the selected views admit an equivalent rewriting of the query."""
        names = frozenset(cv.name for cv in selected)
        key = (names, query_index)
        cached = self._cover_cache.get(key)
        if cached is not None:
            return cached
        views: list[View] = [cv.view for cv in selected]
        rewriter = MiniConRewriter(views)
        rewritings = rewriter.rewrite(self.workload[query_index])
        covered = bool(rewritings)
        self._cover_cache[key] = covered
        return covered

    def coverage(self, selected: Sequence[CitationView]) -> float:
        """Fraction of workload queries covered by the selection."""
        if not self.workload:
            return 0.0
        covered = sum(
            1 for index in range(len(self.workload)) if self.covers(selected, index)
        )
        return covered / len(self.workload)

    def ambiguity(self, selected: Sequence[CitationView]) -> float:
        """Average number of distinct rewritings per covered query (1.0 = unambiguous)."""
        views = [cv.view for cv in selected]
        rewriter = MiniConRewriter(views)
        counts = []
        for query in self.workload:
            rewritings = rewriter.rewrite(query)
            if rewritings:
                counts.append(len(rewritings))
        if not counts:
            return 0.0
        return sum(counts) / len(counts)

    def cost(self, selected: Sequence[CitationView]) -> float:
        """Total estimated citation size of the selected views (conciseness)."""
        model = RewritingCostModel(self.database)
        return sum(model.distinct_parameter_values(cv.view) for cv in selected)

    def score(self, selected: Sequence[CitationView]) -> tuple[float, float, float]:
        """(coverage, -cost, -ambiguity): larger is better on every component."""
        return (self.coverage(selected), -self.cost(selected), -self.ambiguity(selected))


def select_views_greedy(problem: ViewSelectionProblem) -> list[CitationView]:
    """Greedy view selection: repeatedly add the view with the best marginal score."""
    budget = problem.max_views or len(problem.candidates)
    selected: list[CitationView] = []
    remaining = list(problem.candidates)
    current_score = problem.score(selected)
    while remaining and len(selected) < budget:
        best_view = None
        best_score = current_score
        for candidate in remaining:
            trial_score = problem.score(selected + [candidate])
            if trial_score > best_score:
                best_score = trial_score
                best_view = candidate
        if best_view is None:
            break
        selected.append(best_view)
        remaining.remove(best_view)
        current_score = best_score
    return selected


def select_views_exhaustive(problem: ViewSelectionProblem) -> list[CitationView]:
    """Optimal selection by enumeration (exponential; only for small instances)."""
    budget = problem.max_views or len(problem.candidates)
    best: list[CitationView] = []
    best_score = problem.score(best)
    candidates = list(problem.candidates)
    for size in range(1, budget + 1):
        for combination in itertools.combinations(candidates, size):
            score = problem.score(list(combination))
            if score > best_score:
                best_score = score
                best = list(combination)
    return best
