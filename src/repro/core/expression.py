"""The citation algebra: expressions over ``·``, ``+``, ``+R`` and ``Agg``.

Definition 2.1 of the paper builds the citation of an output tuple for one
binding of one rewriting as the *joint* use (``·``) of the view citations
instantiated with that binding's parameter values.  Definition 2.2 combines
the citations of all bindings with ``+``.  Citations arising from different
rewritings are combined with ``+R`` and the citations of all result tuples
with ``Agg``.

A :class:`CitationExpression` is the *formal* citation — a tree over these
operators whose leaves are :class:`CitationAtom` values (``FV(CV(p̄))``).
The expression can be

* rendered symbolically (``(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)``),
  matching the paper's worked example, and
* evaluated under a :class:`~repro.core.policy.CitationPolicy` into a
  concrete set of citation records.

The operators mirror the provenance-semiring structure: an expression can be
converted to a provenance polynomial via :meth:`CitationExpression.to_polynomial`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.core.record import CitationRecord, CitationSet
from repro.provenance.polynomial import Polynomial


class CitationExpression:
    """Base class for nodes of the citation algebra."""

    __slots__ = ()

    symbol: str = "?"

    # -- traversal ----------------------------------------------------------
    def atoms(self) -> Iterator["CitationAtom"]:
        """Yield every leaf atom of the expression."""
        raise NotImplementedError

    def children(self) -> tuple["CitationExpression", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    # -- measurement ----------------------------------------------------------
    def atom_count(self) -> int:
        """Number of leaf atoms (with repetitions)."""
        return sum(1 for _ in self.atoms())

    def depth(self) -> int:
        """Height of the expression tree."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def distinct_citations(self) -> set[tuple[str, tuple]]:
        """Distinct (view, parameter values) pairs appearing in the expression."""
        return {(atom.view_name, atom.parameter_items) for atom in self.atoms()}

    # -- conversions -------------------------------------------------------------
    def to_polynomial(self) -> Polynomial:
        """Interpret the expression in the provenance-polynomial semiring.

        ``·`` becomes polynomial product, while ``+``, ``+R`` and ``Agg`` all
        become polynomial sum — the semiring abstraction of the paper.
        Tokens are (view name, parameter values) pairs.
        """
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError


class CitationAtom(CitationExpression):
    """A leaf: the citation of one view under one parameter valuation."""

    __slots__ = ("view_name", "parameter_items", "record")

    symbol = "atom"

    def __init__(
        self,
        view_name: str,
        parameter_values: Mapping[str, object] | None = None,
        record: CitationRecord | None = None,
    ) -> None:
        self.view_name = view_name
        self.parameter_items: tuple[tuple[str, object], ...] = tuple(
            sorted((parameter_values or {}).items())
        )
        self.record = record

    @property
    def parameter_values(self) -> dict[str, object]:
        """Parameter valuation of this citation atom."""
        return dict(self.parameter_items)

    def atoms(self) -> Iterator["CitationAtom"]:
        yield self

    def children(self) -> tuple[CitationExpression, ...]:
        return ()

    def to_polynomial(self) -> Polynomial:
        return Polynomial.variable((self.view_name, self.parameter_items))

    def evaluated_records(self) -> CitationSet:
        """The record set this atom contributes (empty when not evaluated)."""
        if self.record is None:
            return frozenset()
        return frozenset({self.record})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CitationAtom):
            return NotImplemented
        return (
            self.view_name == other.view_name
            and self.parameter_items == other.parameter_items
        )

    def __hash__(self) -> int:
        return hash((self.view_name, self.parameter_items))

    def __str__(self) -> str:
        if not self.parameter_items:
            return f"C{self.view_name}"
        values = ",".join(str(v) for _k, v in self.parameter_items)
        return f"C{self.view_name}({values})"

    def __repr__(self) -> str:
        return f"CitationAtom({self})"


class _Combination(CitationExpression):
    """Shared implementation of the n-ary operator nodes."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[CitationExpression]) -> None:
        self.operands: tuple[CitationExpression, ...] = tuple(operands)

    def atoms(self) -> Iterator[CitationAtom]:
        for operand in self.operands:
            yield from operand.atoms()

    def children(self) -> tuple[CitationExpression, ...]:
        return self.operands

    def _wrap(self, operand: CitationExpression) -> str:
        text = str(operand)
        if isinstance(operand, _Combination) and len(operand.operands) > 1:
            return f"({text})"
        return text

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self.operands == other.operands  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(repr(o) for o in self.operands)})"


class Joint(_Combination):
    """Joint use of citations within one binding (the ``·`` operator)."""

    symbol = "·"

    def to_polynomial(self) -> Polynomial:
        result = Polynomial.one()
        for operand in self.operands:
            result = result * operand.to_polynomial()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "1"
        return "·".join(self._wrap(o) for o in self.operands)


class Alternative(_Combination):
    """Alternative citations arising from multiple bindings (the ``+`` operator)."""

    symbol = "+"

    def to_polynomial(self) -> Polynomial:
        result = Polynomial.zero()
        for operand in self.operands:
            result = result + operand.to_polynomial()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "0"
        return " + ".join(self._wrap(o) for o in self.operands)


class RewriteAlternative(_Combination):
    """Alternative citations arising from different rewritings (the ``+R`` operator)."""

    symbol = "+R"

    def to_polynomial(self) -> Polynomial:
        result = Polynomial.zero()
        for operand in self.operands:
            result = result + operand.to_polynomial()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "0"
        return " +R ".join(self._wrap(o) for o in self.operands)


class Aggregate(_Combination):
    """Aggregation of the citations of all result tuples (the ``Agg`` function)."""

    symbol = "Agg"

    def to_polynomial(self) -> Polynomial:
        result = Polynomial.zero()
        for operand in self.operands:
            result = result + operand.to_polynomial()
        return result

    def __str__(self) -> str:
        inner = ", ".join(str(o) for o in self.operands)
        return f"Agg[{inner}]"


def _deduplicate(operands: Sequence[CitationExpression]) -> tuple[CitationExpression, ...]:
    """Drop syntactically equal operands (``+`` and ``+R`` are idempotent)."""
    kept: list[CitationExpression] = []
    for operand in operands:
        if not any(operand == existing for existing in kept):
            kept.append(operand)
    return tuple(kept)


def joint(operands: Sequence[CitationExpression]) -> CitationExpression:
    """Build a ``·`` node, collapsing the single-operand case."""
    operands = tuple(operands)
    if len(operands) == 1:
        return operands[0]
    return Joint(operands)


def alternative(operands: Sequence[CitationExpression]) -> CitationExpression:
    """Build a ``+`` node, deduplicating operands and collapsing singletons."""
    operands = _deduplicate(operands)
    if len(operands) == 1:
        return operands[0]
    return Alternative(operands)


def rewrite_alternative(operands: Sequence[CitationExpression]) -> CitationExpression:
    """Build a ``+R`` node, deduplicating operands and collapsing singletons."""
    operands = _deduplicate(operands)
    if len(operands) == 1:
        return operands[0]
    return RewriteAlternative(operands)
