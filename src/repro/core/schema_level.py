"""Schema-level (query-level) citation reasoning.

Section 3 ("Calculating citations") suggests that "it may also be possible to
do some of the reasoning at the schema level, and impose the views that are
retained at this level over tuple-level annotations".  This module implements
that idea: instead of building one citation expression per output tuple and
per binding, it

1. selects rewritings at the schema level (cost-based, no data access),
2. evaluates the chosen rewriting *once*, collecting the distinct parameter
   valuations used per view atom, and
3. produces a single query-level citation: the union over the view atoms of
   the citations for the parameter valuations actually used.

The query-level citation credits every contributor whose data can appear in
the result but does not attribute snippets to individual output tuples, which
is exactly the coarser granularity the schema-level shortcut trades for
speed.  ``coverage`` reports how the result size relates to the number of
distinct citations, which benchmarks E4/E5 use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.citation import Citation
from repro.core.engine import CitationEngine
from repro.core.expression import Aggregate, alternative, joint
from repro.errors import NoRewritingError
from repro.query.ast import ConjunctiveQuery, Constant
from repro.query.evaluator import QueryEvaluator
from repro.rewriting.rewriting import Rewriting


@dataclass
class SchemaLevelCitation:
    """Result of query-level citation construction."""

    query: ConjunctiveQuery
    rewriting: Rewriting
    citation: Citation
    result_size: int
    distinct_parameter_valuations: int

    def coverage(self) -> float:
        """Distinct citations per result tuple (1.0 means one citation per tuple)."""
        if self.result_size == 0:
            return 0.0
        return self.distinct_parameter_valuations / self.result_size


def cite_schema_level(
    engine: CitationEngine, query: ConjunctiveQuery | str
) -> SchemaLevelCitation:
    """Construct a query-level citation without per-tuple enumeration."""
    query = engine._as_query(query)
    rewritings = engine.rewritings(query)
    if not rewritings:
        raise NoRewritingError(query.name)
    selected = engine.selector.select(rewritings)
    rewriting = selected[0]

    evaluator = QueryEvaluator(engine.database, extra_relations=engine.view_relations())
    valuations_per_atom: list[tuple[str, set[tuple]]] = [
        (atom.predicate, set()) for atom in rewriting.query.body
    ]
    result_rows: set[tuple] = set()
    for binding in evaluator.bindings(rewriting.query):
        result_rows.add(evaluator.output_tuple(rewriting.query, binding))
        for (view_name, seen), atom in zip(valuations_per_atom, rewriting.query.body):
            citation_view = engine._citation_view_by_name[view_name]
            values = engine._parameters_for_view_atom(citation_view, atom.terms, binding)
            seen.add(tuple(sorted(values.items())))

    per_atom_expressions = []
    total_valuations = 0
    for view_name, seen in valuations_per_atom:
        total_valuations += len(seen)
        atoms = [
            engine._atom_for(view_name, dict(valuation)) for valuation in sorted(seen, key=repr)
        ]
        if atoms:
            per_atom_expressions.append(alternative(atoms))
    expression = joint(per_atom_expressions) if per_atom_expressions else Aggregate([])
    records = engine.policy.evaluate(expression)
    citation = Citation(records, expression=expression, query_text=str(query))
    return SchemaLevelCitation(
        query=query,
        rewriting=rewriting,
        citation=citation,
        result_size=len(result_rows),
        distinct_parameter_valuations=total_valuations,
    )


def schema_level_parameter_estimate(
    engine: CitationEngine, rewriting: Rewriting
) -> int:
    """Upper bound on distinct parameter valuations, from view materialisations only.

    This is a pure schema/materialisation-level quantity: for every view atom
    the number of distinct parameter projections of the view extent, summed
    over the atoms.  It never looks at the query result.
    """
    total = 0
    relations = engine.view_relations()
    for atom in rewriting.query.body:
        citation_view = engine._citation_view_by_name[atom.predicate]
        positions = sorted(citation_view.view.parameter_positions().values())
        if not positions:
            total += 1
            continue
        extent = relations[atom.predicate]
        bound_positions = {
            i: term.value
            for i, term in enumerate(atom.terms)
            if isinstance(term, Constant)
        }
        if bound_positions:
            rows = extent.rows_matching(bound_positions)
            total += len({tuple(row[i] for i in positions) for row in rows})
        else:
            total += len(extent.project_positions(positions))
    return total
